"""``mpirun``-style launcher for guest programs on the simulated cluster.

Reproduces the execution flow of Listing 4 of the paper::

    mpirun -np <N> ./mpiWasm mpi-app.wasm <args>

Since the session-API redesign the execution engine lives in
:mod:`repro.api.session`: :class:`repro.api.Session` owns the embedders, the
warm artifact store and the metrics, and the execution modes ("wasm",
"native") are registry-driven.  This module keeps the historical surface:

* :class:`JobResult` (re-exported from the session module),
* :func:`run_wasm` / :func:`run_native` -- **deprecated** one-shot shims that
  route through the ambient session (:func:`repro.api.session.current_session`)
  so existing callers keep the exact cross-call compilation reuse they had,
* ``mpiwasm-run`` (:func:`main`), rebased on :class:`repro.api.Session`.
"""

from __future__ import annotations

import argparse
import warnings
from typing import Dict, Optional, Sequence, Union

from repro.api.session import JobResult, Session, current_session
from repro.core.config import EmbedderConfig
from repro.sim.machines import MachinePreset
from repro.toolchain.guest import GuestProgram
from repro.toolchain.wasicc import CompiledApplication

__all__ = ["JobResult", "run_wasm", "run_native", "main"]


def run_wasm(
    app: Union[GuestProgram, CompiledApplication],
    nranks: int,
    machine: Union[str, MachinePreset] = "supermuc-ng",
    ranks_per_node: Optional[int] = None,
    config: Optional[EmbedderConfig] = None,
    guest_args: Sequence[str] = (),
) -> JobResult:
    """Run a guest program under MPIWasm on ``nranks`` simulated ranks.

    .. deprecated::
        Use ``repro.api.Session.run(app, nranks, mode="wasm")``; a warm
        session reuses compiled artifacts across jobs explicitly instead of
        through the process-global cache this shim falls back to.
    """
    warnings.warn(
        "run_wasm() is deprecated; use repro.api.Session.run(app, nranks, "
        "mode='wasm') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return current_session().run(
        app,
        nranks,
        mode="wasm",
        machine=machine,
        ranks_per_node=ranks_per_node,
        guest_args=guest_args,
        config=config if config is not None else EmbedderConfig(),
    )


def run_native(
    app: Union[GuestProgram, CompiledApplication],
    nranks: int,
    machine: Union[str, MachinePreset] = "supermuc-ng",
    ranks_per_node: Optional[int] = None,
    guest_args: Sequence[str] = (),
    collective_algorithms: Optional[Dict[str, str]] = None,
) -> JobResult:
    """Run the same guest program natively (no Wasm, no embedder).

    .. deprecated::
        Use ``repro.api.Session.run(app, nranks, mode="native")``.
    """
    warnings.warn(
        "run_native() is deprecated; use repro.api.Session.run(app, nranks, "
        "mode='native') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return current_session().run(
        app,
        nranks,
        mode="native",
        machine=machine,
        ranks_per_node=ranks_per_node,
        guest_args=guest_args,
        algorithms=collective_algorithms,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``mpiwasm-run``: tiny CLI wrapper used by the examples and docs."""
    from repro.api.registry import BACKENDS

    parser = argparse.ArgumentParser(
        prog="mpiwasm-run",
        description="Run a bundled guest benchmark under MPIWasm on a simulated HPC machine.",
    )
    parser.add_argument("benchmark", help="bundled benchmark name (e.g. pingpong, hpcg, is)")
    parser.add_argument("-np", "--nranks", type=int, default=4)
    parser.add_argument("--machine", default="supermuc-ng")
    parser.add_argument("--native", action="store_true", help="run the native baseline instead of Wasm")
    parser.add_argument("--backend", default="llvm", choices=BACKENDS.names())
    parser.add_argument("--fault-plan", default=None, metavar="FILE",
                        help="inject the faults described by this FaultPlan "
                             "JSON file (see repro.fault.inject)")
    parser.add_argument("--max-restarts", type=int, default=2,
                        help="with --fault-plan: restart budget for recovering "
                             "past injected rank failures (default 2)")
    args = parser.parse_args(argv)

    mode = "native" if args.native else "wasm"
    with Session(machine=args.machine, backend=args.backend) as session:
        if args.fault_plan:
            from pathlib import Path

            from repro.fault import FaultPlan, run_with_recovery

            try:
                plan = FaultPlan.from_json(Path(args.fault_plan).read_text(encoding="utf-8"))
            except (OSError, ValueError, TypeError) as exc:
                parser.error(f"cannot load fault plan {args.fault_plan!r}: {exc}")
            recovery = run_with_recovery(
                args.benchmark, args.nranks, plan=plan,
                max_restarts=args.max_restarts, session=session, mode=mode,
            )
            job = recovery.job
            if recovery.fired:
                detail = "; ".join(f["detail"] for f in recovery.fired)
                print(f"injected: {detail}")
                print(f"recovered after {recovery.attempts} attempt(s)")
        else:
            job = session.run(args.benchmark, args.nranks, mode=mode)
    print(f"benchmark={args.benchmark} mode={job.mode} ranks={job.nranks} "
          f"machine={job.machine} makespan={job.makespan*1e6:.2f} us")
    if job.stdout:
        print(job.stdout, end="")
    from repro.harness.report import format_cache_report, format_collective_report

    collective_report = format_collective_report(job.metrics)
    if collective_report:
        print(collective_report)
    cache_report = format_cache_report(job.metrics)
    if cache_report:
        print(cache_report)
    return max(job.exit_codes(), default=0)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
