"""``mpirun``-style launcher for guest programs on the simulated cluster.

Reproduces the execution flow of Listing 4 of the paper::

    mpirun -np <N> ./mpiWasm mpi-app.wasm <args>

:func:`run_wasm` places ``N`` ranks on a machine preset, compiles the guest
once (subsequent ranks hit the AoT cache), creates one embedder per rank and
runs them to completion under the discrete-event engine, returning per-rank
results, merged metrics and the job's virtual makespan.

:func:`run_native` is the baseline path: the same guest program executed
directly against the host MPI library with plain NumPy buffers -- no Wasm
memory, no embedder translation layers -- which is exactly the "Native" series
of the paper's figures.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.baselines.native import NativeAPI
from repro.core.config import EmbedderConfig
from repro.core.embedder import GuestResult, MPIWasm
from repro.mpi.runtime import MPIRuntime, MPIWorld
from repro.sim.cluster import Cluster
from repro.sim.engine import SimEngine
from repro.sim.machines import MachinePreset, get_preset
from repro.sim.metrics import MetricsRegistry
from repro.toolchain.guest import GuestProgram
from repro.toolchain.wasicc import CompiledApplication, compile_guest


@dataclass
class JobResult:
    """Outcome of one ``mpirun``-style job."""

    nranks: int
    machine: str
    mode: str                               # "wasm" or "native"
    rank_results: List[object]
    makespan: float                         # max virtual time across ranks, seconds
    metrics: MetricsRegistry
    stdout: str                             # rank 0's stdout

    def exit_codes(self) -> List[int]:
        """Per-rank exit codes (0 for native runs that returned non-ints)."""
        codes = []
        for r in self.rank_results:
            if isinstance(r, GuestResult):
                codes.append(r.exit_code)
            elif isinstance(r, int):
                codes.append(r)
            else:
                codes.append(0)
        return codes

    def return_values(self) -> List[object]:
        """Per-rank values returned by the guest's ``main``."""
        out = []
        for r in self.rank_results:
            out.append(r.return_value if isinstance(r, GuestResult) else r)
        return out


def _resolve_machine(machine: Union[str, MachinePreset]) -> MachinePreset:
    return get_preset(machine) if isinstance(machine, str) else machine


def run_wasm(
    app: Union[GuestProgram, CompiledApplication],
    nranks: int,
    machine: Union[str, MachinePreset] = "supermuc-ng",
    ranks_per_node: Optional[int] = None,
    config: Optional[EmbedderConfig] = None,
    guest_args: Sequence[str] = (),
) -> JobResult:
    """Run a guest program under MPIWasm on ``nranks`` simulated ranks."""
    preset = _resolve_machine(machine)
    cluster = Cluster(preset, nranks, ranks_per_node)
    engine = SimEngine(nranks)
    metrics = MetricsRegistry()
    world = MPIWorld.install(cluster, engine, metrics)
    embedder_config = config or EmbedderConfig()
    if embedder_config.collective_algorithms:
        world.collectives.force_many(embedder_config.collective_algorithms)

    compiled_app = app if isinstance(app, CompiledApplication) else compile_guest(app)

    def make_rank_program(rank: int):
        def rank_program(ctx):
            runtime = MPIRuntime(world, ctx)
            embedder = MPIWasm(embedder_config)
            result = embedder.run_guest(compiled_app, runtime, guest_args)
            metrics.merge(result.metrics)
            return result

        return rank_program

    engine.spawn_all(make_rank_program)
    rank_results = engine.run()
    stdout = rank_results[0].stdout if rank_results and isinstance(rank_results[0], GuestResult) else ""
    return JobResult(
        nranks=nranks,
        machine=preset.name,
        mode="wasm",
        rank_results=rank_results,
        makespan=engine.max_clock,
        metrics=metrics,
        stdout=stdout,
    )


def run_native(
    app: Union[GuestProgram, CompiledApplication],
    nranks: int,
    machine: Union[str, MachinePreset] = "supermuc-ng",
    ranks_per_node: Optional[int] = None,
    guest_args: Sequence[str] = (),
    collective_algorithms: Optional[Dict[str, str]] = None,
) -> JobResult:
    """Run the same guest program natively (no Wasm, no embedder)."""
    preset = _resolve_machine(machine)
    cluster = Cluster(preset, nranks, ranks_per_node)
    engine = SimEngine(nranks)
    metrics = MetricsRegistry()
    world = MPIWorld.install(cluster, engine, metrics)
    if collective_algorithms:
        world.collectives.force_many(collective_algorithms)
    program = app.program if isinstance(app, CompiledApplication) else app

    def make_rank_program(rank: int):
        def rank_program(ctx):
            runtime = MPIRuntime(world, ctx)
            api = NativeAPI(runtime)
            start = ctx.now
            value = program.main(api, list(guest_args))
            api.elapsed_virtual = ctx.now - start
            return value

        return rank_program

    engine.spawn_all(make_rank_program)
    rank_results = engine.run()
    return JobResult(
        nranks=nranks,
        machine=preset.name,
        mode="native",
        rank_results=rank_results,
        makespan=engine.max_clock,
        metrics=metrics,
        stdout="",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``mpiwasm-run``: tiny CLI wrapper used by the examples and docs."""
    parser = argparse.ArgumentParser(
        prog="mpiwasm-run",
        description="Run a bundled guest benchmark under MPIWasm on a simulated HPC machine.",
    )
    parser.add_argument("benchmark", help="bundled benchmark name (e.g. pingpong, hpcg, is)")
    parser.add_argument("-np", "--nranks", type=int, default=4)
    parser.add_argument("--machine", default="supermuc-ng")
    parser.add_argument("--native", action="store_true", help="run the native baseline instead of Wasm")
    parser.add_argument("--backend", default="llvm", choices=["singlepass", "cranelift", "llvm"])
    args = parser.parse_args(argv)

    from repro.benchmarks_suite import registry

    program = registry.get_program(args.benchmark)
    if args.native:
        job = run_native(program, args.nranks, args.machine)
    else:
        job = run_wasm(
            program, args.nranks, args.machine, config=EmbedderConfig(compiler_backend=args.backend)
        )
    print(f"benchmark={args.benchmark} mode={job.mode} ranks={job.nranks} "
          f"machine={job.machine} makespan={job.makespan*1e6:.2f} us")
    if job.stdout:
        print(job.stdout, end="")
    from repro.harness.report import format_cache_report, format_collective_report

    collective_report = format_collective_report(job.metrics)
    if collective_report:
        print(collective_report)
    cache_report = format_cache_report(job.metrics)
    if cache_report:
        print(cache_report)
    return max(job.exit_codes(), default=0)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
