"""The embedder's per-instance ``Env`` state (§3.7) and the process
environment knobs.

MPIWasm keeps one ``Env`` structure per executing module holding everything
its import implementations need: the module's memory base (for address
translation), the handle tables mapping guest integers to host MPI objects
(communicators, requests), the host MPI runtime for this rank, the WASI
environment, and the instrumentation that the datatype-translation experiment
(Figure 6) reads.

This module is also the canonical home of every ``REPRO_*`` environment-
variable read: the helpers below (implemented in the dependency-free
:mod:`repro.core.envvars` so low-level modules can share them) are what the
layered session configuration, the campaign runner and the embedder defaults
use instead of scattered ``os.environ`` lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.envvars import (  # noqa: F401 - consolidated env-var surface
    ENV_PREFIX,
    KNOWN_ENV_VARS,
    cache_dir as env_cache_dir,
    coll_algo as env_coll_algo,
    config_file as env_config_file,
    env_flag,
    env_int,
    parse_bool,
    read_env,
    scoped as scoped_env,
    snapshot as env_snapshot,
)

from repro.core.config import EmbedderConfig, TranslationOverheadModel
from repro.mpi.communicator import Communicator
from repro.mpi.runtime import MPIRuntime
from repro.mpi.status import Request
from repro.sim.metrics import MetricsRegistry
from repro.toolchain import mpi_header as abi
from repro.wasi.snapshot_preview1 import WasiEnvironment


class HandleTable:
    """Maps guest integer handles to host objects (and back).

    MPIWasm "internally uses IDs to identify data structures that it creates
    on behalf of the module" (§3.6); this is that table.  Handles start at a
    configurable base so predefined guest constants (``MPI_COMM_WORLD`` = 0,
    ``MPI_COMM_SELF`` = 1) never collide with dynamically created ones.
    """

    def __init__(self, first_handle: int):
        self._next = first_handle
        self._objects: Dict[int, object] = {}

    def register(self, obj: object) -> int:
        """Store ``obj`` and return its fresh guest handle."""
        handle = self._next
        self._next += 1
        self._objects[handle] = obj
        return handle

    def lookup(self, handle: int) -> object:
        """Host object for ``handle`` (KeyError if unknown)."""
        return self._objects[handle]

    def contains(self, handle: int) -> bool:
        """Whether the handle is live."""
        return handle in self._objects

    def release(self, handle: int) -> None:
        """Drop a handle (idempotent)."""
        self._objects.pop(handle, None)

    def __len__(self) -> int:
        return len(self._objects)


@dataclass
class Env:
    """Global state of one embedder instance (one MPI rank running one module)."""

    runtime: MPIRuntime
    config: EmbedderConfig
    wasi: WasiEnvironment
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    comms: HandleTable = field(default_factory=lambda: HandleTable(abi.FIRST_USER_COMM))
    requests: HandleTable = field(default_factory=lambda: HandleTable(1))
    #: Number of MPI calls the module has made (per function name).
    call_counts: Dict[str, int] = field(default_factory=dict)
    finalized: bool = False

    HOST_STATE_KEY = "mpiwasm.env"

    # ------------------------------------------------------------ communicator

    def resolve_comm(self, guest_handle: int) -> Communicator:
        """Translate a guest communicator handle into the host communicator."""
        if guest_handle == abi.MPI_COMM_WORLD:
            return self.runtime.comm_world
        if guest_handle == abi.MPI_COMM_SELF:
            return self.runtime.comm_self
        return self.comms.lookup(guest_handle)  # raises KeyError for bad handles

    def register_comm(self, comm: Communicator) -> int:
        """Store a newly created communicator; returns its guest handle."""
        return self.comms.register(comm)

    def resolve_datatype(self, guest_handle: int):
        """Translate a guest datatype handle into the host datatype object."""
        from repro.mpi import datatypes as host_datatypes

        name = abi.GUEST_DATATYPE_NAMES.get(guest_handle)
        if name is None:
            raise KeyError(f"unknown guest datatype handle {guest_handle}")
        return host_datatypes.by_name(name)

    def resolve_op(self, guest_handle: int):
        """Translate a guest reduction-op handle into the host op object."""
        from repro.mpi import ops as host_ops

        name = abi.GUEST_OP_NAMES.get(guest_handle)
        if name is None:
            raise KeyError(f"unknown guest op handle {guest_handle}")
        return host_ops.by_name(name)

    # -------------------------------------------------------------- accounting

    def note_call(self, name: str) -> None:
        """Count one MPI call made by the module."""
        self.call_counts[name] = self.call_counts.get(name, 0) + 1

    def charge_overhead(self, name: str, datatype_name: str, message_bytes: int,
                        n_datatype_args: int = 1) -> float:
        """Charge the embedder's translation overhead for one MPI call.

        Advances the rank's virtual clock, records the datatype translation
        sample for Figure 6, and returns the charged time in seconds.
        """
        overheads: TranslationOverheadModel = self.config.overheads
        cost = overheads.call_cost(n_datatype_args, datatype_name, message_bytes)
        self.runtime.ctx.advance(cost)
        if n_datatype_args:
            per_type = overheads.datatype_cost(datatype_name, message_bytes)
            self.metrics.record(f"embedder.translation.{datatype_name}", per_type)
            self.metrics.record("embedder.translation.all", per_type)
        self.metrics.record(f"embedder.call_overhead.{name}", cost)
        return cost
