"""Guest-side API handed to Python-main guest programs.

The benchmark guests in :mod:`repro.benchmarks_suite` are written against this
handle instead of C; every operation it offers corresponds one-to-one to what
the compiled C code would do inside the Wasm sandbox:

* ``malloc``/``free`` call the module's *exported Wasm functions* (the bump
  allocator emitted by :mod:`repro.toolchain.wasicc`), so allocation really
  executes Wasm code under the selected compiler back-end,
* buffers are regions of the module's linear memory, addressed by 32-bit
  guest pointers and viewed zero-copy as NumPy arrays,
* every MPI function goes through the embedder's ``env.MPI_*`` host
  implementations -- including handle translation, address translation and
  overhead accounting -- via the same code path a Wasm ``call`` of the import
  would take,
* ``print`` goes through WASI ``fd_write`` to the captured stdout.

The one (documented) substitution is that the guest's own compute statements
run as Python instead of Wasm bytecode; compute *kernels* that matter for the
experiments (HPCG, Table 1) are provided as real Wasm functions through
``GuestProgram.build_kernels`` and invoked with :meth:`call_kernel`.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.env import Env
from repro.core.memory_translation import write_handle_array
from repro.toolchain import mpi_header as abi
from repro.wasm.runtime import Instance

#: Map guest datatype handles to NumPy dtypes (for the ndarray helpers).
_NP_DTYPES: Dict[int, str] = {
    abi.MPI_BYTE: "uint8",
    abi.MPI_CHAR: "int8",
    abi.MPI_INT: "int32",
    abi.MPI_UNSIGNED: "uint32",
    abi.MPI_LONG: "int64",
    abi.MPI_LONG_LONG: "int64",
    abi.MPI_FLOAT: "float32",
    abi.MPI_DOUBLE: "float64",
}


class GuestAPI:
    """What a guest program can touch: its memory, MPI and WASI."""

    def __init__(self, instance: Instance, env: Env):
        self.instance = instance
        self.env = env
        self._import_index: Dict[str, int] = {}
        for i, imp in enumerate(instance.module.imported_functions()):
            self._import_index[f"{imp.module}.{imp.name}"] = i
        self._scratch_status = self.malloc(abi.STATUS_SIZE_BYTES)
        self._scratch_i32 = self.malloc(16)

    # re-exported ABI constants for guest convenience
    MPI_COMM_WORLD = abi.MPI_COMM_WORLD
    MPI_ANY_SOURCE = abi.MPI_ANY_SOURCE
    MPI_ANY_TAG = abi.MPI_ANY_TAG
    MPI_SUM = abi.MPI_SUM
    MPI_MAX = abi.MPI_MAX
    MPI_MIN = abi.MPI_MIN
    MPI_BYTE = abi.MPI_BYTE
    MPI_CHAR = abi.MPI_CHAR
    MPI_INT = abi.MPI_INT
    MPI_LONG = abi.MPI_LONG
    MPI_FLOAT = abi.MPI_FLOAT
    MPI_DOUBLE = abi.MPI_DOUBLE

    # ------------------------------------------------------------------ memory

    def malloc(self, nbytes: int) -> int:
        """Allocate ``nbytes`` in linear memory via the module's Wasm ``malloc``."""
        [ptr] = self.instance.invoke("malloc", int(nbytes))
        return int(ptr)

    def free(self, guest_ptr: int) -> None:
        """Release an allocation via the module's Wasm ``free``."""
        self.instance.invoke("free", int(guest_ptr))

    def view(self, guest_ptr: int, nbytes: int) -> memoryview:
        """Writable zero-copy byte view of guest memory."""
        return self.instance.exported_memory().view(guest_ptr, nbytes)

    def ndarray(self, guest_ptr: int, count: int, guest_datatype: int) -> np.ndarray:
        """Zero-copy NumPy view of ``count`` elements of a guest datatype."""
        dtype = _NP_DTYPES.get(guest_datatype)
        if dtype is None:
            raise KeyError(f"no NumPy dtype for guest datatype handle {guest_datatype}")
        return self.instance.exported_memory().ndarray(guest_ptr, count, dtype)

    def alloc_array(self, count: int, guest_datatype: int, fill: Optional[float] = None) -> Tuple[int, np.ndarray]:
        """Allocate and view an array; returns (guest pointer, NumPy view)."""
        size = abi.datatype_size(guest_datatype) * count
        ptr = self.malloc(size)
        arr = self.ndarray(ptr, count, guest_datatype)
        if fill is not None:
            arr[:] = fill
        return ptr, arr

    # -------------------------------------------------------------------- WASI

    def print(self, text: str) -> None:
        """Write a line to the module's captured stdout (via the WASI VFS)."""
        self.env.wasi.vfs.fd_write(1, (text + "\n").encode("utf-8"))

    def stdout(self) -> str:
        """Everything the guest printed so far."""
        return self.env.wasi.vfs.stdout_text()

    # --------------------------------------------------------------------- MPI

    def _call(self, name: str, *args) -> int:
        index = self._import_index.get(f"env.{name}")
        if index is None:
            raise KeyError(f"module does not import env.{name}")
        results = self.instance.call_function(index, list(args))
        return results[0] if results else 0

    def mpi_init(self) -> int:
        """``MPI_Init(NULL, NULL)``."""
        return self._call("MPI_Init", 0, 0)

    def mpi_finalize(self) -> int:
        """``MPI_Finalize()``."""
        return self._call("MPI_Finalize")

    def rank(self, comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Comm_rank``."""
        self._call("MPI_Comm_rank", comm, self._scratch_i32)
        return int(self.instance.exported_memory().load_int(self._scratch_i32, 4, signed=True))

    def size(self, comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Comm_size``."""
        self._call("MPI_Comm_size", comm, self._scratch_i32)
        return int(self.instance.exported_memory().load_int(self._scratch_i32, 4, signed=True))

    def wtime(self) -> float:
        """``MPI_Wtime`` (simulated seconds)."""
        index = self._import_index["env.MPI_Wtime"]
        [t] = self.instance.call_function(index, [])
        return float(t)

    def send(self, buf: int, count: int, datatype: int, dest: int, tag: int,
             comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Send``."""
        return self._call("MPI_Send", buf, count, datatype, dest, tag, comm)

    def recv(self, buf: int, count: int, datatype: int, source: int, tag: int,
             comm: int = abi.MPI_COMM_WORLD) -> Dict[str, int]:
        """``MPI_Recv``; returns the decoded ``MPI_Status``."""
        self._call("MPI_Recv", buf, count, datatype, source, tag, comm, self._scratch_status)
        return self.read_status(self._scratch_status)

    def sendrecv(self, sendbuf: int, sendcount: int, sendtype: int, dest: int, sendtag: int,
                 recvbuf: int, recvcount: int, recvtype: int, source: int, recvtag: int,
                 comm: int = abi.MPI_COMM_WORLD) -> Dict[str, int]:
        """``MPI_Sendrecv``; returns the decoded ``MPI_Status``."""
        self._call("MPI_Sendrecv", sendbuf, sendcount, sendtype, dest, sendtag,
                   recvbuf, recvcount, recvtype, source, recvtag, comm, self._scratch_status)
        return self.read_status(self._scratch_status)

    def isend(self, buf: int, count: int, datatype: int, dest: int, tag: int,
              comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Isend``; returns the guest request handle."""
        self._call("MPI_Isend", buf, count, datatype, dest, tag, comm, self._scratch_i32)
        return int(self.instance.exported_memory().load_int(self._scratch_i32, 4))

    def irecv(self, buf: int, count: int, datatype: int, source: int, tag: int,
              comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Irecv``; returns the guest request handle."""
        self._call("MPI_Irecv", buf, count, datatype, source, tag, comm, self._scratch_i32)
        return int(self.instance.exported_memory().load_int(self._scratch_i32, 4))

    def wait(self, request_handle: int) -> Dict[str, int]:
        """``MPI_Wait`` on a guest request handle."""
        memory = self.instance.exported_memory()
        memory.store_int(self._scratch_i32, request_handle, 4)
        self._call("MPI_Wait", self._scratch_i32, self._scratch_status)
        return self.read_status(self._scratch_status)

    def test(self, request_handle: int) -> Tuple[bool, Optional[Dict[str, int]]]:
        """``MPI_Test`` on a guest request handle (never blocks).

        Returns ``(flag, status)``; when ``flag`` is true the request has
        completed and been released host side -- treat the handle as
        ``MPI_REQUEST_NULL`` from then on, exactly like the C API.  When
        false, ``status`` is ``None`` (the standard leaves it undefined).
        """
        memory = self.instance.exported_memory()
        memory.store_int(self._scratch_i32, request_handle, 4)
        flag_ptr = self._scratch_i32 + 4
        self._call("MPI_Test", self._scratch_i32, flag_ptr, self._scratch_status)
        flag = bool(memory.load_int(flag_ptr, 4))
        if not flag:
            return False, None
        return True, self.read_status(self._scratch_status)

    def waitany(self, request_handles: Sequence[int]) -> Tuple[int, Dict[str, int]]:
        """``MPI_Waitany`` on guest request handles.

        Returns ``(index, status)``; the completed handle is released host
        side (``MPI_UNDEFINED`` index when no handle was active).  Callers
        iterating should treat the returned slot as ``MPI_REQUEST_NULL`` from
        then on, exactly like the C API.
        """
        memory = self.instance.exported_memory()
        n = len(request_handles)
        arr_ptr = self.malloc(max(4 * n, 4))
        write_handle_array(memory, arr_ptr, request_handles)
        self._call("MPI_Waitany", n, arr_ptr, self._scratch_i32, self._scratch_status)
        index = int(memory.load_int(self._scratch_i32, 4, signed=True))
        self.free(arr_ptr)
        return index, self.read_status(self._scratch_status)

    def testall(self, request_handles: Sequence[int]) -> Tuple[bool, List[Dict[str, int]]]:
        """``MPI_Testall`` on guest request handles.

        Returns ``(flag, statuses)``; when ``flag`` is true every handle has
        been completed and released, and ``statuses`` has one entry per
        handle.  When false, ``statuses`` is empty (the standard leaves them
        undefined).
        """
        memory = self.instance.exported_memory()
        n = len(request_handles)
        arr_ptr = self.malloc(max(4 * n, 4))
        statuses_ptr = self.malloc(max(abi.STATUS_SIZE_BYTES * n, 4))
        write_handle_array(memory, arr_ptr, request_handles)
        self._call("MPI_Testall", n, arr_ptr, self._scratch_i32, statuses_ptr)
        flag = bool(memory.load_int(self._scratch_i32, 4))
        statuses = (
            [self.read_status(statuses_ptr + abi.STATUS_SIZE_BYTES * i) for i in range(n)]
            if flag
            else []
        )
        self.free(statuses_ptr)
        self.free(arr_ptr)
        return flag, statuses

    def _nbc_call(self, name: str, *args) -> int:
        """Issue a non-blocking collective import; returns the request handle."""
        self._call(name, *args, self._scratch_i32)
        return int(self.instance.exported_memory().load_int(self._scratch_i32, 4))

    def ibarrier(self, comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Ibarrier``; returns the guest request handle."""
        return self._nbc_call("MPI_Ibarrier", comm)

    def ibcast(self, buf: int, count: int, datatype: int, root: int,
               comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Ibcast``; returns the guest request handle."""
        return self._nbc_call("MPI_Ibcast", buf, count, datatype, root, comm)

    def iallreduce(self, sendbuf: int, recvbuf: int, count: int, datatype: int, op: int,
                   comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Iallreduce``; returns the guest request handle."""
        return self._nbc_call("MPI_Iallreduce", sendbuf, recvbuf, count, datatype, op, comm)

    def iallgather(self, sendbuf: int, sendcount: int, sendtype: int, recvbuf: int,
                   recvcount: int, recvtype: int, comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Iallgather``; returns the guest request handle."""
        return self._nbc_call("MPI_Iallgather", sendbuf, sendcount, sendtype,
                              recvbuf, recvcount, recvtype, comm)

    def ialltoall(self, sendbuf: int, sendcount: int, sendtype: int, recvbuf: int,
                  recvcount: int, recvtype: int, comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Ialltoall``; returns the guest request handle."""
        return self._nbc_call("MPI_Ialltoall", sendbuf, sendcount, sendtype,
                              recvbuf, recvcount, recvtype, comm)

    def barrier(self, comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Barrier``."""
        return self._call("MPI_Barrier", comm)

    def bcast(self, buf: int, count: int, datatype: int, root: int,
              comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Bcast``."""
        return self._call("MPI_Bcast", buf, count, datatype, root, comm)

    def reduce(self, sendbuf: int, recvbuf: int, count: int, datatype: int, op: int, root: int,
               comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Reduce``."""
        return self._call("MPI_Reduce", sendbuf, recvbuf, count, datatype, op, root, comm)

    def allreduce(self, sendbuf: int, recvbuf: int, count: int, datatype: int, op: int,
                  comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Allreduce``."""
        return self._call("MPI_Allreduce", sendbuf, recvbuf, count, datatype, op, comm)

    def gather(self, sendbuf: int, sendcount: int, sendtype: int, recvbuf: int, recvcount: int,
               recvtype: int, root: int, comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Gather``."""
        return self._call("MPI_Gather", sendbuf, sendcount, sendtype, recvbuf, recvcount,
                          recvtype, root, comm)

    def scatter(self, sendbuf: int, sendcount: int, sendtype: int, recvbuf: int, recvcount: int,
                recvtype: int, root: int, comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Scatter``."""
        return self._call("MPI_Scatter", sendbuf, sendcount, sendtype, recvbuf, recvcount,
                          recvtype, root, comm)

    def allgather(self, sendbuf: int, sendcount: int, sendtype: int, recvbuf: int, recvcount: int,
                  recvtype: int, comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Allgather``."""
        return self._call("MPI_Allgather", sendbuf, sendcount, sendtype, recvbuf, recvcount,
                          recvtype, comm)

    def alltoall(self, sendbuf: int, sendcount: int, sendtype: int, recvbuf: int, recvcount: int,
                 recvtype: int, comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Alltoall``."""
        return self._call("MPI_Alltoall", sendbuf, sendcount, sendtype, recvbuf, recvcount,
                          recvtype, comm)

    def comm_split(self, comm: int, color: int, key: int) -> int:
        """``MPI_Comm_split``; returns the new guest communicator handle."""
        self._call("MPI_Comm_split", comm, color & 0xFFFFFFFF, key, self._scratch_i32)
        return int(self.instance.exported_memory().load_int(self._scratch_i32, 4, signed=True))

    def comm_dup(self, comm: int) -> int:
        """``MPI_Comm_dup``; returns the new guest communicator handle."""
        self._call("MPI_Comm_dup", comm, self._scratch_i32)
        return int(self.instance.exported_memory().load_int(self._scratch_i32, 4, signed=True))

    def alloc_mem(self, nbytes: int) -> int:
        """``MPI_Alloc_mem`` (routed through the module's exported malloc)."""
        self._call("MPI_Alloc_mem", nbytes, abi.MPI_INFO_NULL, self._scratch_i32)
        return int(self.instance.exported_memory().load_int(self._scratch_i32, 4))

    def free_mem(self, guest_ptr: int) -> int:
        """``MPI_Free_mem``."""
        return self._call("MPI_Free_mem", guest_ptr)

    def read_status(self, status_ptr: int) -> Dict[str, int]:
        """Decode a guest ``MPI_Status`` structure."""
        memory = self.instance.exported_memory()
        return {
            "source": int(memory.load_int(status_ptr + abi.STATUS_SOURCE_OFFSET, 4, signed=True)),
            "tag": int(memory.load_int(status_ptr + abi.STATUS_TAG_OFFSET, 4, signed=True)),
            "error": int(memory.load_int(status_ptr + abi.STATUS_ERROR_OFFSET, 4, signed=True)),
            "count_bytes": int(memory.load_int(status_ptr + abi.STATUS_COUNT_OFFSET, 4, signed=True)),
        }

    # ------------------------------------------------------------ Wasm kernels

    def call_kernel(self, export_name: str, *args) -> List:
        """Invoke a Wasm-defined kernel function exported by the module."""
        return self.instance.invoke(export_name, *args)

    # --------------------------------------------------------------- simulation

    def set_collective_algorithm(self, collective: str, algorithm: Optional[str]) -> None:
        """Force the algorithm used for one collective (``None`` restores the
        decision table).

        A simulator-side hook, not an MPI call: it is the in-run equivalent of
        relaunching the job with ``REPRO_COLL_ALGO=collective:algorithm``.
        Because the selector is shared by all ranks, call it at a point where
        every rank is synchronised (e.g. straight after a barrier) and from
        every rank, so each rank's subsequent collectives agree.
        """
        self.env.runtime.world.collectives.force(collective, algorithm)

    def collective_algorithm(self, collective: str) -> Optional[str]:
        """The algorithm currently forced for ``collective`` (None = table)."""
        return self.env.runtime.world.collectives.forced().get(collective)

    def compute(self, seconds: float) -> None:
        """Advance this rank's virtual clock by modelled compute time.

        Guests use this to account for work whose wall-clock cost is modelled
        (e.g. the per-iteration FLOP count of HPCG at figure scale) rather
        than executed instruction-by-instruction.
        """
        if seconds > 0:
            self.env.runtime.ctx.advance(seconds)

    def record_nbc_overlap(self, collective: str, overlap: float) -> None:
        """Record one communication/computation overlap sample (0..1).

        The IMB-NBC style benchmark calls this per iteration; samples land in
        this instance's metrics and are merged into the job's registry.
        """
        self.env.metrics.record_nbc_overlap(collective, overlap)
