"""MPI datatype/handle translation (§3.6) and its instrumentation (Figure 6).

The MPI standard does not fix an ABI: ``MPI_Datatype``, ``MPI_Op`` and
``MPI_Comm`` are whatever the host library says they are.  Because a Wasm
module must stay portable across MPI libraries *and* architectures, MPIWasm
presents all of these to the guest as 32-bit integers and translates them to
host objects on every call.  This module packages that translation together
with the latency bookkeeping that reproduces Figure 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.config import TranslationOverheadModel
from repro.mpi import datatypes as host_datatypes
from repro.mpi import ops as host_ops
from repro.mpi.datatypes import Datatype
from repro.mpi.ops import Op
from repro.sim.metrics import MetricsRegistry
from repro.toolchain import mpi_header as abi


class DatatypeTranslationError(KeyError):
    """A guest handle did not correspond to any known host object."""


# Inverted handle table so the host->guest direction is one dict probe, not a
# linear scan of GUEST_DATATYPE_NAMES per translated argument.
_GUEST_HANDLE_BY_NAME: Dict[str, int] = {
    name: handle for handle, name in abi.GUEST_DATATYPE_NAMES.items()
}


@dataclass
class DatatypeTranslator:
    """Stateless guest-handle -> host-object translation with latency tracking."""

    overheads: TranslationOverheadModel
    metrics: Optional[MetricsRegistry] = None

    # ------------------------------------------------------------- translation

    def datatype(self, guest_handle: int) -> Datatype:
        """Host datatype for a guest handle."""
        name = abi.GUEST_DATATYPE_NAMES.get(guest_handle)
        if name is None:
            raise DatatypeTranslationError(f"unknown guest datatype handle {guest_handle}")
        return host_datatypes.by_name(name)

    def op(self, guest_handle: int) -> Op:
        """Host reduction op for a guest handle."""
        name = abi.GUEST_OP_NAMES.get(guest_handle)
        if name is None:
            raise DatatypeTranslationError(f"unknown guest op handle {guest_handle}")
        return host_ops.by_name(name)

    def guest_handle_for(self, datatype: Datatype) -> int:
        """Inverse translation (host datatype -> guest handle)."""
        handle = _GUEST_HANDLE_BY_NAME.get(datatype.name)
        if handle is None:
            raise DatatypeTranslationError(f"datatype {datatype.name} has no guest handle")
        return handle

    # --------------------------------------------------------------- bulk casts

    def as_ndarray(self, buffer, guest_handle: int, count: int) -> np.ndarray:
        """View a guest buffer as ``count`` elements of the handle's dtype.

        One ``np.frombuffer`` call replaces any per-element unpack loop: the
        returned array aliases ``buffer`` (zero-copy when ``buffer`` is a
        writable view of linear memory).
        """
        dt = self.datatype(guest_handle)
        return np.frombuffer(buffer, dtype=dt.numpy(), count=count)

    def cast_array(self, buffer, src_handle: int, dst_handle: int, count: int) -> np.ndarray:
        """Bulk-convert ``count`` elements between two guest datatypes.

        The whole buffer is reinterpreted and cast in two vectorized NumPy
        operations -- the replacement for element-at-a-time ``struct`` codec
        round-trips when staging mixed-type reduction buffers.
        """
        src = self.as_ndarray(buffer, src_handle, count)
        return src.astype(self.datatype(dst_handle).numpy(), copy=True)

    # ------------------------------------------------------------------ timing

    def translation_latency(self, datatype: Datatype, message_bytes: int) -> float:
        """Latency (seconds) of translating one datatype argument.

        This is the quantity Figure 6 reports per datatype and message size:
        a near-constant cost per datatype with a visible increase beyond the
        256 KiB threshold where acquiring the ``Env`` read lock starts to
        contend with the in-flight large-message path.
        """
        latency = self.overheads.datatype_cost(datatype.name, message_bytes)
        if self.metrics is not None:
            self.metrics.record(f"embedder.translation.{datatype.name}", latency)
            self.metrics.record("embedder.translation.all", latency)
        return latency

    def sweep(self, datatype_names: Tuple[str, ...], message_sizes: Tuple[int, ...]) -> Dict[str, Dict[int, float]]:
        """Latency table over datatypes and message sizes (Figure 6 series)."""
        table: Dict[str, Dict[int, float]] = {}
        for name in datatype_names:
            dt = host_datatypes.by_name(name)
            table[name] = {size: self.translation_latency(dt, size) for size in message_sizes}
        return table
