"""The MPIWasm embedder.

Ties everything together for one MPI rank: ahead-of-time compilation of the
Wasm module through the configured back-end (with the content-addressed
cache), instantiation with the ``env`` (MPI) and ``wasi_snapshot_preview1``
import namespaces, attachment of the per-instance :class:`Env` state, and
execution of the guest program.

One embedder object is created per rank ("each MPI rank corresponds to one
instance of the embedder with its own Wasm module", §4.3); the compiled
artifact is shared between ranks through the cache exactly as the on-disk
shared object is shared between processes in the paper's implementation.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.wasm.compilers.cache import (
    GLOBAL_CACHE,
    FileSystemCache,
    InMemoryCache,
    module_hash,
)
from repro.core.config import EmbedderConfig
from repro.core.env import Env
from repro.fault import checkpoint as _checkpoint
from repro.core.guest_api import GuestAPI
from repro.core.mpi_imports import register_mpi_imports
from repro.mpi.runtime import MPIRuntime
from repro.sim.metrics import MetricsRegistry
from repro.toolchain.guest import GuestProgram
from repro.toolchain.wasicc import CompiledApplication, compile_guest
from repro.wasi.snapshot_preview1 import WasiEnvironment, build_wasi_imports
from repro.wasi.vfs import VirtualFilesystem
from repro.wasm.compilers import CompiledModule, get_backend
from repro.wasm.decoder import decode_module
from repro.wasm.errors import ExitTrap, Trap
from repro.wasm.module import Module
from repro.wasm.runtime import ImportObject, Instance
from repro.wasm.validation import validate_module


@dataclass
class GuestResult:
    """Outcome of running one guest program on one rank."""

    rank: int
    exit_code: int
    return_value: object
    elapsed_virtual: float
    stdout: str
    stderr: str
    call_counts: Dict[str, int]
    metrics: MetricsRegistry
    compile_seconds: float
    cache_hit: bool


class MPIWasm:
    """One embedder process: compiles, instantiates and runs Wasm MPI modules.

    .. deprecated::
        Constructing ``MPIWasm`` directly is superseded by
        :class:`repro.api.Session`, which owns the embedders, shares one warm
        artifact store across jobs, and aggregates metrics.  Direct
        construction keeps working but emits a ``DeprecationWarning``.
    """

    def __init__(self, config: Optional[EmbedderConfig] = None,
                 cache: Optional[Union[FileSystemCache, InMemoryCache]] = None,
                 *, _session_owned: bool = False):
        if not _session_owned:
            warnings.warn(
                "constructing MPIWasm directly is deprecated; use "
                "repro.api.Session, which owns embedders and shares compiled "
                "artifacts across jobs",
                DeprecationWarning,
                stacklevel=2,
            )
        self.config = config or EmbedderConfig()
        if cache is not None:
            self.cache = cache
        elif self.config.cache_dir:
            self.cache = FileSystemCache(self.config.cache_dir)
        else:
            self.cache = GLOBAL_CACHE
        self.last_cache_hit = False
        self.last_cache_tier: Optional[str] = None

    # ------------------------------------------------------------- compilation

    def compile_module(self, wasm_bytes: bytes, module: Optional[Module] = None) -> CompiledModule:
        """AoT-compile a module with the configured back-end, using the cache."""
        if module is None:
            module = decode_module(wasm_bytes)
        if self.config.validate:
            validate_module(module)
        backend = get_backend(self.config.compiler_backend)
        # Content-addressed key: module bytes + back-end + IR version, so an
        # IR format change transparently invalidates stale artifacts.
        key = module_hash(wasm_bytes, backend.name)
        if self.config.enable_cache:
            # load_or_compute serialises concurrent compilers of the same key
            # (per-key lock file for the on-disk cache), so a worker pool
            # sharing one cache directory compiles each module exactly once.
            compiled, self.last_cache_hit = self.cache.load_or_compute(
                key, module, lambda: backend.compile(module)
            )
            self.last_cache_tier = getattr(self.cache, "last_hit_tier", None)
            return compiled
        self.last_cache_hit = False
        self.last_cache_tier = None
        return backend.compile(module)

    def compile_application(self, app: Union[GuestProgram, CompiledApplication]) -> CompiledModule:
        """Compile a guest program (running wasicc first if needed)."""
        if isinstance(app, GuestProgram):
            app = compile_guest(app)
        return self.compile_module(app.wasm_bytes, app.module)

    # ------------------------------------------------------------ instantiation

    def instantiate(
        self,
        compiled: CompiledModule,
        runtime: MPIRuntime,
        guest_args: Sequence[str] = (),
    ) -> tuple:
        """Instantiate a compiled module for one rank; returns (instance, env, api)."""
        vfs = VirtualFilesystem()
        for guest_path, writable in self.config.preopen_dirs:
            vfs.preopen(guest_path, read=True, write=writable)
        wasi_env = WasiEnvironment(
            args=["wasm-app", *list(guest_args or self.config.guest_args)],
            environ=self.config.environ,
            vfs=vfs,
            clock=runtime.wtime,
        )
        imports = ImportObject()
        register_mpi_imports(imports)
        for namespace in build_wasi_imports(wasi_env).namespaces():
            pass  # namespaces() is informational; merge below
        wasi_imports = build_wasi_imports(wasi_env)
        for ns in wasi_imports.namespaces():
            imports.register_module(ns, wasi_imports._functions[ns])  # noqa: SLF001

        executor = compiled.make_executor()
        executor.configure(max_call_depth=self.config.max_call_depth)
        instance = Instance(
            compiled.module,
            imports,
            executor=executor,
            memory_pages_override=self.config.memory_pages,
        )
        env = Env(runtime=runtime, config=self.config, wasi=wasi_env)
        instance.host_state[Env.HOST_STATE_KEY] = env
        instance.run_start()
        if _checkpoint.CAPTURE is not None:
            _checkpoint.CAPTURE.register_instance(runtime.ctx.rank, instance)
        api = GuestAPI(instance, env)
        return instance, env, api

    # ------------------------------------------------------- checkpoint/restore

    def snapshot(self, instance: Instance, include_memory: bool = True) -> dict:
        """Capture the instance's quiescent state (memory, globals, tables).

        Only meaningful between guest calls; for mid-run snapshots use
        :func:`repro.fault.checkpoint.capture_checkpoint`, which captures at
        schedule-round boundaries.
        """
        return _checkpoint.capture_instance_state(instance, include_memory=include_memory)

    def restore(self, instance: Instance, state: dict) -> None:
        """Write a :meth:`snapshot` back into a (quiescent) instance."""
        _checkpoint.restore_instance_state(instance, state)

    # --------------------------------------------------------------- execution

    def run_guest(
        self,
        app: Union[GuestProgram, CompiledApplication],
        runtime: MPIRuntime,
        guest_args: Sequence[str] = (),
    ) -> GuestResult:
        """Compile, instantiate and run a guest program to completion on one rank."""
        program = app.program if isinstance(app, CompiledApplication) else app
        compiled = self.compile_application(app)
        cache_hit = self.last_cache_hit
        cache_tier = self.last_cache_tier
        instance, env, api = self.instantiate(compiled, runtime, guest_args)
        env.metrics.record_cache_event(cache_hit, tier=cache_tier)
        env.metrics.record("wasm.compile_seconds", compiled.compile_seconds)
        start_virtual = runtime.ctx.now
        exit_code = 0
        return_value: object = None
        try:
            if program.main is not None:
                return_value = program.main(api, list(guest_args or self.config.guest_args))
                if isinstance(return_value, int):
                    exit_code = return_value
            else:
                instance.invoke("_start")
        except ExitTrap as trap:
            exit_code = trap.exit_code
        elapsed = runtime.ctx.now - start_virtual
        return GuestResult(
            rank=runtime.ctx.rank,
            exit_code=exit_code,
            return_value=return_value,
            elapsed_virtual=elapsed,
            stdout=env.wasi.vfs.stdout_text(),
            stderr=env.wasi.vfs.stderr_text(),
            call_counts=dict(env.call_counts),
            metrics=env.metrics,
            compile_seconds=compiled.compile_seconds,
            cache_hit=cache_hit,
        )
