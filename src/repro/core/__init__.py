"""MPIWasm -- the paper's core contribution.

``repro.core`` contains the embedder: configuration, the per-instance ``Env``
state, address and datatype translation, the ``env.MPI_*`` import
implementations, the WASI wiring, the AoT compilation cache, the embedder
façade, and the ``mpirun``-style launcher.
"""

from repro.core.config import EmbedderConfig, TranslationOverheadModel
from repro.core.datatype_translation import DatatypeTranslationError, DatatypeTranslator
from repro.core.embedder import GuestResult, MPIWasm
from repro.core.env import Env, HandleTable
from repro.core.guest_api import GuestAPI
from repro.core.launcher import JobResult, run_native, run_wasm
from repro.core.memory_translation import AddressTranslator, translator_for

__all__ = [
    "EmbedderConfig",
    "TranslationOverheadModel",
    "MPIWasm",
    "GuestResult",
    "Env",
    "HandleTable",
    "GuestAPI",
    "AddressTranslator",
    "translator_for",
    "DatatypeTranslator",
    "DatatypeTranslationError",
    "JobResult",
    "run_wasm",
    "run_native",
]
