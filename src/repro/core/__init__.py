"""MPIWasm -- the paper's core contribution.

``repro.core`` contains the embedder: configuration, the per-instance ``Env``
state, address and datatype translation, the ``env.MPI_*`` import
implementations, the WASI wiring, the consolidated ``REPRO_*`` environment
access (:mod:`repro.core.env` / :mod:`repro.core.envvars`), the deprecated
cache façade, and the ``mpirun``-style launcher shims.

The programmatic front door is :class:`repro.api.Session`;
``run_wasm``/``run_native`` below keep working as deprecation shims.

Attribute access is lazy (PEP 562): low-level modules (the collective
decision table, the compiler back-ends) import ``repro.core.envvars`` /
``repro.api.registry`` during *their* import, which executes this package
``__init__`` -- it must therefore not eagerly re-import the execution stack
on top of them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

#: name -> submodule that defines it (resolved lazily on first access).
_EXPORT_SOURCES = {
    "EmbedderConfig": "config",
    "TranslationOverheadModel": "config",
    "MPIWasm": "embedder",
    "GuestResult": "embedder",
    "Env": "env",
    "HandleTable": "env",
    "GuestAPI": "guest_api",
    "AddressTranslator": "memory_translation",
    "translator_for": "memory_translation",
    "DatatypeTranslator": "datatype_translation",
    "DatatypeTranslationError": "datatype_translation",
    "JobResult": "launcher",
    "run_wasm": "launcher",
    "run_native": "launcher",
}

__all__ = list(_EXPORT_SOURCES)

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.core.config import EmbedderConfig, TranslationOverheadModel  # noqa: F401
    from repro.core.datatype_translation import (  # noqa: F401
        DatatypeTranslationError,
        DatatypeTranslator,
    )
    from repro.core.embedder import GuestResult, MPIWasm  # noqa: F401
    from repro.core.env import Env, HandleTable  # noqa: F401
    from repro.core.guest_api import GuestAPI  # noqa: F401
    from repro.core.launcher import JobResult, run_native, run_wasm  # noqa: F401
    from repro.core.memory_translation import AddressTranslator, translator_for  # noqa: F401


def __getattr__(name: str):
    source = _EXPORT_SOURCES.get(name)
    if source is None:
        raise AttributeError(f"module 'repro.core' has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f"repro.core.{source}")
    value = getattr(module, name)
    globals()[name] = value          # cache for subsequent accesses
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
