"""Backwards-compatible façade for the AoT compilation cache (§3.3).

The cache implementation moved next to the compiler back-ends it serves --
see :mod:`repro.wasm.compilers.cache`, which keys artifacts on module bytes +
back-end + IR version and is shared by all three back-ends since the lowering
refactor.  This module re-exports the public names so existing imports keep
working.
"""

from repro.wasm.compilers.cache import (  # noqa: F401
    GLOBAL_CACHE,
    FileSystemCache,
    InMemoryCache,
    module_hash,
)

__all__ = ["FileSystemCache", "InMemoryCache", "GLOBAL_CACHE", "module_hash"]
