"""Backwards-compatible façade for the AoT compilation cache (§3.3).

.. deprecated::
    The cache implementation moved next to the compiler back-ends it serves
    -- see :mod:`repro.wasm.compilers.cache`, which keys artifacts on module
    bytes + back-end + IR version and is shared by all three back-ends since
    the lowering refactor.  For warm in-process reuse prefer
    :class:`repro.api.Session`, which owns an artifact store tiered over the
    on-disk cache.  This module re-exports the public names so existing
    imports keep working, but emits a ``DeprecationWarning`` on import.
"""

import warnings

from repro.wasm.compilers.cache import (  # noqa: F401
    GLOBAL_CACHE,
    FileSystemCache,
    InMemoryCache,
    module_hash,
)

warnings.warn(
    "repro.core.cache is deprecated; import from repro.wasm.compilers.cache "
    "(or use repro.api.Session's artifact store) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["FileSystemCache", "InMemoryCache", "GLOBAL_CACHE", "module_hash"]
