"""Implementations of the ``env.MPI_*`` imports (§3.7).

For every function of the guest MPI ABI (:mod:`repro.toolchain.mpi_header`)
this module registers a host function that

1. charges the embedder's trampoline + translation overhead to the rank's
   virtual clock (the quantities Figure 6 measures),
2. translates guest handles (communicators, datatypes, ops, requests) to host
   objects through the per-instance :class:`repro.core.env.Env`,
3. translates guest buffer pointers to zero-copy host views of the module's
   linear memory (§3.5),
4. defers the actual operation to the host MPI library
   (:class:`repro.mpi.runtime.MPIRuntime`), and
5. writes results (statuses, output handles) back into guest memory, returning
   ``MPI_SUCCESS`` or the appropriate error code as an ``i32``.

``MPI_Alloc_mem``/``MPI_Free_mem`` are the exception described in §3.7: they
are implemented by calling the module's own exported ``malloc``/``free`` so
the returned address lies inside the module's 32-bit address space.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.env import Env
from repro.core.memory_translation import (
    AddressTranslator,
    read_handle_array,
    write_handle_array,
)
from repro.mpi.errors import MPIError
from repro.mpi.pt2pt import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.mpi.status import Request, Status
from repro.toolchain import mpi_header as abi
from repro.wasm.runtime import ImportObject, Instance
from repro.wasm.types import FuncType

ENV_NAMESPACE = "env"


def _env_of(instance: Instance) -> Env:
    env = instance.host_state.get(Env.HOST_STATE_KEY)
    if env is None:
        raise MPIError("module instance has no MPIWasm Env attached")
    return env


def _translator(instance: Instance) -> AddressTranslator:
    translator = instance.host_state.get("mpiwasm.translator")
    if translator is None:
        translator = AddressTranslator(instance.exported_memory())
        instance.host_state["mpiwasm.translator"] = translator
    return translator


def _guest_source(value: int) -> int:
    """Map guest wildcard/sentinel source ranks to host-side values."""
    if value == abi.MPI_ANY_SOURCE:
        return ANY_SOURCE
    if value == abi.MPI_PROC_NULL:
        return PROC_NULL
    return value


def _guest_tag(value: int) -> int:
    return ANY_TAG if value == abi.MPI_ANY_TAG else value


def _signed(value: int) -> int:
    """Interpret a u32 from Wasm as a signed C int."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value & 0x80000000 else value


def _write_status(instance: Instance, status_ptr: int, status: Status) -> None:
    """Write an ``MPI_Status`` structure into guest memory (if requested)."""
    if status_ptr in (0, abi.MPI_STATUS_IGNORE):
        return
    memory = instance.exported_memory()
    memory.store_int(status_ptr + abi.STATUS_SOURCE_OFFSET, status.source & 0xFFFFFFFF, 4)
    memory.store_int(status_ptr + abi.STATUS_TAG_OFFSET, status.tag & 0xFFFFFFFF, 4)
    memory.store_int(status_ptr + abi.STATUS_ERROR_OFFSET, status.error, 4)
    memory.store_int(status_ptr + abi.STATUS_COUNT_OFFSET, status.count_bytes, 4)


def _live_requests(env: Env, memory, requests_ptr: int, count: int):
    """Collect the live host requests of a guest ``MPI_Request`` array.

    Returns ``(requests, slots)`` where ``slots[i]`` is the array index of
    ``requests[i]``; null and stale handles are skipped, as the array
    functions require.
    """
    requests: List[Request] = []
    slots: List[int] = []
    # One bulk read of the whole handle array, then a pure-Python filter --
    # the guest memory round trip is vectorized, the liveness check is not.
    for i, handle in enumerate(read_handle_array(memory, requests_ptr, count)):
        handle = int(handle)
        if handle == abi.MPI_REQUEST_NULL or not env.requests.contains(handle):
            continue
        requests.append(env.requests.lookup(handle))
        slots.append(i)
    return requests, slots


def _wrap(env_fn: Callable) -> Callable:
    """Convert host-side MPI exceptions into guest-visible error codes."""

    def wrapper(instance: Instance, *args):
        try:
            return env_fn(instance, *args)
        except KeyError:
            return abi.MPI_ERR_OTHER
        except MPIError as exc:
            return getattr(exc, "code", abi.MPI_ERR_OTHER) or abi.MPI_ERR_OTHER

    return wrapper


def build_mpi_imports() -> Dict[str, Callable]:
    """Build the table of host implementations keyed by import name."""

    impl: Dict[str, Callable] = {}

    def define(name: str):
        def decorator(fn: Callable) -> Callable:
            impl[name] = _wrap(fn)
            return fn

        return decorator

    # ------------------------------------------------------------ init / meta

    @define("MPI_Init")
    def mpi_init(instance, argc_ptr, argv_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Init")
        env.charge_overhead("MPI_Init", "MPI_BYTE", 0, n_datatype_args=0)
        env.runtime.init()
        return abi.MPI_SUCCESS

    @define("MPI_Initialized")
    def mpi_initialized(instance, flag_ptr):
        env = _env_of(instance)
        instance.exported_memory().store_int(flag_ptr, 1 if env.runtime.is_initialized() else 0, 4)
        return abi.MPI_SUCCESS

    @define("MPI_Finalize")
    def mpi_finalize(instance):
        env = _env_of(instance)
        env.note_call("MPI_Finalize")
        env.charge_overhead("MPI_Finalize", "MPI_BYTE", 0, n_datatype_args=0)
        env.runtime.finalize()
        env.finalized = True
        return abi.MPI_SUCCESS

    @define("MPI_Abort")
    def mpi_abort(instance, comm_handle, errorcode):
        env = _env_of(instance)
        env.note_call("MPI_Abort")
        env.runtime.abort(errorcode=_signed(errorcode))
        return abi.MPI_SUCCESS  # pragma: no cover - abort raises

    @define("MPI_Comm_rank")
    def mpi_comm_rank(instance, comm_handle, rank_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Comm_rank")
        env.charge_overhead("MPI_Comm_rank", "MPI_BYTE", 0, n_datatype_args=0)
        comm = env.resolve_comm(_signed(comm_handle))
        instance.exported_memory().store_int(rank_ptr, env.runtime.comm_rank(comm), 4)
        return abi.MPI_SUCCESS

    @define("MPI_Comm_size")
    def mpi_comm_size(instance, comm_handle, size_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Comm_size")
        env.charge_overhead("MPI_Comm_size", "MPI_BYTE", 0, n_datatype_args=0)
        comm = env.resolve_comm(_signed(comm_handle))
        instance.exported_memory().store_int(size_ptr, env.runtime.comm_size(comm), 4)
        return abi.MPI_SUCCESS

    @define("MPI_Get_processor_name")
    def mpi_get_processor_name(instance, name_ptr, resultlen_ptr):
        env = _env_of(instance)
        name = env.runtime.get_processor_name()[: abi.MPI_MAX_PROCESSOR_NAME - 1]
        written = instance.exported_memory().write_cstring(name_ptr, name)
        instance.exported_memory().store_int(resultlen_ptr, written - 1, 4)
        return abi.MPI_SUCCESS

    @define("MPI_Wtime")
    def mpi_wtime(instance):
        env = _env_of(instance)
        return env.runtime.wtime()

    @define("MPI_Wtick")
    def mpi_wtick(instance):
        env = _env_of(instance)
        return env.runtime.wtick()

    @define("MPI_Type_size")
    def mpi_type_size(instance, datatype_handle, size_ptr):
        env = _env_of(instance)
        datatype = env.resolve_datatype(_signed(datatype_handle))
        instance.exported_memory().store_int(size_ptr, datatype.size, 4)
        return abi.MPI_SUCCESS

    @define("MPI_Get_count")
    def mpi_get_count(instance, status_ptr, datatype_handle, count_ptr):
        env = _env_of(instance)
        datatype = env.resolve_datatype(_signed(datatype_handle))
        count_bytes = instance.exported_memory().load_int(status_ptr + abi.STATUS_COUNT_OFFSET, 4)
        count = count_bytes // datatype.size if datatype.size else 0
        instance.exported_memory().store_int(count_ptr, count, 4)
        return abi.MPI_SUCCESS

    # ------------------------------------------------------------ point-to-point

    def _register_request(instance, env, request, request_ptr) -> int:
        handle = env.requests.register(request)
        instance.exported_memory().store_int(request_ptr, handle, 4)
        return abi.MPI_SUCCESS

    @define("MPI_Send")
    def mpi_send(instance, buf, count, datatype_handle, dest, tag, comm_handle):
        env = _env_of(instance)
        env.note_call("MPI_Send")
        count = _signed(count)
        datatype = env.resolve_datatype(_signed(datatype_handle))
        nbytes = count * datatype.size
        env.charge_overhead("MPI_Send", datatype.name, nbytes)
        comm = env.resolve_comm(_signed(comm_handle))
        view = _translator(instance).to_host(buf, nbytes)
        env.runtime.send(view, count, datatype, _guest_source(_signed(dest)), _signed(tag), comm)
        return abi.MPI_SUCCESS

    @define("MPI_Recv")
    def mpi_recv(instance, buf, count, datatype_handle, source, tag, comm_handle, status_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Recv")
        count = _signed(count)
        datatype = env.resolve_datatype(_signed(datatype_handle))
        nbytes = count * datatype.size
        env.charge_overhead("MPI_Recv", datatype.name, nbytes)
        comm = env.resolve_comm(_signed(comm_handle))
        view = _translator(instance).to_host(buf, nbytes)
        status = env.runtime.recv(
            view, count, datatype, _guest_source(_signed(source)), _guest_tag(_signed(tag)), comm
        )
        _write_status(instance, status_ptr, status)
        return abi.MPI_SUCCESS

    @define("MPI_Sendrecv")
    def mpi_sendrecv(
        instance,
        sendbuf, sendcount, sendtype_handle, dest, sendtag,
        recvbuf, recvcount, recvtype_handle, source, recvtag,
        comm_handle, status_ptr,
    ):
        env = _env_of(instance)
        env.note_call("MPI_Sendrecv")
        sendcount = _signed(sendcount)
        recvcount = _signed(recvcount)
        sendtype = env.resolve_datatype(_signed(sendtype_handle))
        recvtype = env.resolve_datatype(_signed(recvtype_handle))
        send_bytes = sendcount * sendtype.size
        env.charge_overhead("MPI_Sendrecv", sendtype.name, send_bytes, n_datatype_args=2)
        comm = env.resolve_comm(_signed(comm_handle))
        translator = _translator(instance)
        send_view = translator.to_host(sendbuf, send_bytes)
        recv_view = translator.to_host(recvbuf, recvcount * recvtype.size)
        status = env.runtime.sendrecv(
            send_view, sendcount, sendtype, _guest_source(_signed(dest)), _signed(sendtag),
            recv_view, recvcount, recvtype, _guest_source(_signed(source)), _guest_tag(_signed(recvtag)),
            comm,
        )
        _write_status(instance, status_ptr, status)
        return abi.MPI_SUCCESS

    @define("MPI_Isend")
    def mpi_isend(instance, buf, count, datatype_handle, dest, tag, comm_handle, request_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Isend")
        count = _signed(count)
        datatype = env.resolve_datatype(_signed(datatype_handle))
        nbytes = count * datatype.size
        env.charge_overhead("MPI_Isend", datatype.name, nbytes)
        comm = env.resolve_comm(_signed(comm_handle))
        view = _translator(instance).to_host(buf, nbytes)
        request = env.runtime.isend(view, count, datatype, _guest_source(_signed(dest)), _signed(tag), comm)
        return _register_request(instance, env, request, request_ptr)

    @define("MPI_Irecv")
    def mpi_irecv(instance, buf, count, datatype_handle, source, tag, comm_handle, request_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Irecv")
        count = _signed(count)
        datatype = env.resolve_datatype(_signed(datatype_handle))
        nbytes = count * datatype.size
        env.charge_overhead("MPI_Irecv", datatype.name, nbytes)
        comm = env.resolve_comm(_signed(comm_handle))
        translator = _translator(instance)
        # Lazy view: translated when the message is actually consumed, so no
        # live view pins linear memory (memory.grow must keep working while
        # the request is outstanding).
        request = env.runtime.irecv(
            lambda: translator.to_host(buf, nbytes),
            count, datatype, _guest_source(_signed(source)), _guest_tag(_signed(tag)), comm,
        )
        return _register_request(instance, env, request, request_ptr)

    @define("MPI_Test")
    def mpi_test(instance, request_ptr, flag_ptr, status_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Test")
        env.charge_overhead("MPI_Test", "MPI_BYTE", 0, n_datatype_args=0)
        memory = instance.exported_memory()
        handle = memory.load_int(request_ptr, 4)
        if handle == abi.MPI_REQUEST_NULL or not env.requests.contains(handle):
            # Null/stale requests test as complete with an empty status.
            memory.store_int(flag_ptr, 1, 4)
            _write_status(instance, status_ptr, Status())
            return abi.MPI_SUCCESS
        request: Request = env.requests.lookup(handle)
        flag, status = env.runtime.test(request)
        memory.store_int(flag_ptr, 1 if flag else 0, 4)
        if flag:
            env.requests.release(handle)
            memory.store_int(request_ptr, abi.MPI_REQUEST_NULL, 4)
            _write_status(instance, status_ptr, status)
        return abi.MPI_SUCCESS

    @define("MPI_Wait")
    def mpi_wait(instance, request_ptr, status_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Wait")
        env.charge_overhead("MPI_Wait", "MPI_BYTE", 0, n_datatype_args=0)
        memory = instance.exported_memory()
        handle = memory.load_int(request_ptr, 4)
        if handle == abi.MPI_REQUEST_NULL or not env.requests.contains(handle):
            _write_status(instance, status_ptr, Status())
            return abi.MPI_SUCCESS
        request: Request = env.requests.lookup(handle)
        status = env.runtime.wait(request)
        env.requests.release(handle)
        memory.store_int(request_ptr, abi.MPI_REQUEST_NULL, 4)
        _write_status(instance, status_ptr, status)
        return abi.MPI_SUCCESS

    @define("MPI_Waitall")
    def mpi_waitall(instance, count, requests_ptr, statuses_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Waitall")
        env.charge_overhead("MPI_Waitall", "MPI_BYTE", 0, n_datatype_args=0)
        memory = instance.exported_memory()
        count = _signed(count)
        handles = read_handle_array(memory, requests_ptr, count)
        for i, handle in enumerate(handles):
            handle = int(handle)
            if handle == abi.MPI_REQUEST_NULL or not env.requests.contains(handle):
                continue
            request: Request = env.requests.lookup(handle)
            status = env.runtime.wait(request)
            env.requests.release(handle)
            handles[i] = abi.MPI_REQUEST_NULL
            if statuses_ptr not in (0, abi.MPI_STATUS_IGNORE):
                _write_status(instance, statuses_ptr + abi.STATUS_SIZE_BYTES * i, status)
        # Null handles go back in one vectorized store, not N store_ints.
        write_handle_array(memory, requests_ptr, handles)
        return abi.MPI_SUCCESS

    @define("MPI_Waitany")
    def mpi_waitany(instance, count, requests_ptr, index_ptr, status_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Waitany")
        env.charge_overhead("MPI_Waitany", "MPI_BYTE", 0, n_datatype_args=0)
        memory = instance.exported_memory()
        count = _signed(count)
        live, slots = _live_requests(env, memory, requests_ptr, count)
        if not live:
            memory.store_int(index_ptr, abi.MPI_UNDEFINED & 0xFFFFFFFF, 4)
            _write_status(instance, status_ptr, Status())
            return abi.MPI_SUCCESS
        which, status = env.runtime.waitany(live)
        slot = slots[which]
        handle = memory.load_int(requests_ptr + 4 * slot, 4)
        env.requests.release(handle)
        memory.store_int(requests_ptr + 4 * slot, abi.MPI_REQUEST_NULL, 4)
        memory.store_int(index_ptr, slot & 0xFFFFFFFF, 4)
        _write_status(instance, status_ptr, status)
        return abi.MPI_SUCCESS

    @define("MPI_Testall")
    def mpi_testall(instance, count, requests_ptr, flag_ptr, statuses_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Testall")
        env.charge_overhead("MPI_Testall", "MPI_BYTE", 0, n_datatype_args=0)
        memory = instance.exported_memory()
        count = _signed(count)
        live, slots = _live_requests(env, memory, requests_ptr, count)
        flag, statuses = env.runtime.testall(live)
        memory.store_int(flag_ptr, 1 if flag else 0, 4)
        if flag:
            # Release every completed request and write back null handles
            # plus the statuses at their original slots.
            by_slot = dict(zip(slots, statuses))
            for i, handle in enumerate(read_handle_array(memory, requests_ptr, count)):
                handle = int(handle)
                if handle != abi.MPI_REQUEST_NULL and env.requests.contains(handle):
                    env.requests.release(handle)
                if statuses_ptr not in (0, abi.MPI_STATUS_IGNORE):
                    _write_status(
                        instance,
                        statuses_ptr + abi.STATUS_SIZE_BYTES * i,
                        by_slot.get(i, Status()),
                    )
            if count > 0:
                # Null the whole handle array in one vectorized fill.
                translator = _translator(instance)
                translator.to_host_ndarray(requests_ptr, count, "<u4").fill(
                    abi.MPI_REQUEST_NULL
                )
        return abi.MPI_SUCCESS

    @define("MPI_Iprobe")
    def mpi_iprobe(instance, source, tag, comm_handle, flag_ptr, status_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Iprobe")
        comm = env.resolve_comm(_signed(comm_handle))
        found, status = env.runtime.iprobe(_guest_source(_signed(source)), _guest_tag(_signed(tag)), comm)
        instance.exported_memory().store_int(flag_ptr, 1 if found else 0, 4)
        if found:
            _write_status(instance, status_ptr, status)
        return abi.MPI_SUCCESS

    # ----------------------------------------------------- non-blocking collectives

    @define("MPI_Ibarrier")
    def mpi_ibarrier(instance, comm_handle, request_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Ibarrier")
        env.charge_overhead("MPI_Ibarrier", "MPI_BYTE", 0, n_datatype_args=0)
        comm = env.resolve_comm(_signed(comm_handle))
        return _register_request(instance, env, env.runtime.ibarrier(comm), request_ptr)

    @define("MPI_Ibcast")
    def mpi_ibcast(instance, buf, count, datatype_handle, root, comm_handle, request_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Ibcast")
        count = _signed(count)
        datatype = env.resolve_datatype(_signed(datatype_handle))
        nbytes = count * datatype.size
        env.charge_overhead("MPI_Ibcast", datatype.name, nbytes)
        comm = env.resolve_comm(_signed(comm_handle))
        translator = _translator(instance)
        # Lazy view: translated at post (copy-out) and completion (copy-in),
        # never held across the overlap window -- memory.grow must keep
        # working while the request is outstanding.
        request = env.runtime.ibcast(
            lambda: translator.to_host(buf, nbytes), count, datatype, _signed(root), comm
        )
        return _register_request(instance, env, request, request_ptr)

    @define("MPI_Iallreduce")
    def mpi_iallreduce(instance, sendbuf, recvbuf, count, datatype_handle, op_handle,
                       comm_handle, request_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Iallreduce")
        count = _signed(count)
        datatype = env.resolve_datatype(_signed(datatype_handle))
        op = env.resolve_op(_signed(op_handle))
        nbytes = count * datatype.size
        env.charge_overhead("MPI_Iallreduce", datatype.name, nbytes)
        comm = env.resolve_comm(_signed(comm_handle))
        translator = _translator(instance)
        request = env.runtime.iallreduce(
            lambda: translator.to_host(sendbuf, nbytes),
            lambda: translator.to_host(recvbuf, nbytes),
            count, datatype, op, comm,
        )
        return _register_request(instance, env, request, request_ptr)

    @define("MPI_Iallgather")
    def mpi_iallgather(instance, sendbuf, sendcount, sendtype_handle, recvbuf, recvcount,
                       recvtype_handle, comm_handle, request_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Iallgather")
        sendcount = _signed(sendcount)
        recvcount = _signed(recvcount)
        sendtype = env.resolve_datatype(_signed(sendtype_handle))
        recvtype = env.resolve_datatype(_signed(recvtype_handle))
        nbytes = sendcount * sendtype.size
        env.charge_overhead("MPI_Iallgather", sendtype.name, nbytes, n_datatype_args=2)
        comm = env.resolve_comm(_signed(comm_handle))
        translator = _translator(instance)
        recv_bytes = recvcount * recvtype.size * comm.size
        request = env.runtime.iallgather(
            lambda: translator.to_host(sendbuf, nbytes), sendcount, sendtype,
            lambda: translator.to_host(recvbuf, recv_bytes), recvcount, recvtype, comm,
        )
        return _register_request(instance, env, request, request_ptr)

    @define("MPI_Ialltoall")
    def mpi_ialltoall(instance, sendbuf, sendcount, sendtype_handle, recvbuf, recvcount,
                      recvtype_handle, comm_handle, request_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Ialltoall")
        sendcount = _signed(sendcount)
        recvcount = _signed(recvcount)
        sendtype = env.resolve_datatype(_signed(sendtype_handle))
        recvtype = env.resolve_datatype(_signed(recvtype_handle))
        nbytes = sendcount * sendtype.size
        env.charge_overhead("MPI_Ialltoall", sendtype.name, nbytes, n_datatype_args=2)
        comm = env.resolve_comm(_signed(comm_handle))
        translator = _translator(instance)
        send_bytes = nbytes * comm.size
        recv_bytes = recvcount * recvtype.size * comm.size
        request = env.runtime.ialltoall(
            lambda: translator.to_host(sendbuf, send_bytes), sendcount, sendtype,
            lambda: translator.to_host(recvbuf, recv_bytes), recvcount, recvtype, comm,
        )
        return _register_request(instance, env, request, request_ptr)

    # --------------------------------------------------------------- collectives

    @define("MPI_Barrier")
    def mpi_barrier(instance, comm_handle):
        env = _env_of(instance)
        env.note_call("MPI_Barrier")
        env.charge_overhead("MPI_Barrier", "MPI_BYTE", 0, n_datatype_args=0)
        env.runtime.barrier(env.resolve_comm(_signed(comm_handle)))
        return abi.MPI_SUCCESS

    @define("MPI_Bcast")
    def mpi_bcast(instance, buf, count, datatype_handle, root, comm_handle):
        env = _env_of(instance)
        env.note_call("MPI_Bcast")
        count = _signed(count)
        datatype = env.resolve_datatype(_signed(datatype_handle))
        nbytes = count * datatype.size
        env.charge_overhead("MPI_Bcast", datatype.name, nbytes)
        comm = env.resolve_comm(_signed(comm_handle))
        view = _translator(instance).to_host(buf, nbytes)
        env.runtime.bcast(view, count, datatype, _signed(root), comm)
        return abi.MPI_SUCCESS

    @define("MPI_Reduce")
    def mpi_reduce(instance, sendbuf, recvbuf, count, datatype_handle, op_handle, root, comm_handle):
        env = _env_of(instance)
        env.note_call("MPI_Reduce")
        count = _signed(count)
        datatype = env.resolve_datatype(_signed(datatype_handle))
        op = env.resolve_op(_signed(op_handle))
        nbytes = count * datatype.size
        env.charge_overhead("MPI_Reduce", datatype.name, nbytes)
        comm = env.resolve_comm(_signed(comm_handle))
        translator = _translator(instance)
        send_view = translator.to_host(sendbuf, nbytes)
        root_rank = _signed(root)
        recv_view = (
            translator.to_host(recvbuf, nbytes)
            if env.runtime.comm_rank(comm) == root_rank and recvbuf != 0
            else None
        )
        env.runtime.reduce(send_view, recv_view, count, datatype, op, root_rank, comm)
        return abi.MPI_SUCCESS

    @define("MPI_Allreduce")
    def mpi_allreduce(instance, sendbuf, recvbuf, count, datatype_handle, op_handle, comm_handle):
        env = _env_of(instance)
        env.note_call("MPI_Allreduce")
        count = _signed(count)
        datatype = env.resolve_datatype(_signed(datatype_handle))
        op = env.resolve_op(_signed(op_handle))
        nbytes = count * datatype.size
        env.charge_overhead("MPI_Allreduce", datatype.name, nbytes)
        comm = env.resolve_comm(_signed(comm_handle))
        translator = _translator(instance)
        send_view = translator.to_host(sendbuf, nbytes)
        recv_view = translator.to_host(recvbuf, nbytes)
        env.runtime.allreduce(send_view, recv_view, count, datatype, op, comm)
        return abi.MPI_SUCCESS

    @define("MPI_Gather")
    def mpi_gather(instance, sendbuf, sendcount, sendtype_handle, recvbuf, recvcount,
                   recvtype_handle, root, comm_handle):
        env = _env_of(instance)
        env.note_call("MPI_Gather")
        sendcount = _signed(sendcount)
        recvcount = _signed(recvcount)
        sendtype = env.resolve_datatype(_signed(sendtype_handle))
        recvtype = env.resolve_datatype(_signed(recvtype_handle))
        nbytes = sendcount * sendtype.size
        env.charge_overhead("MPI_Gather", sendtype.name, nbytes, n_datatype_args=2)
        comm = env.resolve_comm(_signed(comm_handle))
        translator = _translator(instance)
        send_view = translator.to_host(sendbuf, nbytes)
        root_rank = _signed(root)
        is_root = env.runtime.comm_rank(comm) == root_rank
        recv_view = (
            translator.to_host(recvbuf, recvcount * recvtype.size * comm.size) if is_root else None
        )
        env.runtime.gather(send_view, sendcount, sendtype, recv_view, recvcount, recvtype, root_rank, comm)
        return abi.MPI_SUCCESS

    @define("MPI_Scatter")
    def mpi_scatter(instance, sendbuf, sendcount, sendtype_handle, recvbuf, recvcount,
                    recvtype_handle, root, comm_handle):
        env = _env_of(instance)
        env.note_call("MPI_Scatter")
        sendcount = _signed(sendcount)
        recvcount = _signed(recvcount)
        sendtype = env.resolve_datatype(_signed(sendtype_handle))
        recvtype = env.resolve_datatype(_signed(recvtype_handle))
        nbytes = recvcount * recvtype.size
        env.charge_overhead("MPI_Scatter", recvtype.name, nbytes, n_datatype_args=2)
        comm = env.resolve_comm(_signed(comm_handle))
        translator = _translator(instance)
        root_rank = _signed(root)
        is_root = env.runtime.comm_rank(comm) == root_rank
        send_view = (
            translator.to_host(sendbuf, sendcount * sendtype.size * comm.size) if is_root else None
        )
        recv_view = translator.to_host(recvbuf, nbytes)
        env.runtime.scatter(send_view, sendcount, sendtype, recv_view, recvcount, recvtype, root_rank, comm)
        return abi.MPI_SUCCESS

    @define("MPI_Allgather")
    def mpi_allgather(instance, sendbuf, sendcount, sendtype_handle, recvbuf, recvcount,
                      recvtype_handle, comm_handle):
        env = _env_of(instance)
        env.note_call("MPI_Allgather")
        sendcount = _signed(sendcount)
        recvcount = _signed(recvcount)
        sendtype = env.resolve_datatype(_signed(sendtype_handle))
        recvtype = env.resolve_datatype(_signed(recvtype_handle))
        nbytes = sendcount * sendtype.size
        env.charge_overhead("MPI_Allgather", sendtype.name, nbytes, n_datatype_args=2)
        comm = env.resolve_comm(_signed(comm_handle))
        translator = _translator(instance)
        send_view = translator.to_host(sendbuf, nbytes)
        recv_view = translator.to_host(recvbuf, recvcount * recvtype.size * comm.size)
        env.runtime.allgather(send_view, sendcount, sendtype, recv_view, recvcount, recvtype, comm)
        return abi.MPI_SUCCESS

    @define("MPI_Alltoall")
    def mpi_alltoall(instance, sendbuf, sendcount, sendtype_handle, recvbuf, recvcount,
                     recvtype_handle, comm_handle):
        env = _env_of(instance)
        env.note_call("MPI_Alltoall")
        sendcount = _signed(sendcount)
        recvcount = _signed(recvcount)
        sendtype = env.resolve_datatype(_signed(sendtype_handle))
        recvtype = env.resolve_datatype(_signed(recvtype_handle))
        nbytes = sendcount * sendtype.size
        env.charge_overhead("MPI_Alltoall", sendtype.name, nbytes, n_datatype_args=2)
        comm = env.resolve_comm(_signed(comm_handle))
        translator = _translator(instance)
        send_view = translator.to_host(sendbuf, nbytes * comm.size)
        recv_view = translator.to_host(recvbuf, recvcount * recvtype.size * comm.size)
        env.runtime.alltoall(send_view, sendcount, sendtype, recv_view, recvcount, recvtype, comm)
        return abi.MPI_SUCCESS

    # -------------------------------------------------------------- communicators

    @define("MPI_Comm_split")
    def mpi_comm_split(instance, comm_handle, color, key, newcomm_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Comm_split")
        env.charge_overhead("MPI_Comm_split", "MPI_BYTE", 0, n_datatype_args=0)
        comm = env.resolve_comm(_signed(comm_handle))
        new_comm = env.runtime.comm_split(comm, _signed(color), _signed(key))
        if new_comm is None:
            handle = abi.MPI_COMM_NULL
        else:
            handle = env.register_comm(new_comm)
        instance.exported_memory().store_int(newcomm_ptr, handle & 0xFFFFFFFF, 4)
        return abi.MPI_SUCCESS

    @define("MPI_Comm_dup")
    def mpi_comm_dup(instance, comm_handle, newcomm_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Comm_dup")
        env.charge_overhead("MPI_Comm_dup", "MPI_BYTE", 0, n_datatype_args=0)
        comm = env.resolve_comm(_signed(comm_handle))
        new_comm = env.runtime.comm_dup(comm)
        handle = env.register_comm(new_comm)
        instance.exported_memory().store_int(newcomm_ptr, handle, 4)
        return abi.MPI_SUCCESS

    @define("MPI_Comm_free")
    def mpi_comm_free(instance, comm_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Comm_free")
        memory = instance.exported_memory()
        handle = _signed(memory.load_int(comm_ptr, 4))
        if handle >= abi.FIRST_USER_COMM and env.comms.contains(handle):
            env.runtime.comm_free(env.comms.lookup(handle))
            env.comms.release(handle)
        memory.store_int(comm_ptr, abi.MPI_COMM_NULL & 0xFFFFFFFF, 4)
        return abi.MPI_SUCCESS

    # --------------------------------------------------------------------- memory

    @define("MPI_Alloc_mem")
    def mpi_alloc_mem(instance, size, info, baseptr_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Alloc_mem")
        env.charge_overhead("MPI_Alloc_mem", "MPI_BYTE", 0, n_datatype_args=0)
        if not instance.has_export("malloc"):
            return abi.MPI_ERR_OTHER
        # §3.7: defer to the module's own allocator so the address is a valid
        # 32-bit module address rather than a 64-bit host address.
        [guest_ptr] = instance.invoke("malloc", _signed(size))
        instance.exported_memory().store_int(baseptr_ptr, guest_ptr, 4)
        return abi.MPI_SUCCESS

    @define("MPI_Free_mem")
    def mpi_free_mem(instance, guest_ptr):
        env = _env_of(instance)
        env.note_call("MPI_Free_mem")
        if not instance.has_export("free"):
            return abi.MPI_ERR_OTHER
        instance.invoke("free", guest_ptr)
        return abi.MPI_SUCCESS

    return impl


def register_mpi_imports(imports: ImportObject) -> None:
    """Register all ``env.MPI_*`` host functions on an import object."""
    implementations = build_mpi_imports()
    for name, (params, results) in abi.MPI_SIGNATURES.items():
        fn = implementations.get(name)
        if fn is None:  # pragma: no cover - table integrity guard
            raise MPIError(f"no host implementation for {name}")
        imports.register(ENV_NAMESPACE, name, FuncType.of(params, results), fn)
