"""Consolidated access to the ``REPRO_*`` environment variables.

Every environment read in the code base goes through this module (it is
re-exported by :mod:`repro.core.env`, the embedder's documented home for
process-level state).  Centralising the reads buys three things:

* one catalogue (:data:`KNOWN_ENV_VARS`) of every knob the system honours,
  used by the docs generator and the layered-config provenance,
* uniform parsing (:func:`env_flag`, :func:`env_int`) instead of ad-hoc
  ``os.environ.get`` conventions at call sites,
* a scoped-override helper (:func:`scoped`) so code that must export a
  variable for a subprocess-visible duration (the campaign runner exporting
  ``REPRO_CACHE_DIR`` per job) restores the previous state reliably.

This module is intentionally a *leaf*: it imports nothing from ``repro`` so
any module -- including low-level ones like the collective decision table --
can use it without creating import cycles.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Mapping, Optional

#: Namespace prefix shared by every environment knob.
ENV_PREFIX = "REPRO_"

#: Catalogue of every honoured environment variable and what it controls.
#: (Layered configuration reads these between the config file and explicit
#: kwargs; see :class:`repro.api.config.ResolvedConfig`.)
KNOWN_ENV_VARS: Dict[str, str] = {
    "REPRO_BACKEND": "default compiler back-end (singlepass | cranelift | llvm)",
    "REPRO_MACHINE": "default machine preset name (supermuc-ng, graviton2, ...)",
    "REPRO_NRANKS": "default rank count for Session.run",
    "REPRO_CACHE_DIR": "on-disk AoT compilation cache directory (unset: in-memory only)",
    "REPRO_CACHE": "set to 0/false to disable the AoT compilation cache entirely",
    "REPRO_VALIDATE": "set to 0/false to skip Wasm module validation before compiling",
    "REPRO_MAX_CALL_DEPTH": "guest call-stack depth limit enforced by the executor",
    "REPRO_MEMORY_PAGES": "override the module's declared minimum linear-memory pages",
    "REPRO_COLL_ALGO": "force collective algorithms, e.g. 'allreduce:ring,bcast:binomial'",
    "REPRO_WORKERS": "default worker-process count for campaigns",
    "REPRO_TRACE": "set to 1/true to record per-rank MPI event traces (repro.obs)",
    "REPRO_CONFIG": "path to a JSON config file merged below env vars and kwargs",
    "REPRO_BENCH_SMOKE": "set to 1 to run the benchmark suite in fast smoke mode",
}

_TRUE_VALUES = frozenset({"1", "true", "yes", "on"})
_FALSE_VALUES = frozenset({"0", "false", "no", "off", ""})


def read_env(name: str, default: Optional[str] = None,
             environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """Raw string value of one environment variable (``default`` if unset)."""
    environ = os.environ if environ is None else environ
    return environ.get(name, default)


def parse_bool(raw: str, name: str) -> bool:
    """Parse a boolean knob value: 1/true/yes/on vs 0/false/no/off (or empty).

    The single source of truth for boolean tokens -- used by both
    :func:`env_flag` and the layered-config field parsers.
    """
    lowered = raw.strip().lower()
    if lowered in _TRUE_VALUES:
        return True
    if lowered in _FALSE_VALUES:
        return False
    raise ValueError(f"{name} must be a boolean flag (got {raw!r})")


def env_flag(name: str, default: bool = False,
             environ: Optional[Mapping[str, str]] = None) -> bool:
    """Boolean environment knob: 1/true/yes/on vs 0/false/no/off (or empty)."""
    raw = read_env(name, None, environ)
    if raw is None:
        return default
    return parse_bool(raw, name)


def env_int(name: str, default: Optional[int] = None,
            environ: Optional[Mapping[str, str]] = None) -> Optional[int]:
    """Integer environment knob (``default`` if unset; ValueError if malformed)."""
    raw = read_env(name, None, environ)
    if raw is None or not raw.strip():
        return default
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer (got {raw!r})") from None


def snapshot(environ: Optional[Mapping[str, str]] = None) -> Dict[str, str]:
    """All currently-set ``REPRO_*`` variables (known or not)."""
    environ = os.environ if environ is None else environ
    return {k: v for k, v in environ.items() if k.startswith(ENV_PREFIX)}


def cache_dir(environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """``REPRO_CACHE_DIR`` (``None`` when unset or empty)."""
    return read_env("REPRO_CACHE_DIR", None, environ) or None


def coll_algo(environ: Optional[Mapping[str, str]] = None) -> str:
    """Raw ``REPRO_COLL_ALGO`` value (empty string when unset)."""
    return read_env("REPRO_COLL_ALGO", "", environ) or ""


def config_file(environ: Optional[Mapping[str, str]] = None) -> Optional[str]:
    """``REPRO_CONFIG`` (``None`` when unset or empty)."""
    return read_env("REPRO_CONFIG", None, environ) or None


@contextmanager
def scoped(name: str, value: Optional[str]) -> Iterator[None]:
    """Temporarily export ``name=value`` in ``os.environ``.

    ``value=None`` is a no-op (the variable is left exactly as it was): this
    matches the campaign runner's contract of only exporting the shared cache
    directory when one is actually configured.
    """
    if value is None:
        yield
        return
    previous = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = previous
