"""``mpiwasm`` command-line interface.

A thin counterpart of the paper's embedder binary: inspect modules (sizes,
imports, WAT), compile them with a chosen back-end, and run bundled guest
benchmarks through the launcher.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.api.session import Session
from repro.toolchain.wasicc import compile_guest
from repro.wasm.decoder import decode_module
from repro.wasm.wat import module_to_wat


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``mpiwasm`` console script."""
    parser = argparse.ArgumentParser(
        prog="mpiwasm",
        description="MPIWasm embedder utilities (inspect / compile / run guest benchmarks).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inspect = sub.add_parser("inspect", help="summarise a .wasm module or a bundled benchmark")
    inspect.add_argument("target", help="path to a .wasm file or a bundled benchmark name")
    inspect.add_argument("--wat", action="store_true", help="print the module in WAT form")

    compile_cmd = sub.add_parser("compile", help="AoT-compile a module and report timings")
    compile_cmd.add_argument("target", help="path to a .wasm file or a bundled benchmark name")
    compile_cmd.add_argument("--backend", default="llvm", choices=["singlepass", "cranelift", "llvm"])

    run = sub.add_parser("run", help="run a bundled benchmark (see mpiwasm-run for options)")
    run.add_argument("target")
    run.add_argument("-np", "--nranks", type=int, default=2)
    run.add_argument("--machine", default="graviton2")

    args = parser.parse_args(argv)

    def load_module(target: str):
        from pathlib import Path

        path = Path(target)
        if path.exists():
            data = path.read_bytes()
            return decode_module(data), data
        from repro.benchmarks_suite import registry

        app = compile_guest(registry.get_program(target))
        return app.module, app.wasm_bytes

    if args.command == "inspect":
        module, data = load_module(args.target)
        summary = module.summary()
        print(f"module: {module.name or args.target}")
        print(f"encoded size: {len(data)} bytes")
        for key, value in summary.items():
            print(f"  {key}: {value}")
        if args.wat:
            print(module_to_wat(module))
        return 0

    if args.command == "compile":
        module, data = load_module(args.target)
        with Session(backend=args.backend, enable_cache=False) as session:
            compiled = session.compile(data, module=module)
        print(f"backend={args.backend} functions={compiled.function_count} "
              f"compile={compiled.compile_seconds * 1e3:.3f} ms")
        return 0

    if args.command == "run":
        from repro.core.launcher import main as run_main

        return run_main([args.target, "-np", str(args.nranks), "--machine", args.machine])

    return 2  # pragma: no cover - argparse enforces the command set


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
