"""Embedder configuration.

Collects every knob MPIWasm exposes: which compiler back-end to use, which
directories to expose to the module (the ``-d`` flag of §3.4), where the
AoT-compilation cache lives, how large the module's memory may grow, and the
calibrated overhead parameters of the translation layers (the quantities
Figure 6 measures).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.core import envvars


@dataclass(frozen=True)
class TranslationOverheadModel:
    """Calibrated costs of the embedder's per-call translation work.

    All values are seconds.  The datatype translation cost is the quantity the
    paper measures in Figure 6 (85-105 ns depending on the datatype, with an
    increase above 256 KiB messages attributed to read-lock acquisition on the
    shared ``Env`` structure); the trampoline cost covers Wasmer's host-call
    entry/exit; the address translation cost covers the pointer arithmetic and
    bounds check of §3.5.
    """

    trampoline: float = 38e-9
    address_translation: float = 11e-9
    datatype_base: Dict[str, float] = field(
        default_factory=lambda: {
            "MPI_BYTE": 85.44e-9,
            "MPI_CHAR": 84.72e-9,
            "MPI_INT": 99.78e-9,
            "MPI_FLOAT": 96.32e-9,
            "MPI_DOUBLE": 103.35e-9,
            "MPI_LONG": 104.79e-9,
        }
    )
    datatype_default: float = 95e-9
    # Extra latency for acquiring the Env read lock once messages exceed the
    # large-message threshold (the knee visible in Figure 6).
    large_message_threshold: int = 256 * 1024
    large_message_penalty: float = 55e-9
    # Additional growth per MiB beyond the threshold (lock hold time).
    large_message_per_mib: float = 18e-9

    def datatype_cost(self, datatype_name: str, message_bytes: int) -> float:
        """Translation cost for one datatype argument of one call."""
        base = self.datatype_base.get(datatype_name, self.datatype_default)
        if message_bytes > self.large_message_threshold:
            extra_mib = (message_bytes - self.large_message_threshold) / (1024 * 1024)
            return base + self.large_message_penalty + extra_mib * self.large_message_per_mib
        return base

    def call_cost(self, n_datatype_args: int, datatype_name: str, message_bytes: int) -> float:
        """Total embedder overhead of one MPI call (trampoline + translations)."""
        return (
            self.trampoline
            + self.address_translation
            + n_datatype_args * self.datatype_cost(datatype_name, message_bytes)
        )


@dataclass
class EmbedderConfig:
    """Configuration of one MPIWasm embedder process."""

    compiler_backend: str = "llvm"
    #: Directories exposed to the module: (guest path, writable).
    preopen_dirs: Tuple[Tuple[str, bool], ...] = (("/work", True),)
    #: On-disk AoT cache directory (the paper's per-node cache, §3.3).  The
    #: ``REPRO_CACHE_DIR`` environment variable provides the default; ``None``
    #: falls back to the process-wide in-memory cache.  Clear a directory
    #: cache with ``FileSystemCache(path).clear()`` or by deleting the
    #: ``*.mpiwasm`` files.
    cache_dir: Optional[str] = field(default_factory=envvars.cache_dir)
    enable_cache: bool = True
    memory_pages: Optional[int] = None       # override the module's declared minimum
    max_call_depth: int = 256
    overheads: TranslationOverheadModel = field(default_factory=TranslationOverheadModel)
    #: Arguments passed to the guest (argv[1:]).
    guest_args: Tuple[str, ...] = ()
    environ: Dict[str, str] = field(default_factory=dict)
    validate: bool = True
    #: Forced collective algorithms, {collective: algorithm} -- the
    #: programmatic equivalent of the ``REPRO_COLL_ALGO`` environment knob
    #: (and it wins over the environment, like MCA parameters beat env vars
    #: in Open MPI).  Empty means: let the decision table pick per call.
    collective_algorithms: Dict[str, str] = field(default_factory=dict)

    def with_backend(self, backend: str) -> "EmbedderConfig":
        """Copy of this configuration using a different compiler back-end."""
        from dataclasses import replace

        return replace(self, compiler_backend=backend)
