"""Registry of bundled guest benchmarks, keyed by short name.

Used by the CLI (``mpiwasm run <name>``), the session API and the examples so
that every entry point shares one construction path per benchmark.  Backed by
the unified registry (:data:`repro.api.registry.BENCHMARKS`); third-party
benchmarks plug in with ``@repro.api.register_benchmark("name")`` and become
runnable as ``session.run("name", ...)`` without editing this module.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.api.registry import BENCHMARKS
from repro.benchmarks_suite.custom_pingpong import make_translation_pingpong_program
from repro.benchmarks_suite.hpcg import make_hpcg_program
from repro.benchmarks_suite.imb import (
    COLLECTIVE_ROUTINES,
    NBC_ROUTINES,
    ROUTINES,
    make_imb_algorithm_sweep_program,
    make_imb_nbc_program,
    make_imb_program,
    make_imb_suite_program,
)
from repro.benchmarks_suite.ior import make_ior_program
from repro.benchmarks_suite.npb import DT_TOPOLOGIES, make_dt_program, make_is_program
from repro.toolchain.guest import GuestProgram

#: Live view of the unified benchmark registry (kept for back-compat).
_FACTORIES: Dict[str, Callable[[], GuestProgram]] = BENCHMARKS.entries


def _register(name: str, factory: Callable[[], GuestProgram]) -> None:
    BENCHMARKS.register(name, obj=factory, override=True)


for _routine in ROUTINES:
    _register(_routine, lambda r=_routine: make_imb_program(r))
for _routine in sorted(COLLECTIVE_ROUTINES):
    _register(f"algosweep-{_routine}", lambda r=_routine: make_imb_algorithm_sweep_program(r))
for _routine in NBC_ROUTINES:
    _register(_routine, lambda r=_routine: make_imb_nbc_program(r))
_register("imb-suite", make_imb_suite_program)
_register("hpcg", make_hpcg_program)
_register("ior", make_ior_program)
_register("is", make_is_program)
for _topology in DT_TOPOLOGIES:
    _register(f"dt-{_topology}", lambda t=_topology: make_dt_program(t))
_register("translation-pingpong", make_translation_pingpong_program)


def names() -> List[str]:
    """All registered benchmark names."""
    return BENCHMARKS.names()


def get_program(name: str) -> GuestProgram:
    """Construct the guest program registered under ``name``.

    Unknown names raise :class:`repro.api.registry.UnknownEntryError` (a
    ``KeyError`` subclass) listing every registered benchmark.
    """
    return BENCHMARKS.get(name)()
