"""Intel MPI Benchmarks (IMB) guest programs.

Re-implements the IMB measurement loops the paper runs (§4.2): PingPong,
Sendrecv, Bcast, Allreduce, Allgather, Alltoall, Reduce, Gather and Scatter.
Each routine sweeps a range of message sizes, runs a fixed number of
iterations per size, and reports the average/min/max iteration time in
microseconds exactly like the original benchmark's ``t_avg``/``t_min``/
``t_max`` columns.

The guests are written against the GuestAPI/NativeAPI interface so the same
code produces both the "Native" and the "WASM" series of Figures 3 and 4.
Like the original IMB, the collectives run on a duplicated communicator
(``MPI_Comm_dup``) -- the feature the paper points out Faasm lacks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.toolchain import mpi_header as abi
from repro.toolchain.guest import GuestProgram
from repro.toolchain.linker import PAPER_APPLICATIONS

#: Default IMB message-size sweep: powers of two from 1 B to 4 MiB.
DEFAULT_MESSAGE_SIZES = tuple(2 ** k for k in range(0, 23))
#: Reduced sweep used by tests and the quickstart example.
SMALL_MESSAGE_SIZES = (1, 16, 256, 4096, 65536)

ROUTINES = (
    "pingpong",
    "sendrecv",
    "bcast",
    "allreduce",
    "allgather",
    "alltoall",
    "reduce",
    "gather",
    "scatter",
)

#: IMB routines that exercise a collective (their names coincide with the
#: collective the algorithm subsystem dispatches); used by the sweep mode.
COLLECTIVE_ROUTINES = tuple(r for r in ROUTINES if r not in ("pingpong", "sendrecv"))

#: Non-blocking collective routines of the IMB-NBC style overlap benchmark.
NBC_ROUTINES = ("ibarrier", "ibcast", "iallreduce", "iallgather", "ialltoall")


def _stats(samples: List[float]) -> Dict[str, float]:
    return {
        "t_avg_us": 1e6 * sum(samples) / len(samples),
        "t_min_us": 1e6 * min(samples),
        "t_max_us": 1e6 * max(samples),
        "iterations": len(samples),
    }


def _run_routine(api, routine: str, message_sizes: Sequence[int], iterations: int) -> Dict[int, Dict[str, float]]:
    """Run one IMB routine's sweep and return its per-size timing rows."""
    rank = api.rank()
    size = api.size()
    comm = api.comm_dup(abi.MPI_COMM_WORLD)
    max_bytes = max(message_sizes)
    send_ptr, send_arr = api.alloc_array(max_bytes, abi.MPI_BYTE, fill=0)
    recv_bytes = max_bytes * (size if routine in ("allgather", "alltoall", "gather") else 1)
    send_bytes_needed = max_bytes * (size if routine in ("alltoall", "scatter") else 1)
    if send_bytes_needed > max_bytes:
        api.free(send_ptr)
        send_ptr, send_arr = api.alloc_array(send_bytes_needed, abi.MPI_BYTE, fill=0)
    recv_ptr, recv_arr = api.alloc_array(max(recv_bytes, 1), abi.MPI_BYTE, fill=0)
    send_arr[:] = (rank + 1) & 0xFF

    results: Dict[int, Dict[str, float]] = {}
    for nbytes in message_sizes:
        samples: List[float] = []
        for _ in range(iterations):
            t0 = api.wtime()
            if routine == "pingpong":
                if size < 2:
                    raise ValueError("PingPong needs at least 2 ranks")
                if rank == 0:
                    api.send(send_ptr, nbytes, abi.MPI_BYTE, 1, 0, comm)
                    api.recv(recv_ptr, nbytes, abi.MPI_BYTE, 1, 0, comm)
                elif rank == 1:
                    api.recv(recv_ptr, nbytes, abi.MPI_BYTE, 0, 0, comm)
                    api.send(send_ptr, nbytes, abi.MPI_BYTE, 0, 0, comm)
            elif routine == "sendrecv":
                right = (rank + 1) % size
                left = (rank - 1) % size
                api.sendrecv(send_ptr, nbytes, abi.MPI_BYTE, right, 1,
                             recv_ptr, nbytes, abi.MPI_BYTE, left, 1, comm)
            elif routine == "bcast":
                api.bcast(send_ptr, nbytes, abi.MPI_BYTE, 0, comm)
            elif routine == "allreduce":
                count = max(1, nbytes // 8)
                api.allreduce(send_ptr, recv_ptr, count, abi.MPI_DOUBLE, abi.MPI_SUM, comm)
            elif routine == "reduce":
                count = max(1, nbytes // 8)
                api.reduce(send_ptr, recv_ptr, count, abi.MPI_DOUBLE, abi.MPI_SUM, 0, comm)
            elif routine == "allgather":
                api.allgather(send_ptr, nbytes, abi.MPI_BYTE, recv_ptr, nbytes, abi.MPI_BYTE, comm)
            elif routine == "alltoall":
                api.alltoall(send_ptr, nbytes, abi.MPI_BYTE, recv_ptr, nbytes, abi.MPI_BYTE, comm)
            elif routine == "gather":
                api.gather(send_ptr, nbytes, abi.MPI_BYTE, recv_ptr, nbytes, abi.MPI_BYTE, 0, comm)
            elif routine == "scatter":
                api.scatter(send_ptr, nbytes, abi.MPI_BYTE, recv_ptr, nbytes, abi.MPI_BYTE, 0, comm)
            else:
                raise KeyError(f"unknown IMB routine {routine!r}")
            samples.append(api.wtime() - t0)
        # PingPong reports the half round-trip, like the original benchmark.
        if routine == "pingpong":
            samples = [s / 2.0 for s in samples]
        results[nbytes] = _stats(samples)
        api.barrier(comm)
    return results


def make_imb_program(
    routine: str,
    message_sizes: Sequence[int] = SMALL_MESSAGE_SIZES,
    iterations: int = 4,
) -> GuestProgram:
    """Build the guest program for one IMB routine."""
    if routine not in ROUTINES:
        raise KeyError(f"unknown IMB routine {routine!r}; known: {ROUTINES}")

    def main(api, args):
        api.mpi_init()
        rows = _run_routine(api, routine, list(message_sizes), iterations)
        if api.rank() == 0:
            api.print(f"# IMB {routine}: {len(rows)} message sizes, {iterations} iterations")
        api.barrier()
        api.mpi_finalize()
        return {"routine": routine, "rows": rows}

    return GuestProgram(
        name=f"imb-{routine}",
        main=main,
        memory_pages=max(64, (max(message_sizes) * 4 // 65536) + 16),
        profile=PAPER_APPLICATIONS["IMB"],
        description=f"Intel MPI Benchmarks {routine} sweep",
    )


def make_imb_algorithm_sweep_program(
    routine: str,
    message_sizes: Sequence[int] = SMALL_MESSAGE_SIZES,
    iterations: int = 4,
    algorithms: Optional[Sequence[str]] = None,
) -> GuestProgram:
    """Build an IMB guest that re-runs one routine's sweep per algorithm.

    The counterpart of benchmarking Open MPI under different
    ``coll_tuned_*_algorithm`` MCA settings: for every registered algorithm of
    the routine's collective the guest forces that algorithm (through the
    selector shared by all ranks), runs the full message-size sweep, and
    reports rows keyed ``algorithm -> size``.  The force is applied right
    after a barrier so every rank switches at the same sequence point.
    """
    if routine not in COLLECTIVE_ROUTINES:
        raise KeyError(
            f"IMB routine {routine!r} has no collective to sweep; "
            f"known: {sorted(COLLECTIVE_ROUTINES)}"
        )
    collective = routine

    def main(api, args):
        from repro.mpi.algorithms import registry as algo_registry

        api.mpi_init()
        names = list(algorithms or algo_registry.algorithms_for(collective))
        # Restore any job-level force (REPRO_COLL_ALGO / config) afterwards
        # instead of clearing it outright.
        previous = api.collective_algorithm(collective)
        per_algorithm: Dict[str, Dict[int, Dict[str, float]]] = {}
        for name in names:
            api.barrier()
            api.set_collective_algorithm(collective, name)
            per_algorithm[name] = _run_routine(api, routine, list(message_sizes), iterations)
        api.barrier()
        api.set_collective_algorithm(collective, previous)
        if api.rank() == 0:
            api.print(
                f"# IMB {routine} algorithm sweep: {len(names)} algorithms x "
                f"{len(message_sizes)} sizes"
            )
        api.mpi_finalize()
        return {"routine": routine, "collective": collective, "algorithms": per_algorithm}

    return GuestProgram(
        name=f"imb-algosweep-{routine}",
        main=main,
        memory_pages=max(64, (max(message_sizes) * 8 // 65536) + 16),
        profile=PAPER_APPLICATIONS["IMB"],
        description=f"Intel MPI Benchmarks {routine} per-algorithm sweep",
    )


def _start_nbc(api, routine: str, nbytes: int, send_ptr: int, recv_ptr: int, comm: int):
    """Post one non-blocking collective; returns its request handle/object."""
    if routine == "ibarrier":
        return api.ibarrier(comm)
    if routine == "ibcast":
        return api.ibcast(send_ptr, nbytes, abi.MPI_BYTE, 0, comm)
    if routine == "iallreduce":
        count = max(1, nbytes // 8)
        return api.iallreduce(send_ptr, recv_ptr, count, abi.MPI_DOUBLE, abi.MPI_SUM, comm)
    if routine == "iallgather":
        return api.iallgather(send_ptr, nbytes, abi.MPI_BYTE, recv_ptr, nbytes, abi.MPI_BYTE, comm)
    if routine == "ialltoall":
        return api.ialltoall(send_ptr, nbytes, abi.MPI_BYTE, recv_ptr, nbytes, abi.MPI_BYTE, comm)
    raise KeyError(f"unknown NBC routine {routine!r}; known: {NBC_ROUTINES}")


def _run_nbc_routine(api, routine: str, message_sizes: Sequence[int], iterations: int) -> Dict[int, Dict[str, float]]:
    """One IMB-NBC style overlap measurement: per size, the pure collective
    time, a same-length compute phase overlapped with the collective, and the
    achieved overlap percentage (the benchmark's headline column)."""
    size = api.size()
    comm = api.comm_dup(abi.MPI_COMM_WORLD)
    collective = routine[1:]  # "iallreduce" -> "allreduce"
    # iallreduce posts at least one MPI_DOUBLE element, so buffers must hold
    # 8 bytes even when the sweep's largest message size is smaller.
    max_bytes = max(8, max(message_sizes))
    send_bytes_needed = max(1, max_bytes * (size if routine == "ialltoall" else 1))
    recv_bytes_needed = max(1, max_bytes * (size if routine in ("iallgather", "ialltoall") else 1))
    send_ptr, send_arr = api.alloc_array(send_bytes_needed, abi.MPI_BYTE, fill=0)
    recv_ptr, _recv_arr = api.alloc_array(recv_bytes_needed, abi.MPI_BYTE, fill=0)
    send_arr[:] = (api.rank() + 1) & 0xFF

    results: Dict[int, Dict[str, float]] = {}
    for nbytes in message_sizes:
        pure: List[float] = []
        ovrl: List[float] = []
        overlaps: List[float] = []
        for _ in range(iterations):
            # Pure (non-overlapped) time: post and immediately wait.
            api.barrier(comm)
            t0 = api.wtime()
            api.wait(_start_nbc(api, routine, nbytes, send_ptr, recv_ptr, comm))
            t_pure = api.wtime() - t0
            # Overlapped: post, compute for the pure time, then wait.  The
            # overlap fraction is how much of the collective hid behind the
            # compute phase (IMB-NBC's definition, with t_CPU = t_pure).
            api.barrier(comm)
            t_cpu = t_pure
            t0 = api.wtime()
            request = _start_nbc(api, routine, nbytes, send_ptr, recv_ptr, comm)
            api.compute(t_cpu)
            api.wait(request)
            t_ovrl = api.wtime() - t0
            if min(t_pure, t_cpu) > 0:
                overlap = (t_pure + t_cpu - t_ovrl) / min(t_pure, t_cpu)
            else:
                overlap = 1.0
            overlap = max(0.0, min(1.0, overlap))
            pure.append(t_pure)
            ovrl.append(t_ovrl)
            overlaps.append(overlap)
            api.record_nbc_overlap(collective, overlap)
        results[nbytes] = {
            "t_pure_us": 1e6 * sum(pure) / len(pure),
            "t_ovrl_us": 1e6 * sum(ovrl) / len(ovrl),
            "t_cpu_us": 1e6 * sum(pure) / len(pure),
            "overlap_pct": 100.0 * sum(overlaps) / len(overlaps),
            "iterations": len(overlaps),
        }
        api.barrier(comm)
    return results


def make_imb_nbc_program(
    routine: str,
    message_sizes: Sequence[int] = SMALL_MESSAGE_SIZES,
    iterations: int = 4,
) -> GuestProgram:
    """Build the IMB-NBC style overlap benchmark for one non-blocking collective.

    Mirrors the IMB-NBC measurement: each iteration times the collective run
    back-to-back (``t_pure``), then re-runs it overlapped with a compute
    phase of the same length and reports how much of the communication was
    hidden.  Per-iteration overlap samples are also recorded into the job's
    metrics registry (``mpi.nbc.<collective>.overlap``).
    """
    if routine not in NBC_ROUTINES:
        raise KeyError(f"unknown NBC routine {routine!r}; known: {NBC_ROUTINES}")
    sizes = (0,) if routine == "ibarrier" else tuple(message_sizes)

    def main(api, args):
        api.mpi_init()
        rows = _run_nbc_routine(api, routine, list(sizes), iterations)
        if api.rank() == 0:
            api.print(f"# IMB-NBC {routine}: {len(rows)} message sizes, {iterations} iterations")
        api.barrier()
        api.mpi_finalize()
        return {"routine": routine, "collective": routine[1:], "rows": rows}

    return GuestProgram(
        name=f"imb-nbc-{routine}",
        main=main,
        memory_pages=max(64, (max(sizes) * 8 // 65536) + 16),
        profile=PAPER_APPLICATIONS["IMB"],
        description=f"Intel MPI Benchmarks NBC {routine} overlap sweep",
    )


def make_imb_suite_program(
    routines: Sequence[str] = ROUTINES,
    message_sizes: Sequence[int] = SMALL_MESSAGE_SIZES,
    iterations: int = 2,
) -> GuestProgram:
    """Build a guest that runs several IMB routines back to back."""

    def main(api, args):
        api.mpi_init()
        all_rows = {}
        for routine in routines:
            if routine == "pingpong" and api.size() < 2:
                continue
            all_rows[routine] = _run_routine(api, routine, list(message_sizes), iterations)
        api.mpi_finalize()
        return {"routines": all_rows}

    return GuestProgram(
        name="imb-suite",
        main=main,
        memory_pages=max(64, (max(message_sizes) * 8 // 65536) + 16),
        profile=PAPER_APPLICATIONS["IMB"],
        description="Intel MPI Benchmarks multi-routine sweep",
    )
