"""Custom datatype-translation PingPong (the Figure 6 probe).

§4.6 of the paper measures the datatype-translation overhead by running a
custom PingPong that iterates over the MPI datatypes BYTE, CHAR, INT, FLOAT,
DOUBLE and LONG for a range of message sizes, with the embedder's Send path
instrumented to record the translation latency of every call.  The embedder
here records exactly those samples in its metrics registry
(``embedder.translation.<DATATYPE>``), and the harness reads them back to
regenerate the figure.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.toolchain import mpi_header as abi
from repro.toolchain.guest import GuestProgram
from repro.toolchain.linker import PAPER_APPLICATIONS

#: The datatypes Figure 6 sweeps, in presentation order.
FIGURE6_DATATYPES = (
    ("MPI_BYTE", abi.MPI_BYTE),
    ("MPI_CHAR", abi.MPI_CHAR),
    ("MPI_INT", abi.MPI_INT),
    ("MPI_FLOAT", abi.MPI_FLOAT),
    ("MPI_DOUBLE", abi.MPI_DOUBLE),
    ("MPI_LONG", abi.MPI_LONG),
)

#: Message sizes (bytes) on the x-axis of Figure 6.
FIGURE6_MESSAGE_SIZES = (8, 64, 256, 1024, 32768, 262144, 1048576, 2097152, 4194304)

#: Reduced sweep for functional tests.
SMALL_MESSAGE_SIZES = (8, 256, 4096, 65536)


def make_translation_pingpong_program(
    message_sizes: Sequence[int] = SMALL_MESSAGE_SIZES,
    iterations: int = 2,
) -> GuestProgram:
    """PingPong between ranks 0 and 1 iterating over the Figure 6 datatypes."""

    def main(api, args):
        api.mpi_init()
        rank = api.rank()
        if api.size() < 2:
            api.mpi_finalize()
            return {"skipped": "needs at least 2 ranks"}
        max_bytes = max(message_sizes)
        buf_ptr, buf = api.alloc_array(max_bytes, abi.MPI_BYTE, fill=1)
        rows: Dict[str, Dict[int, float]] = {}
        for name, handle in FIGURE6_DATATYPES:
            elem = abi.datatype_size(handle)
            per_size: Dict[int, float] = {}
            for nbytes in message_sizes:
                count = max(1, nbytes // elem)
                t0 = api.wtime()
                for _ in range(iterations):
                    if rank == 0:
                        api.send(buf_ptr, count, handle, 1, 11)
                        api.recv(buf_ptr, count, handle, 1, 11)
                    elif rank == 1:
                        api.recv(buf_ptr, count, handle, 0, 11)
                        api.send(buf_ptr, count, handle, 0, 11)
                per_size[nbytes] = (api.wtime() - t0) / (2 * iterations)
            rows[name] = per_size
            api.barrier()
        api.mpi_finalize()
        return {"rows": rows, "message_sizes": list(message_sizes)}

    return GuestProgram(
        name="translation-pingpong",
        main=main,
        memory_pages=max(96, (max(message_sizes) * 2 // 65536) + 8),
        profile=PAPER_APPLICATIONS["IMB"],
        description="Custom PingPong iterating over MPI datatypes (Figure 6 probe)",
    )
