"""IOR filesystem benchmark (POSIX backend).

IOR measures the aggregate read/write bandwidth available to MPI processes.
The paper runs it with the POSIX API backend because the POSIX filesystem
calls are exactly what WASI exposes (§4.2); the point of the experiment
(Figure 5b) is that MPIWasm's userspace filesystem indirection does not limit
the achievable bandwidth.

The guest below performs real WASI file I/O (``path_open``/``fd_write``/
``fd_seek``/``fd_read`` through the virtual filesystem) on a scaled-down
block, verifies the data round-trips, and charges the *modelled* transfer
time of the full block size to the rank's clock using the machine's parallel
filesystem model -- so the reported bandwidth has the PFS/bottleneck structure
of the real measurement while the code path exercised is the WASI one.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.toolchain import mpi_header as abi
from repro.toolchain.guest import GuestProgram
from repro.toolchain.linker import PAPER_APPLICATIONS
from repro.sim.filesystem import ParallelFileSystemModel

#: Extra client-side overhead per byte charged on the Wasm path (the WASI
#: userspace permission handling + virtual directory tree of §3.4).
WASI_INDIRECTION_OVERHEAD_PER_BYTE = 0.004e-9


def make_ior_program(
    block_size: int = 1 << 20,
    transfer_size: int = 1 << 16,
    functional_bytes: int = 1 << 16,
    filesystem: Optional[ParallelFileSystemModel] = None,
    nnodes: int = 4,
    wasm_mode: bool = True,
) -> GuestProgram:
    """Build the IOR guest program for one block size.

    ``block_size`` is the per-rank amount the paper sweeps (1-16 MiB);
    ``functional_bytes`` is how much is really written through WASI per rank.
    """

    def main(api, args):
        api.mpi_init()
        rank = api.rank()
        size = api.size()
        fs = filesystem or ParallelFileSystemModel.dss_g()
        extra = WASI_INDIRECTION_OVERHEAD_PER_BYTE if wasm_mode else 0.0

        payload = np.arange(functional_bytes, dtype=np.uint8)
        payload = ((payload * (rank + 3)) % 251).astype(np.uint8)

        # --- write phase -----------------------------------------------------
        api.barrier()
        t0 = api.wtime()
        written = 0
        if hasattr(api, "env"):  # Wasm path: real WASI file I/O
            vfs = api.env.wasi.vfs
            dirfd = vfs.preopen_fd(0)
            fd = vfs.path_open(dirfd, f"ior-rank{rank}.dat", create=True, truncate=True,
                               read=True, write=True)
            for offset in range(0, functional_bytes, transfer_size):
                chunk = payload[offset : offset + transfer_size].tobytes()
                written += vfs.fd_write(fd, chunk)
            vfs.fd_seek(fd, 0, 0)
        else:  # native path: an in-memory file stand-in
            api._ior_file = bytearray()  # noqa: SLF001 - benchmark-local scratch
            for offset in range(0, functional_bytes, transfer_size):
                api._ior_file.extend(payload[offset : offset + transfer_size].tobytes())
                written += transfer_size
        api.compute(fs.transfer_time(block_size, size, nnodes, write=True, extra_overhead_per_byte=extra))
        api.barrier()
        write_elapsed = max(api.wtime() - t0, 1e-9)

        # --- read phase ------------------------------------------------------
        t1 = api.wtime()
        read_back = bytearray()
        if hasattr(api, "env"):
            while True:
                chunk = vfs.fd_read(fd, transfer_size)
                if not chunk:
                    break
                read_back.extend(chunk)
            vfs.fd_close(fd)
        else:
            read_back = bytearray(api._ior_file)
        api.compute(fs.transfer_time(block_size, size, nnodes, write=False, extra_overhead_per_byte=extra))
        api.barrier()
        read_elapsed = max(api.wtime() - t1, 1e-9)

        data_ok = bytes(read_back[:functional_bytes]) == payload.tobytes()
        api.mpi_finalize()
        return {
            "block_size": block_size,
            "written_bytes": written,
            "data_ok": data_ok,
            "write_bandwidth_mib_s": size * block_size / write_elapsed / (1 << 20),
            "read_bandwidth_mib_s": size * block_size / read_elapsed / (1 << 20),
            "write_elapsed": write_elapsed,
            "read_elapsed": read_elapsed,
        }

    return GuestProgram(
        name=f"ior-{block_size >> 20 or 1}mib",
        main=main,
        memory_pages=64,
        profile=PAPER_APPLICATIONS["IOR"],
        description=f"IOR POSIX backend, block size {block_size} bytes",
    )
