"""NAS Parallel Benchmarks: Integer Sort (IS) and Data Transfer (DT).

The paper uses the two pure-C members of the NPB suite (§4.2):

* **IS** performs a bucketed parallel integer sort: every rank generates keys,
  histograms them into per-rank buckets (``MPI_Allreduce`` on the histogram),
  exchanges bucket contents with ``MPI_Alltoall``/``MPI_Alltoallv``-style
  traffic and sorts its local range.  The reported metric is total mega
  operations per second (Mop/s) across all ranks (Figure 5a, left).
* **DT** streams arrays of doubles through a task graph -- Black-Hole (``bh``,
  many sources feeding one sink), White-Hole (``wh``, one source feeding many
  sinks) or Shuffle (``sh``, a layered shuffle network) -- applying pairwise
  comparison/reduction operations at every consumer node.  The reported
  metric is total throughput in MB/s (Figure 5a, right); its heavy pairwise
  compare loop is what makes it sensitive to SIMD width (the w/ and w/o SIMD
  bars of the figure).

Class sizes follow the NPB conventions scaled down so functional runs finish
in seconds; the figure-scale points are produced by the harness models which
reuse these kernels' operation counts.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.toolchain import mpi_header as abi
from repro.toolchain.guest import GuestProgram
from repro.toolchain.linker import PAPER_APPLICATIONS

#: Keys per rank for each NPB class (scaled-down functional sizes).
IS_CLASS_KEYS = {"S": 1 << 10, "W": 1 << 12, "A": 1 << 14, "B": 1 << 15, "C": 1 << 16}
#: Array elements per DT task for each class.
DT_CLASS_ELEMS = {"S": 1 << 10, "W": 1 << 12, "A": 1 << 14, "B": 1 << 15}
DT_TOPOLOGIES = ("bh", "wh", "sh")


# ---------------------------------------------------------------------- IS


def make_is_program(npb_class: str = "S", max_key_log2: int = 16) -> GuestProgram:
    """Integer Sort guest program (bucketed parallel sort)."""
    keys_per_rank = IS_CLASS_KEYS[npb_class]
    max_key = 1 << max_key_log2

    def main(api, args):
        api.mpi_init()
        rank = api.rank()
        size = api.size()

        # Deterministic per-rank key generation (NPB uses a power-law-ish
        # pseudo random sequence; a linear congruential generator is enough to
        # exercise the same communication structure).
        rng = np.random.default_rng(12345 + rank)
        keys = rng.integers(0, max_key, size=keys_per_rank, dtype=np.int32)

        keys_ptr, keys_arr = api.alloc_array(keys_per_rank, abi.MPI_INT)
        keys_arr[:] = keys

        t_start = api.wtime()

        # 1. Global histogram over `size` buckets (Allreduce, like NPB IS).
        bucket_edges = np.linspace(0, max_key, size + 1).astype(np.int64)
        local_hist = np.histogram(keys_arr, bins=bucket_edges)[0].astype(np.int32)
        hist_ptr, hist_arr = api.alloc_array(size, abi.MPI_INT)
        hist_out_ptr, hist_out = api.alloc_array(size, abi.MPI_INT)
        hist_arr[:] = local_hist
        api.allreduce(hist_ptr, hist_out_ptr, size, abi.MPI_INT, abi.MPI_SUM)

        # 2. Exchange bucket sizes, then bucket contents (Alltoall pattern).
        counts_ptr, counts_arr = api.alloc_array(size, abi.MPI_INT)
        counts_arr[:] = local_hist
        recv_counts_ptr, recv_counts = api.alloc_array(size, abi.MPI_INT)
        api.alltoall(counts_ptr, 1, abi.MPI_INT, recv_counts_ptr, 1, abi.MPI_INT)

        # Fixed-width alltoall exchange of bucket payloads (padded blocks).
        block = int(np.max(hist_out)) // size + keys_per_rank // size + 1
        send_ptr, send_arr = api.alloc_array(block * size, abi.MPI_INT, fill=0)
        recv_ptr, recv_arr = api.alloc_array(block * size, abi.MPI_INT, fill=0)
        order = np.argsort(keys_arr, kind="stable")
        sorted_local = keys_arr[order]
        offsets = np.searchsorted(sorted_local, bucket_edges[:-1])
        for dest in range(size):
            lo = offsets[dest]
            hi = offsets[dest + 1] if dest + 1 < size else keys_per_rank
            chunk = sorted_local[lo:hi][:block]
            send_arr[dest * block : dest * block + len(chunk)] = chunk
        api.alltoall(send_ptr, block, abi.MPI_INT, recv_ptr, block, abi.MPI_INT)

        # 3. Local sort of the received bucket + verification allreduce.
        received = np.array(recv_arr, copy=True)
        received.sort()
        checksum = int(received.astype(np.int64).sum() % (1 << 31))
        check_ptr, check_arr = api.alloc_array(1, abi.MPI_LONG)
        check_out_ptr, check_out = api.alloc_array(1, abi.MPI_LONG)
        check_arr[0] = checksum
        api.allreduce(check_ptr, check_out_ptr, 1, abi.MPI_LONG, abi.MPI_SUM)

        elapsed = max(api.wtime() - t_start, 1e-9)
        # Mop/s: NPB counts keys ranked per second (keys * ranks / time / 1e6).
        total_keys = keys_per_rank * size
        mops_total = total_keys / elapsed / 1e6
        api.mpi_finalize()
        return {
            "class": npb_class,
            "keys_per_rank": keys_per_rank,
            "mops_total": mops_total,
            "elapsed": elapsed,
            "checksum": int(check_out[0]),
            "sorted_ok": bool(np.all(np.diff(received) >= 0)),
        }

    return GuestProgram(
        name=f"npb-is-{npb_class.lower()}",
        main=main,
        memory_pages=128,
        profile=PAPER_APPLICATIONS["IS"],
        description=f"NPB Integer Sort, class {npb_class}",
    )


# ---------------------------------------------------------------------- DT


def _dt_edges(topology: str, size: int) -> List[tuple]:
    """Task-graph edges (src rank, dst rank) for a DT topology."""
    if size < 2:
        return []
    if topology == "bh":        # Black-Hole: every other rank feeds rank 0
        return [(src, 0) for src in range(1, size)]
    if topology == "wh":        # White-Hole: rank 0 feeds every other rank
        return [(0, dst) for dst in range(1, size)]
    if topology == "sh":        # Shuffle: ring-shifted layers
        return [(src, (src + size // 2) % size) for src in range(size)]
    raise KeyError(f"unknown DT topology {topology!r}")


def make_dt_program(topology: str = "bh", npb_class: str = "S", simd: bool = True) -> GuestProgram:
    """Data Transfer guest program for one topology (bh / wh / sh)."""
    if topology not in DT_TOPOLOGIES:
        raise KeyError(f"unknown DT topology {topology!r}; known: {DT_TOPOLOGIES}")
    elems = DT_CLASS_ELEMS[npb_class]

    def main(api, args):
        api.mpi_init()
        rank = api.rank()
        size = api.size()
        edges = _dt_edges(topology, size)

        buf_ptr, buf = api.alloc_array(elems, abi.MPI_DOUBLE)
        recv_ptr, recv = api.alloc_array(elems, abi.MPI_DOUBLE)
        rng = np.random.default_rng(777 + rank)
        buf[:] = rng.random(elems)

        t_start = api.wtime()
        bytes_moved = 0
        feeds = [e for e in edges if e[0] == rank]
        consumes = [e for e in edges if e[1] == rank]
        for src, dst in feeds:
            api.send(buf_ptr, elems, abi.MPI_DOUBLE, dst, 7)
            bytes_moved += elems * 8
        for src, dst in consumes:
            api.recv(recv_ptr, elems, abi.MPI_DOUBLE, src, 7)
            bytes_moved += elems * 8
            # The DT consumer performs pairwise comparisons/reductions over
            # the incoming array -- the vectorisable hot loop of the benchmark.
            combined = np.maximum(buf, recv)
            checksum = float(np.minimum(buf, recv).sum() + combined.sum())
            buf[:] = combined
            buf[0] = checksum % 1e9
        api.barrier()
        elapsed = max(api.wtime() - t_start, 1e-9)
        api.mpi_finalize()
        return {
            "topology": topology,
            "class": npb_class,
            "bytes_moved": bytes_moved,
            "elapsed": elapsed,
            "throughput_mb_s": bytes_moved / elapsed / 1e6,
            "simd": simd,
        }

    return GuestProgram(
        name=f"npb-dt-{topology}",
        main=main,
        memory_pages=96,
        profile=PAPER_APPLICATIONS["DT"],
        simd=simd,
        description=f"NPB Data Transfer, topology {topology}, class {npb_class}",
    )
