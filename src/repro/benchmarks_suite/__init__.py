"""Guest benchmark suites used by the paper's evaluation.

Intel MPI Benchmarks, NPB IS and DT, IOR, HPCG and the custom
datatype-translation PingPong, all written against the GuestAPI/NativeAPI
interface so one implementation serves both the Wasm and native series.
"""

from repro.benchmarks_suite import registry
from repro.benchmarks_suite.custom_pingpong import (
    FIGURE6_DATATYPES,
    FIGURE6_MESSAGE_SIZES,
    make_translation_pingpong_program,
)
from repro.benchmarks_suite.hpcg import build_hpcg_kernels, make_hpcg_program
from repro.benchmarks_suite.imb import (
    DEFAULT_MESSAGE_SIZES,
    ROUTINES,
    SMALL_MESSAGE_SIZES,
    make_imb_program,
    make_imb_suite_program,
)
from repro.benchmarks_suite.ior import make_ior_program
from repro.benchmarks_suite.npb import DT_TOPOLOGIES, make_dt_program, make_is_program

__all__ = [
    "registry",
    "ROUTINES",
    "DEFAULT_MESSAGE_SIZES",
    "SMALL_MESSAGE_SIZES",
    "make_imb_program",
    "make_imb_suite_program",
    "make_hpcg_program",
    "build_hpcg_kernels",
    "make_ior_program",
    "make_is_program",
    "make_dt_program",
    "DT_TOPOLOGIES",
    "make_translation_pingpong_program",
    "FIGURE6_DATATYPES",
    "FIGURE6_MESSAGE_SIZES",
]
