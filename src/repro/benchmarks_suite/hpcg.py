"""HPCG: the High Performance Conjugate Gradient benchmark.

HPCG solves a sparse linear system arising from a 27-point (here: 7-point)
Laplacian with a preconditioned conjugate-gradient iteration and reports the
achieved GFLOP/s and memory bandwidth.  Its communication signature -- the one
the paper analyses in §4.5 -- is the ``MPI_Allreduce`` of a single double per
dot product, called more and more often as the rank count grows.

The guest below runs a real (unpreconditioned) CG iteration on a local
7-point stencil subdomain per rank, with every dot product reduced across
ranks via ``MPI_Allreduce``.  In Wasm mode the vector kernels (``ddot`` and
``waxpby``) execute as genuine Wasm functions emitted by
:func:`build_hpcg_kernels` and compiled by the selected back-end -- this is
the workload Table 1 uses to compare Singlepass/Cranelift/LLVM.  Compute time
beyond the functional problem size is charged through the machine's sustained
rate model so figure-scale GFLOP/s numbers have the right magnitude.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.toolchain import mpi_header as abi
from repro.toolchain.guest import GuestProgram
from repro.toolchain.linker import PAPER_APPLICATIONS
from repro.wasm.builder import ModuleBuilder

#: Default (scaled-down) local problem dimensions for functional runs.
DEFAULT_DIMS = (16, 8, 8)
#: FLOPs per CG iteration per unknown (SpMV + 2 dots + 3 AXPYs, 7-pt stencil).
FLOPS_PER_ROW_PER_ITER = 14 + 2 * 2 + 3 * 2
#: Bytes touched per unknown per iteration (vectors + matrix row, 8-byte reals).
BYTES_PER_ROW_PER_ITER = 8 * (7 + 10)


def build_hpcg_kernels(mb: ModuleBuilder) -> None:
    """Emit the HPCG vector kernels as Wasm functions (``ddot`` and ``waxpby``).

    ``ddot(a_ptr, b_ptr, n) -> f64`` computes a dot product over ``n`` doubles;
    ``waxpby(w_ptr, x_ptr, y_ptr, alpha, beta, n)`` computes
    ``w = alpha*x + beta*y``.  Both loop over linear memory with f64 loads and
    stores, so the compiler back-end really executes numeric Wasm code.
    """
    ddot = mb.function(
        "hpcg_ddot",
        params=[("a", "i32"), ("b", "i32"), ("n", "i32")],
        results=["f64"],
        export=True,
    )
    ddot.add_local("i", "i32")
    ddot.add_local("acc", "f64")
    with ddot.for_range("i", end_local="n"):
        # acc += a[i] * b[i]
        ddot.get("acc")
        ddot.get("a").get("i").i32_const(8).emit("i32.mul").emit("i32.add").load("f64.load")
        ddot.get("b").get("i").i32_const(8).emit("i32.mul").emit("i32.add").load("f64.load")
        ddot.emit("f64.mul").emit("f64.add").set("acc")
    ddot.get("acc")

    waxpby = mb.function(
        "hpcg_waxpby",
        params=[("w", "i32"), ("x", "i32"), ("y", "i32"), ("alpha", "f64"), ("beta", "f64"), ("n", "i32")],
        results=[],
        export=True,
    )
    waxpby.add_local("i", "i32")
    waxpby.add_local("addr", "i32")
    with waxpby.for_range("i", end_local="n"):
        waxpby.get("w").get("i").i32_const(8).emit("i32.mul").emit("i32.add").set("addr")
        waxpby.get("addr")
        waxpby.get("alpha")
        waxpby.get("x").get("i").i32_const(8).emit("i32.mul").emit("i32.add").load("f64.load")
        waxpby.emit("f64.mul")
        waxpby.get("beta")
        waxpby.get("y").get("i").i32_const(8).emit("i32.mul").emit("i32.add").load("f64.load")
        waxpby.emit("f64.mul")
        waxpby.emit("f64.add")
        waxpby.store("f64.store")


def _apply_stencil(x: np.ndarray, dims) -> np.ndarray:
    """Matrix-free 7-point Laplacian on a local (nx, ny, nz) grid."""
    nx, ny, nz = dims
    grid = x.reshape(nz, ny, nx)
    out = 6.0 * grid
    out[1:, :, :] -= grid[:-1, :, :]
    out[:-1, :, :] -= grid[1:, :, :]
    out[:, 1:, :] -= grid[:, :-1, :]
    out[:, :-1, :] -= grid[:, 1:, :]
    out[:, :, 1:] -= grid[:, :, :-1]
    out[:, :, :-1] -= grid[:, :, 1:]
    # Keep the operator positive definite on the local block.
    out += 0.1 * grid
    return out.reshape(-1)


def make_hpcg_program(
    dims=DEFAULT_DIMS,
    iterations: int = 12,
    sustained_gflops: float = 1.0,
    use_wasm_kernels: bool = True,
    modelled_rows_per_rank: Optional[int] = None,
) -> GuestProgram:
    """Build the HPCG guest program.

    ``sustained_gflops`` is the per-rank sustained rate used to charge compute
    time (set by the harness from the machine preset and execution mode);
    ``modelled_rows_per_rank`` optionally scales the *charged* problem up to
    the paper's per-rank size while the functional solve stays small.
    """
    nx, ny, nz = dims
    n_local = nx * ny * nz

    def main(api, args):
        api.mpi_init()
        rank = api.rank()
        size = api.size()

        rows_for_model = modelled_rows_per_rank or n_local
        flops_per_iter = rows_for_model * FLOPS_PER_ROW_PER_ITER
        bytes_per_iter = rows_for_model * BYTES_PER_ROW_PER_ITER
        compute_seconds_per_iter = flops_per_iter / (sustained_gflops * 1e9)

        rng = np.random.default_rng(42 + rank)
        b = rng.random(n_local)
        x = np.zeros(n_local)

        # Guest-side vectors for the Wasm kernels (dot products of r and p).
        wasm_kernels = use_wasm_kernels and hasattr(api, "call_kernel") and hasattr(api, "env")
        if wasm_kernels:
            r_ptr, r_view = api.alloc_array(n_local, abi.MPI_DOUBLE)
            p_ptr, p_view = api.alloc_array(n_local, abi.MPI_DOUBLE)

        dot_send_ptr, dot_send = api.alloc_array(1, abi.MPI_DOUBLE)
        dot_recv_ptr, dot_recv = api.alloc_array(1, abi.MPI_DOUBLE)

        def global_dot(u: np.ndarray, v: np.ndarray) -> float:
            if wasm_kernels:
                r_view[:] = u
                p_view[:] = v
                [local] = api.call_kernel("hpcg_ddot", r_ptr, p_ptr, n_local)
            else:
                local = float(np.dot(u, v))
            dot_send[0] = local
            api.allreduce(dot_send_ptr, dot_recv_ptr, 1, abi.MPI_DOUBLE, abi.MPI_SUM)
            return float(dot_recv[0])

        t_start = api.wtime()
        r = b - _apply_stencil(x, dims)
        p = r.copy()
        rs_old = global_dot(r, r)
        residuals = [rs_old]
        for _ in range(iterations):
            Ap = _apply_stencil(p, dims)
            alpha = rs_old / max(global_dot(p, Ap), 1e-300)
            x = x + alpha * p
            r = r - alpha * Ap
            rs_new = global_dot(r, r)
            beta = rs_new / max(rs_old, 1e-300)
            p = r + beta * p
            rs_old = rs_new
            residuals.append(rs_new)
            api.compute(compute_seconds_per_iter)
        elapsed = max(api.wtime() - t_start, 1e-12)

        total_flops = iterations * flops_per_iter * size
        total_bytes = iterations * bytes_per_iter * size
        api.mpi_finalize()
        return {
            "ranks": size,
            "iterations": iterations,
            "gflops_total": total_flops / elapsed / 1e9,
            "bandwidth_gb_s": total_bytes / elapsed / 1e9,
            "elapsed": elapsed,
            "residual_initial": residuals[0],
            "residual_final": residuals[-1],
            "converging": residuals[-1] < residuals[0],
            "allreduce_calls": 2 * iterations + 1,
        }

    return GuestProgram(
        name="hpcg",
        main=main,
        memory_pages=128,
        build_kernels=build_hpcg_kernels,
        profile=PAPER_APPLICATIONS["HPCG"],
        description=f"HPCG conjugate gradient, local grid {dims}, {iterations} iterations",
    )
