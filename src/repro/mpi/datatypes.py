"""MPI datatypes of the host library.

The MPI standard leaves the concrete representation of ``MPI_Datatype`` to the
implementation -- this is exactly the ABI gap that MPIWasm's datatype
translation layer (§3.6 of the paper) bridges.  On the host side (this
module) datatypes are rich Python objects carrying a size and a NumPy dtype;
on the guest side they are plain 32-bit integers defined by
:mod:`repro.toolchain.mpi_header`.  The embedder's
:mod:`repro.core.datatype_translation` maps between the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


@dataclass(frozen=True)
class Datatype:
    """One MPI predefined datatype.

    Attributes
    ----------
    name:
        The MPI name, e.g. ``"MPI_DOUBLE"``.
    size:
        Size of one element in bytes (``MPI_Type_size``).
    np_dtype:
        NumPy dtype string used to view buffers of this type, or ``None`` for
        pure byte types that are only ever copied.
    """

    name: str
    size: int
    np_dtype: Optional[str]

    def numpy(self) -> np.dtype:
        """NumPy dtype object for this datatype (uint8 for byte-like types)."""
        return np.dtype(self.np_dtype or "uint8")

    def extent(self, count: int) -> int:
        """Number of bytes occupied by ``count`` contiguous elements."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return self.size * count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Datatype({self.name}, size={self.size})"


# Predefined datatypes of the MPI-2.2 standard that the benchmarks exercise.
BYTE = Datatype("MPI_BYTE", 1, "uint8")
PACKED = Datatype("MPI_PACKED", 1, "uint8")
CHAR = Datatype("MPI_CHAR", 1, "int8")
SIGNED_CHAR = Datatype("MPI_SIGNED_CHAR", 1, "int8")
UNSIGNED_CHAR = Datatype("MPI_UNSIGNED_CHAR", 1, "uint8")
SHORT = Datatype("MPI_SHORT", 2, "int16")
UNSIGNED_SHORT = Datatype("MPI_UNSIGNED_SHORT", 2, "uint16")
INT = Datatype("MPI_INT", 4, "int32")
UNSIGNED = Datatype("MPI_UNSIGNED", 4, "uint32")
LONG = Datatype("MPI_LONG", 8, "int64")
UNSIGNED_LONG = Datatype("MPI_UNSIGNED_LONG", 8, "uint64")
LONG_LONG = Datatype("MPI_LONG_LONG", 8, "int64")
UNSIGNED_LONG_LONG = Datatype("MPI_UNSIGNED_LONG_LONG", 8, "uint64")
FLOAT = Datatype("MPI_FLOAT", 4, "float32")
DOUBLE = Datatype("MPI_DOUBLE", 8, "float64")
LONG_DOUBLE = Datatype("MPI_LONG_DOUBLE", 16, "float64")
C_BOOL = Datatype("MPI_C_BOOL", 1, "uint8")
INT8_T = Datatype("MPI_INT8_T", 1, "int8")
INT16_T = Datatype("MPI_INT16_T", 2, "int16")
INT32_T = Datatype("MPI_INT32_T", 4, "int32")
INT64_T = Datatype("MPI_INT64_T", 8, "int64")
UINT8_T = Datatype("MPI_UINT8_T", 1, "uint8")
UINT16_T = Datatype("MPI_UINT16_T", 2, "uint16")
UINT32_T = Datatype("MPI_UINT32_T", 4, "uint32")
UINT64_T = Datatype("MPI_UINT64_T", 8, "uint64")
# Fortran-compatible aliases used by some benchmarks.
DOUBLE_PRECISION = Datatype("MPI_DOUBLE_PRECISION", 8, "float64")
REAL = Datatype("MPI_REAL", 4, "float32")
INTEGER = Datatype("MPI_INTEGER", 4, "int32")


PREDEFINED: Dict[str, Datatype] = {
    dt.name: dt
    for dt in (
        BYTE,
        PACKED,
        CHAR,
        SIGNED_CHAR,
        UNSIGNED_CHAR,
        SHORT,
        UNSIGNED_SHORT,
        INT,
        UNSIGNED,
        LONG,
        UNSIGNED_LONG,
        LONG_LONG,
        UNSIGNED_LONG_LONG,
        FLOAT,
        DOUBLE,
        LONG_DOUBLE,
        C_BOOL,
        INT8_T,
        INT16_T,
        INT32_T,
        INT64_T,
        UINT8_T,
        UINT16_T,
        UINT32_T,
        UINT64_T,
        DOUBLE_PRECISION,
        REAL,
        INTEGER,
    )
}


def by_name(name: str) -> Datatype:
    """Look up a predefined datatype by its MPI name."""
    try:
        return PREDEFINED[name]
    except KeyError as exc:
        raise KeyError(f"unknown MPI datatype {name!r}") from exc
