"""Registry of collective algorithms, keyed by ``(collective, algorithm)``.

Mirrors the structure of Open MPI's ``coll`` framework: each collective
operation has several interchangeable algorithm implementations registered
under short names (``"binomial"``, ``"ring"``, ...), and a decision layer
(:mod:`repro.mpi.algorithms.decision`) picks one per call based on message
size and communicator size -- unless an override forces a specific one.

Since the session-API redesign the backing store is the unified registry
(:data:`repro.api.registry.ALGORITHMS`, composite keys
``"<collective>:<algorithm>"``); this module keeps the collective-specific
API (tuple-keyed registration, per-collective catalogues) on top of it, and
third-party algorithms may equivalently use
``@repro.api.register_algorithm(collective, name)``.

Algorithm functions share a fixed signature per collective (see the
individual modules); all of them operate on a
:class:`repro.mpi.algorithms.base.CollectiveContext`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.api.registry import ALGORITHMS, DuplicateEntryError, UnknownEntryError

#: The collectives the subsystem dispatches.
COLLECTIVES = (
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
)


class UnknownAlgorithmError(KeyError):
    """Raised when a (collective, algorithm) pair is not registered."""


def _key(collective: str, name: str) -> str:
    return f"{collective}:{name}"


def register(collective: str, name: str) -> Callable[[Callable], Callable]:
    """Decorator registering ``fn`` as algorithm ``name`` of ``collective``."""
    if collective not in COLLECTIVES:
        raise ValueError(f"unknown collective {collective!r}; known: {COLLECTIVES}")

    def decorator(fn: Callable) -> Callable:
        try:
            ALGORITHMS.register(_key(collective, name), obj=fn)
        except DuplicateEntryError:
            raise ValueError(
                f"algorithm {name!r} already registered for {collective!r}"
            ) from None
        return fn

    return decorator


def get(collective: str, name: str) -> Callable:
    """Look up the implementation of algorithm ``name`` for ``collective``."""
    try:
        return ALGORITHMS.get(_key(collective, name))
    except UnknownEntryError:
        known = algorithms_for(collective)
        raise UnknownAlgorithmError(
            f"no algorithm {name!r} for collective {collective!r}; known: {known}"
        ) from None


def algorithms_for(collective: str) -> List[str]:
    """Names of every algorithm registered for ``collective``."""
    prefix = f"{collective}:"
    return sorted(
        key[len(prefix):] for key in ALGORITHMS.names() if key.startswith(prefix)
    )


def is_registered(collective: str, name: str) -> bool:
    """Whether ``(collective, name)`` is a registered algorithm."""
    return ALGORITHMS.contains(_key(collective, name))


def catalog() -> Dict[str, List[str]]:
    """Snapshot of the full registry: collective -> algorithm names."""
    return {collective: algorithms_for(collective) for collective in COLLECTIVES}
