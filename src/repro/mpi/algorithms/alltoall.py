"""Alltoall algorithms: pairwise exchange and basic linear.

Both are expressed as schedules over two named buffers: ``"send"`` (``p``
outgoing blocks) and ``"recv"`` (``p`` incoming blocks).  The registered
blocking functions execute the same schedules ``MPI_Ialltoall`` advances
incrementally.
"""

from __future__ import annotations

from repro.mpi.algorithms.base import KIND_ALLTOALL, CollectiveContext, coll_tag
from repro.mpi.algorithms.registry import register
from repro.mpi.algorithms.schedule import (
    CopyStep,
    RecvStep,
    Schedule,
    SendStep,
    execute,
    register_builder,
)

#: Buffer names every alltoall schedule uses.
SEND = "send"
RECV = "recv"


@register_builder("alltoall", "pairwise")
def build_alltoall_pairwise(rank: int, size: int, nbytes_per_rank: int, seq: int) -> Schedule:
    """Pairwise-exchange alltoall: ``p - 1`` shifted exchange rounds.

    At round ``s`` every rank sends to ``rank + s`` and receives from
    ``rank - s``, so at most one message per rank is in flight per round --
    the bandwidth-friendly schedule for large blocks.
    """
    sched = Schedule()
    p = size
    b = nbytes_per_rank
    tag = coll_tag(KIND_ALLTOALL, seq)
    # Local block copies directly.
    sched.round([CopyStep(SEND, rank * b, RECV, rank * b, b)])
    for step in range(1, p):
        dst = (rank + step) % p
        src = (rank - step) % p
        sched.round([
            SendStep(dst, tag + step, SEND, dst * b, b),
            RecvStep(src, tag + step, RECV, src * b, b),
        ])
    return sched


@register_builder("alltoall", "linear")
def build_alltoall_linear(rank: int, size: int, nbytes_per_rank: int, seq: int) -> Schedule:
    """Basic linear alltoall: post every send up front, then drain receives.

    Relies on the context's non-blocking sends (the matching engine buffers),
    so all ``p - 1`` outgoing blocks are in flight at once -- the
    latency-friendly schedule for small blocks.  Messages are distinguished
    by source, so a single tag suffices.
    """
    sched = Schedule()
    p = size
    b = nbytes_per_rank
    tag = coll_tag(KIND_ALLTOALL, seq)
    sched.round([CopyStep(SEND, rank * b, RECV, rank * b, b)])
    sched.round([
        SendStep(peer, tag, SEND, peer * b, b) for peer in range(p) if peer != rank
    ])
    sched.round([
        RecvStep(peer, tag, RECV, peer * b, b) for peer in range(p) if peer != rank
    ])
    return sched


def _run_alltoall(cc: CollectiveContext, sched: Schedule, sendbuf: bytes,
                  recvbuf: bytearray, nbytes_per_rank: int) -> None:
    execute(cc, sched, {SEND: bytearray(sendbuf[: cc.size * nbytes_per_rank]), RECV: recvbuf})


@register("alltoall", "pairwise")
def alltoall_pairwise(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    nbytes_per_rank: int,
    seq: int,
) -> None:
    """Blocking pairwise-exchange alltoall (executes the schedule in place)."""
    sched = build_alltoall_pairwise(cc.rank, cc.size, nbytes_per_rank, seq)
    _run_alltoall(cc, sched, sendbuf, recvbuf, nbytes_per_rank)


@register("alltoall", "linear")
def alltoall_linear(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    nbytes_per_rank: int,
    seq: int,
) -> None:
    """Blocking linear alltoall (executes the schedule in place)."""
    sched = build_alltoall_linear(cc.rank, cc.size, nbytes_per_rank, seq)
    _run_alltoall(cc, sched, sendbuf, recvbuf, nbytes_per_rank)
