"""Alltoall algorithms: pairwise exchange and basic linear.

Signature shared by every alltoall algorithm::

    fn(cc, sendbuf, recvbuf, nbytes_per_rank, seq) -> None
"""

from __future__ import annotations

from repro.mpi.algorithms.base import KIND_ALLTOALL, CollectiveContext, coll_tag
from repro.mpi.algorithms.registry import register


@register("alltoall", "pairwise")
def alltoall_pairwise(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    nbytes_per_rank: int,
    seq: int,
) -> None:
    """Pairwise-exchange alltoall: ``p - 1`` shifted exchange steps.

    At step ``s`` every rank sends to ``rank + s`` and receives from
    ``rank - s``, so at most one message per rank is in flight per step --
    the bandwidth-friendly schedule for large blocks.
    """
    p = cc.size
    tag = coll_tag(KIND_ALLTOALL, seq)
    # Local block copies directly.
    recvbuf[cc.rank * nbytes_per_rank : (cc.rank + 1) * nbytes_per_rank] = sendbuf[
        cc.rank * nbytes_per_rank : (cc.rank + 1) * nbytes_per_rank
    ]
    for step in range(1, p):
        dst = (cc.rank + step) % p
        src = (cc.rank - step) % p
        block = bytes(sendbuf[dst * nbytes_per_rank : (dst + 1) * nbytes_per_rank])
        cc.send(dst, tag + step, block)
        incoming = cc.recv(src, tag + step, nbytes_per_rank)
        recvbuf[src * nbytes_per_rank : (src + 1) * nbytes_per_rank] = incoming


@register("alltoall", "linear")
def alltoall_linear(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    nbytes_per_rank: int,
    seq: int,
) -> None:
    """Basic linear alltoall: post every send up front, then drain receives.

    Relies on the context's non-blocking sends (the matching engine buffers),
    so all ``p - 1`` outgoing blocks are in flight at once -- the
    latency-friendly schedule for small blocks.  Messages are distinguished
    by source, so a single tag suffices.
    """
    p = cc.size
    b = nbytes_per_rank
    rank = cc.rank
    tag = coll_tag(KIND_ALLTOALL, seq)
    recvbuf[rank * b : (rank + 1) * b] = sendbuf[rank * b : (rank + 1) * b]
    for peer in range(p):
        if peer == rank:
            continue
        cc.send(peer, tag, bytes(sendbuf[peer * b : (peer + 1) * b]))
    for peer in range(p):
        if peer == rank:
            continue
        recvbuf[peer * b : (peer + 1) * b] = cc.recv(peer, tag, b)
