"""Gather and scatter algorithms: linear (root exchanges with every rank)
and binomial tree (blocks aggregated/partitioned along subtrees).

Signatures::

    gather:  fn(cc, sendbuf, recvbuf, nbytes_per_rank, root, seq) -> None
    scatter: fn(cc, sendbuf, recvbuf, nbytes_per_rank, root, seq) -> None

For gather, ``recvbuf`` is a ``bytearray`` of ``p`` blocks on the root and
``None`` elsewhere; for scatter, ``sendbuf`` is ``p`` blocks on the root and
``None`` elsewhere.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.mpi.algorithms.base import (
    KIND_GATHER,
    KIND_SCATTER,
    CollectiveContext,
    coll_tag,
)
from repro.mpi.algorithms.registry import register


@register("gather", "linear")
def gather_linear(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: Optional[bytearray],
    nbytes_per_rank: int,
    root: int,
    seq: int,
) -> None:
    """Linear gather: every non-root rank sends its block to the root."""
    p = cc.size
    tag = coll_tag(KIND_GATHER, seq)
    if cc.rank == root:
        if recvbuf is None:
            raise ValueError("root must supply a receive buffer to gather")
        recvbuf[root * nbytes_per_rank : (root + 1) * nbytes_per_rank] = sendbuf[:nbytes_per_rank]
        for src in range(p):
            if src == root:
                continue
            block = cc.recv(src, tag, nbytes_per_rank)
            recvbuf[src * nbytes_per_rank : (src + 1) * nbytes_per_rank] = block
    else:
        cc.send(root, tag, bytes(sendbuf[:nbytes_per_rank]))


@register("gather", "binomial")
def gather_binomial(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: Optional[bytearray],
    nbytes_per_rank: int,
    root: int,
    seq: int,
) -> None:
    """Binomial-tree gather: subtree blocks are aggregated on the way up.

    The subtree hanging off virtual rank ``v`` at bit position ``m`` covers
    the contiguous virtual-rank range ``[v, min(v + m, p))``, so every
    internal node forwards one packed message per child instead of the root
    receiving ``p - 1`` individual blocks.
    """
    p = cc.size
    b = nbytes_per_rank
    tag = coll_tag(KIND_GATHER, seq)
    vrank = (cc.rank - root) % p
    blocks: Dict[int, bytes] = {vrank: bytes(sendbuf[:b])}
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = ((vrank - mask) + root) % p
            span = min(mask, p - vrank)
            payload = b"".join(blocks[v] for v in range(vrank, vrank + span))
            cc.send(parent, tag, payload)
            break
        vchild = vrank | mask
        if vchild < p:
            span = min(mask, p - vchild)
            data = cc.recv((vchild + root) % p, tag, span * b)
            for i in range(span):
                blocks[vchild + i] = bytes(data[i * b : (i + 1) * b])
        mask <<= 1
    if vrank == 0:
        if recvbuf is None:
            raise ValueError("root must supply a receive buffer to gather")
        for v in range(p):
            absolute = (v + root) % p
            recvbuf[absolute * b : (absolute + 1) * b] = blocks[v]


@register("scatter", "linear")
def scatter_linear(
    cc: CollectiveContext,
    sendbuf: Optional[bytes],
    recvbuf: bytearray,
    nbytes_per_rank: int,
    root: int,
    seq: int,
) -> None:
    """Linear scatter: the root sends one block to every other rank."""
    p = cc.size
    tag = coll_tag(KIND_SCATTER, seq)
    if cc.rank == root:
        if sendbuf is None:
            raise ValueError("root must supply a send buffer to scatter")
        recvbuf[:nbytes_per_rank] = sendbuf[
            root * nbytes_per_rank : (root + 1) * nbytes_per_rank
        ]
        for dst in range(p):
            if dst == root:
                continue
            block = bytes(sendbuf[dst * nbytes_per_rank : (dst + 1) * nbytes_per_rank])
            cc.send(dst, tag, block)
    else:
        data = cc.recv(root, tag, nbytes_per_rank)
        recvbuf[:nbytes_per_rank] = data


@register("scatter", "binomial")
def scatter_binomial(
    cc: CollectiveContext,
    sendbuf: Optional[bytes],
    recvbuf: bytearray,
    nbytes_per_rank: int,
    root: int,
    seq: int,
) -> None:
    """Binomial-tree scatter: the mirror of the binomial gather.

    Each rank receives the packed blocks of its whole subtree from its parent
    and forwards the halves belonging to its children, so the root injects
    ``log2(p)`` messages instead of ``p - 1``.
    """
    p = cc.size
    b = nbytes_per_rank
    tag = coll_tag(KIND_SCATTER, seq)
    vrank = (cc.rank - root) % p

    blocks: Dict[int, bytes] = {}
    if vrank == 0:
        if sendbuf is None:
            raise ValueError("root must supply a send buffer to scatter")
        for v in range(p):
            absolute = (v + root) % p
            blocks[v] = bytes(sendbuf[absolute * b : (absolute + 1) * b])
    # Phase 1: receive this rank's subtree from the binomial parent.
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = ((vrank - mask) + root) % p
            span = min(mask, p - vrank)
            data = cc.recv(parent, tag, span * b)
            for i in range(span):
                blocks[vrank + i] = bytes(data[i * b : (i + 1) * b])
            break
        mask <<= 1
    # Phase 2: forward each child its sub-range.
    mask >>= 1
    while mask > 0:
        vchild = vrank + mask
        if vchild < p:
            span = min(mask, p - vchild)
            payload = b"".join(blocks[v] for v in range(vchild, vchild + span))
            cc.send((vchild + root) % p, tag, payload)
        mask >>= 1
    recvbuf[:b] = blocks[vrank]
