"""Pluggable collective-algorithm subsystem.

Mirrors the role of Open MPI's ``coll/tuned`` component for the simulated
host MPI library: every collective has several interchangeable algorithm
implementations in a registry keyed by ``(collective, algorithm)``, and a
size-based decision layer picks one per call -- overridable per job through
:class:`repro.core.config.EmbedderConfig` or the ``REPRO_COLL_ALGO``
environment knob (see :mod:`repro.mpi.algorithms.decision`).

Importing this package populates the registry with the bundled algorithms:

========== =====================================
collective algorithms
========== =====================================
barrier    dissemination, linear
bcast      binomial, scatter_allgather
reduce     binomial, rabenseifner
allreduce  recursive_doubling, ring, reduce_bcast
gather     linear, binomial
scatter    linear, binomial
allgather  ring, bruck
alltoall   pairwise, linear
========== =====================================
"""

from __future__ import annotations

from repro.mpi.algorithms import registry
from repro.mpi.algorithms.base import CollectiveContext, coll_tag
from repro.mpi.algorithms.decision import (
    ENV_KNOB,
    CollectiveSelector,
    DecisionTable,
    Rule,
)

# Importing the implementation modules registers the bundled algorithms.
from repro.mpi.algorithms import (  # noqa: E402,F401  (import for side effect)
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather_scatter,
    reduce,
)

__all__ = [
    "CollectiveContext",
    "CollectiveSelector",
    "DecisionTable",
    "ENV_KNOB",
    "Rule",
    "coll_tag",
    "registry",
]
