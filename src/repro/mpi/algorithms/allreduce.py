"""Allreduce algorithms: recursive doubling, ring, and reduce+bcast.

Signature shared by every allreduce algorithm::

    fn(cc, sendbuf, recvbuf, count, datatype, op, seq) -> None
"""

from __future__ import annotations

from repro.mpi.algorithms.base import (
    KIND_ALLREDUCE,
    CollectiveContext,
    chunk_counts,
    chunk_offsets,
    coll_tag,
    combine,
    combine_segment,
    largest_power_of_two_leq,
)
from repro.mpi.algorithms.registry import register
from repro.mpi.algorithms.reduce import _absolute_rank, _fold_to_power_of_two
from repro.mpi.datatypes import Datatype
from repro.mpi.ops import Op

# Tag offset for the post-phase that hands results back to folded-out ranks
# (doubling rounds use offsets 1..log2(p), far below 63).
_UNFOLD_TAG_OFFSET = 63


@register("allreduce", "recursive_doubling")
def allreduce_recursive_doubling(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    count: int,
    datatype: Datatype,
    op: Op,
    seq: int,
) -> None:
    """Recursive-doubling allreduce: ``log2(p)`` full-vector exchanges.

    Latency-optimal for short vectors.  Non-power-of-two sizes fold the extra
    ranks into neighbours first and hand the result back afterwards.
    """
    p = cc.size
    nbytes = count * datatype.size
    acc = bytearray(sendbuf[:nbytes])
    if p <= 1:
        recvbuf[:nbytes] = acc
        return

    tag = coll_tag(KIND_ALLREDUCE, seq)
    pof2 = largest_power_of_two_leq(p)
    rem = p - pof2
    vrank = _fold_to_power_of_two(cc, acc, count, datatype, op, tag, rem)

    if vrank != -1:
        mask = 1
        round_no = 1
        while mask < pof2:
            partner = _absolute_rank(vrank ^ mask, rem)
            cc.send(partner, tag + round_no, bytes(acc))
            contribution = cc.recv(partner, tag + round_no, nbytes)
            combine(cc, op, acc, contribution, datatype, count)
            mask <<= 1
            round_no += 1

    # Post-phase: odd members of the folded pairs return the result.
    rank = cc.rank
    if rank < 2 * rem:
        if rank % 2 == 1:
            cc.send(rank - 1, tag + _UNFOLD_TAG_OFFSET, bytes(acc))
        else:
            acc = bytearray(cc.recv(rank + 1, tag + _UNFOLD_TAG_OFFSET, nbytes))
    recvbuf[:nbytes] = acc


@register("allreduce", "ring")
def allreduce_ring(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    count: int,
    datatype: Datatype,
    op: Op,
    seq: int,
) -> None:
    """Ring allreduce: ring reduce-scatter followed by ring allgather.

    Bandwidth-optimal (~``2 * nbytes`` moved per rank independent of ``p``),
    the algorithm behind large-message allreduce in Open MPI's tuned module
    and in collective communication libraries for ML.  Works for any ``p``;
    chunk boundaries follow the MPICH near-equal split.
    """
    p = cc.size
    esize = datatype.size
    nbytes = count * esize
    acc = bytearray(sendbuf[:nbytes])
    if p <= 1:
        recvbuf[:nbytes] = acc
        return

    tag = coll_tag(KIND_ALLREDUCE, seq)
    rank = cc.rank
    right = (rank + 1) % p
    left = (rank - 1) % p
    cnts = chunk_counts(count, p)
    offs = chunk_offsets(cnts)

    def chunk(index: int) -> bytes:
        lo = offs[index] * esize
        return bytes(acc[lo : lo + cnts[index] * esize])

    # Reduce-scatter: after step s this rank has combined s+1 contributions
    # into chunk (rank - s - 1); after p-1 steps chunk (rank + 1) is complete.
    for step in range(p - 1):
        send_idx = (rank - step) % p
        recv_idx = (rank - step - 1) % p
        cc.send(right, tag + step, chunk(send_idx))
        incoming = cc.recv(left, tag + step, cnts[recv_idx] * esize)
        combine_segment(cc, op, acc, incoming, datatype, offs[recv_idx], cnts[recv_idx])

    # Allgather: circulate the completed chunks around the ring.
    for step in range(p - 1):
        send_idx = (rank + 1 - step) % p
        recv_idx = (rank - step) % p
        cc.send(right, tag + (p - 1) + step, chunk(send_idx))
        incoming = cc.recv(left, tag + (p - 1) + step, cnts[recv_idx] * esize)
        lo = offs[recv_idx] * esize
        acc[lo : lo + cnts[recv_idx] * esize] = incoming

    recvbuf[:nbytes] = acc


@register("allreduce", "reduce_bcast")
def allreduce_reduce_bcast(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    count: int,
    datatype: Datatype,
    op: Op,
    seq: int,
) -> None:
    """Allreduce composed from a binomial reduce-to-0 and a binomial bcast.

    The textbook composition the original single-algorithm implementation
    used; kept as a registered algorithm so the composition stays selectable
    and comparable against the fused ones.
    """
    from repro.mpi.algorithms.bcast import bcast_binomial
    from repro.mpi.algorithms.reduce import reduce_binomial

    nbytes = count * datatype.size
    tmp = bytearray(nbytes)
    reduce_binomial(cc, sendbuf, tmp if cc.rank == 0 else None, count, datatype, op, 0, seq)
    if cc.rank == 0:
        recvbuf[:nbytes] = tmp
    bcast_buf = bytearray(recvbuf[:nbytes]) if cc.rank == 0 else bytearray(nbytes)
    bcast_binomial(cc, bcast_buf, nbytes, 0, seq)
    recvbuf[:nbytes] = bcast_buf[:nbytes]
