"""Allreduce algorithms: recursive doubling, ring, and reduce+bcast.

Recursive doubling and the ring are expressed as schedules over the
accumulator buffer ``"acc"`` (initialised with this rank's contribution and
holding the result at completion); the registered blocking functions execute
the same schedules ``MPI_Iallreduce`` advances incrementally.  The composed
``reduce_bcast`` algorithm stays a composition of the (schedule-based)
binomial reduce and bcast.
"""

from __future__ import annotations

from repro.mpi.algorithms.base import (
    KIND_ALLREDUCE,
    CollectiveContext,
    chunk_counts,
    chunk_offsets,
    coll_tag,
    fold_absolute_rank,
    largest_power_of_two_leq,
)
from repro.mpi.algorithms.registry import register
from repro.mpi.algorithms.schedule import (
    RecvStep,
    ReduceStep,
    Schedule,
    SendStep,
    execute,
    register_builder,
)
from repro.mpi.datatypes import Datatype
from repro.mpi.ops import Op

# Tag offset for the post-phase that hands results back to folded-out ranks
# (doubling rounds use offsets 1..log2(p), far below 63).
_UNFOLD_TAG_OFFSET = 63

#: Accumulator buffer name every allreduce schedule reads and writes.
ACC = "acc"


def _fold_rounds(sched: Schedule, rank: int, count: int, esize: int, tag: int,
                 rem: int, tmp: str) -> int:
    """Emit the fold pre-phase for non-power-of-two sizes.

    The first ``2 * rem`` ranks pair up: each even rank sends its vector to
    its odd neighbour (which combines it) and drops out of the core phase.
    Returns the rank's virtual id within the power-of-two group, or ``-1``
    for folded-out ranks.
    """
    nbytes = count * esize
    if rank < 2 * rem:
        if rank % 2 == 0:
            sched.round([SendStep(rank + 1, tag, ACC, 0, nbytes)])
            return -1
        sched.round([
            RecvStep(rank - 1, tag, tmp, 0, nbytes),
            ReduceStep(tmp, 0, ACC, 0, count),
        ])
        return rank // 2
    return rank - rem


def _unfold_round(sched: Schedule, rank: int, nbytes: int, tag: int, rem: int) -> None:
    """Post-phase: odd members of the folded pairs return the result."""
    if rank < 2 * rem:
        if rank % 2 == 1:
            sched.round([SendStep(rank - 1, tag + _UNFOLD_TAG_OFFSET, ACC, 0, nbytes)])
        else:
            sched.round([RecvStep(rank + 1, tag + _UNFOLD_TAG_OFFSET, ACC, 0, nbytes)])


@register_builder("allreduce", "recursive_doubling")
def build_allreduce_recursive_doubling(
    rank: int, size: int, count: int, esize: int, seq: int
) -> Schedule:
    """Recursive-doubling allreduce: ``log2(p)`` full-vector exchanges.

    Latency-optimal for short vectors.  Non-power-of-two sizes fold the extra
    ranks into neighbours first and hand the result back afterwards.
    """
    sched = Schedule()
    p = size
    nbytes = count * esize
    if p <= 1:
        return sched

    tag = coll_tag(KIND_ALLREDUCE, seq)
    pof2 = largest_power_of_two_leq(p)
    rem = p - pof2
    tmp = sched.temp("tmp", nbytes)
    vrank = _fold_rounds(sched, rank, count, esize, tag, rem, tmp)

    if vrank != -1:
        mask = 1
        round_no = 1
        while mask < pof2:
            partner = fold_absolute_rank(vrank ^ mask, rem)
            sched.round([
                SendStep(partner, tag + round_no, ACC, 0, nbytes),
                RecvStep(partner, tag + round_no, tmp, 0, nbytes),
                ReduceStep(tmp, 0, ACC, 0, count),
            ])
            mask <<= 1
            round_no += 1

    _unfold_round(sched, rank, nbytes, tag, rem)
    return sched


@register_builder("allreduce", "ring")
def build_allreduce_ring(rank: int, size: int, count: int, esize: int, seq: int) -> Schedule:
    """Ring allreduce: ring reduce-scatter followed by ring allgather.

    Bandwidth-optimal (~``2 * nbytes`` moved per rank independent of ``p``),
    the algorithm behind large-message allreduce in Open MPI's tuned module
    and in collective communication libraries for ML.  Works for any ``p``;
    chunk boundaries follow the MPICH near-equal split.
    """
    sched = Schedule()
    p = size
    if p <= 1:
        return sched

    tag = coll_tag(KIND_ALLREDUCE, seq)
    right = (rank + 1) % p
    left = (rank - 1) % p
    cnts = chunk_counts(count, p)
    offs = chunk_offsets(cnts)
    tmp = sched.temp("tmp", max(cnts) * esize if cnts else 0)

    # Reduce-scatter: after step s this rank has combined s+1 contributions
    # into chunk (rank - s - 1); after p-1 steps chunk (rank + 1) is complete.
    for step in range(p - 1):
        send_idx = (rank - step) % p
        recv_idx = (rank - step - 1) % p
        sched.round([
            SendStep(right, tag + step, ACC, offs[send_idx] * esize, cnts[send_idx] * esize),
            RecvStep(left, tag + step, tmp, 0, cnts[recv_idx] * esize),
            ReduceStep(tmp, 0, ACC, offs[recv_idx], cnts[recv_idx]),
        ])

    # Allgather: circulate the completed chunks around the ring.
    for step in range(p - 1):
        send_idx = (rank + 1 - step) % p
        recv_idx = (rank - step) % p
        sched.round([
            SendStep(right, tag + (p - 1) + step, ACC, offs[send_idx] * esize, cnts[send_idx] * esize),
            RecvStep(left, tag + (p - 1) + step, ACC, offs[recv_idx] * esize, cnts[recv_idx] * esize),
        ])
    return sched


def _run_allreduce_schedule(
    cc: CollectiveContext,
    sched: Schedule,
    sendbuf: bytes,
    recvbuf: bytearray,
    count: int,
    datatype: Datatype,
    op: Op,
) -> None:
    nbytes = count * datatype.size
    buffers = execute(cc, sched, {ACC: bytearray(sendbuf[:nbytes])}, datatype, op)
    recvbuf[:nbytes] = buffers[ACC][:nbytes]


@register("allreduce", "recursive_doubling")
def allreduce_recursive_doubling(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    count: int,
    datatype: Datatype,
    op: Op,
    seq: int,
) -> None:
    """Blocking recursive-doubling allreduce (executes the schedule)."""
    sched = build_allreduce_recursive_doubling(cc.rank, cc.size, count, datatype.size, seq)
    _run_allreduce_schedule(cc, sched, sendbuf, recvbuf, count, datatype, op)


@register("allreduce", "ring")
def allreduce_ring(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    count: int,
    datatype: Datatype,
    op: Op,
    seq: int,
) -> None:
    """Blocking ring allreduce (executes the schedule)."""
    sched = build_allreduce_ring(cc.rank, cc.size, count, datatype.size, seq)
    _run_allreduce_schedule(cc, sched, sendbuf, recvbuf, count, datatype, op)


@register("allreduce", "reduce_bcast")
def allreduce_reduce_bcast(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    count: int,
    datatype: Datatype,
    op: Op,
    seq: int,
) -> None:
    """Allreduce composed from a binomial reduce-to-0 and a binomial bcast.

    The textbook composition the original single-algorithm implementation
    used; kept as a registered algorithm so the composition stays selectable
    and comparable against the fused ones.
    """
    from repro.mpi.algorithms.bcast import bcast_binomial
    from repro.mpi.algorithms.reduce import reduce_binomial

    nbytes = count * datatype.size
    tmp = bytearray(nbytes)
    reduce_binomial(cc, sendbuf, tmp if cc.rank == 0 else None, count, datatype, op, 0, seq)
    if cc.rank == 0:
        recvbuf[:nbytes] = tmp
    bcast_buf = bytearray(recvbuf[:nbytes]) if cc.rank == 0 else bytearray(nbytes)
    bcast_binomial(cc, bcast_buf, nbytes, 0, seq)
    recvbuf[:nbytes] = bcast_buf[:nbytes]
