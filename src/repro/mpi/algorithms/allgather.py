"""Allgather algorithms: ring and Bruck.

Signature shared by every allgather algorithm::

    fn(cc, sendbuf, recvbuf, nbytes_per_rank, seq) -> None
"""

from __future__ import annotations

from repro.mpi.algorithms.base import KIND_ALLGATHER, CollectiveContext, coll_tag
from repro.mpi.algorithms.registry import register


@register("allgather", "ring")
def allgather_ring(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    nbytes_per_rank: int,
    seq: int,
) -> None:
    """Ring allgather: ``p - 1`` steps, each forwarding the next rank's block."""
    p = cc.size
    tag = coll_tag(KIND_ALLGATHER, seq)
    recvbuf[cc.rank * nbytes_per_rank : (cc.rank + 1) * nbytes_per_rank] = sendbuf[
        :nbytes_per_rank
    ]
    if p <= 1:
        return
    left = (cc.rank - 1) % p
    right = (cc.rank + 1) % p
    # At step s each rank forwards the block that originated at (rank - s) % p.
    for step in range(p - 1):
        send_origin = (cc.rank - step) % p
        recv_origin = (cc.rank - step - 1) % p
        block = bytes(
            recvbuf[send_origin * nbytes_per_rank : (send_origin + 1) * nbytes_per_rank]
        )
        cc.send(right, tag + step, block)
        incoming = cc.recv(left, tag + step, nbytes_per_rank)
        recvbuf[
            recv_origin * nbytes_per_rank : (recv_origin + 1) * nbytes_per_rank
        ] = incoming


@register("allgather", "bruck")
def allgather_bruck(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    nbytes_per_rank: int,
    seq: int,
) -> None:
    """Bruck allgather: ``ceil(log2 p)`` rounds of doubling block exchanges.

    After the round at distance ``d``, position ``j`` of the rotated working
    buffer holds the block that originated at rank ``(rank + j) % p`` for all
    ``j < min(2d, p)``; a final rotation restores rank order.  Works for any
    ``p`` and needs far fewer rounds than the ring for small blocks.
    """
    p = cc.size
    b = nbytes_per_rank
    rank = cc.rank
    recvbuf[rank * b : (rank + 1) * b] = sendbuf[:b]
    if p <= 1:
        return
    tag = coll_tag(KIND_ALLGATHER, seq)
    tmp = bytearray(p * b)
    tmp[0:b] = sendbuf[:b]
    dist = 1
    round_no = 0
    while dist < p:
        nblocks = min(dist, p - dist)
        dst = (rank - dist) % p
        src = (rank + dist) % p
        cc.send(dst, tag + round_no, bytes(tmp[0 : nblocks * b]))
        incoming = cc.recv(src, tag + round_no, nblocks * b)
        tmp[dist * b : (dist + nblocks) * b] = incoming
        dist <<= 1
        round_no += 1
    for j in range(p):
        origin = (rank + j) % p
        recvbuf[origin * b : (origin + 1) * b] = tmp[j * b : (j + 1) * b]
