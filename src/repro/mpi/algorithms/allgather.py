"""Allgather algorithms: ring and Bruck.

Both are expressed as schedules over two named buffers: ``"send"`` (this
rank's block) and ``"recv"`` (``p`` blocks, the result).  The registered
blocking functions execute the same schedules ``MPI_Iallgather`` advances
incrementally.
"""

from __future__ import annotations

from repro.mpi.algorithms.base import KIND_ALLGATHER, CollectiveContext, coll_tag
from repro.mpi.algorithms.registry import register
from repro.mpi.algorithms.schedule import (
    CopyStep,
    RecvStep,
    Schedule,
    SendStep,
    execute,
    register_builder,
)

#: Buffer names every allgather schedule uses.
SEND = "send"
RECV = "recv"


@register_builder("allgather", "ring")
def build_allgather_ring(rank: int, size: int, nbytes_per_rank: int, seq: int) -> Schedule:
    """Ring allgather: ``p - 1`` rounds, each forwarding the next rank's block."""
    sched = Schedule()
    p = size
    b = nbytes_per_rank
    tag = coll_tag(KIND_ALLGATHER, seq)
    sched.round([CopyStep(SEND, 0, RECV, rank * b, b)])
    if p <= 1:
        return sched
    left = (rank - 1) % p
    right = (rank + 1) % p
    # At step s each rank forwards the block that originated at (rank - s) % p.
    for step in range(p - 1):
        send_origin = (rank - step) % p
        recv_origin = (rank - step - 1) % p
        sched.round([
            SendStep(right, tag + step, RECV, send_origin * b, b),
            RecvStep(left, tag + step, RECV, recv_origin * b, b),
        ])
    return sched


@register_builder("allgather", "bruck")
def build_allgather_bruck(rank: int, size: int, nbytes_per_rank: int, seq: int) -> Schedule:
    """Bruck allgather: ``ceil(log2 p)`` rounds of doubling block exchanges.

    After the round at distance ``d``, position ``j`` of the rotated working
    buffer holds the block that originated at rank ``(rank + j) % p`` for all
    ``j < min(2d, p)``; a final rotation restores rank order.  Works for any
    ``p`` and needs far fewer rounds than the ring for small blocks.
    """
    sched = Schedule()
    p = size
    b = nbytes_per_rank
    sched.round([CopyStep(SEND, 0, RECV, rank * b, b)])
    if p <= 1:
        return sched
    tag = coll_tag(KIND_ALLGATHER, seq)
    tmp = sched.temp("tmp", p * b)
    sched.add(CopyStep(SEND, 0, tmp, 0, b))
    dist = 1
    round_no = 0
    while dist < p:
        nblocks = min(dist, p - dist)
        dst = (rank - dist) % p
        src = (rank + dist) % p
        sched.round([
            SendStep(dst, tag + round_no, tmp, 0, nblocks * b),
            RecvStep(src, tag + round_no, tmp, dist * b, nblocks * b),
        ])
        dist <<= 1
        round_no += 1
    # Final rotation back into rank order.
    sched.round([
        CopyStep(tmp, j * b, RECV, ((rank + j) % p) * b, b) for j in range(p)
    ])
    return sched


@register("allgather", "ring")
def allgather_ring(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    nbytes_per_rank: int,
    seq: int,
) -> None:
    """Blocking ring allgather (executes the schedule in place)."""
    sched = build_allgather_ring(cc.rank, cc.size, nbytes_per_rank, seq)
    execute(cc, sched, {SEND: bytearray(sendbuf[:nbytes_per_rank]), RECV: recvbuf})


@register("allgather", "bruck")
def allgather_bruck(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    nbytes_per_rank: int,
    seq: int,
) -> None:
    """Blocking Bruck allgather (executes the schedule in place)."""
    sched = build_allgather_bruck(cc.rank, cc.size, nbytes_per_rank, seq)
    execute(cc, sched, {SEND: bytearray(sendbuf[:nbytes_per_rank]), RECV: recvbuf})
