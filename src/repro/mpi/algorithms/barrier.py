"""Barrier algorithms: dissemination and linear (central coordinator).

Both algorithms are expressed as *schedules* (ordered rounds of zero-byte
token exchanges, see :mod:`repro.mpi.algorithms.schedule`); the registered
blocking functions execute the same schedules the non-blocking
``MPI_Ibarrier`` path advances incrementally, so each algorithm has exactly
one implementation.
"""

from __future__ import annotations

from repro.mpi.algorithms.base import KIND_BARRIER, CollectiveContext, coll_tag
from repro.mpi.algorithms.registry import register
from repro.mpi.algorithms.schedule import (
    RecvStep,
    Schedule,
    SendStep,
    execute,
    register_builder,
)


@register_builder("barrier", "dissemination")
def build_barrier_dissemination(rank: int, size: int, seq: int) -> Schedule:
    """Dissemination barrier: ``ceil(log2 p)`` rounds of token exchange."""
    sched = Schedule()
    p = size
    if p <= 1:
        return sched
    tag = coll_tag(KIND_BARRIER, seq)
    step = 1
    round_no = 0
    while step < p:
        dst = (rank + step) % p
        src = (rank - step) % p
        sched.round([
            SendStep(dst, tag + round_no),
            RecvStep(src, tag + round_no),
        ])
        step <<= 1
        round_no += 1
    return sched


@register_builder("barrier", "linear")
def build_barrier_linear(rank: int, size: int, seq: int) -> Schedule:
    """Linear barrier: rank 0 collects a token from everyone, then releases.

    Two sequential fan-in/fan-out rounds -- latency grows linearly with the
    communicator size, but only ``2(p-1)`` messages total, which wins on very
    small communicators.
    """
    sched = Schedule()
    p = size
    if p <= 1:
        return sched
    tag = coll_tag(KIND_BARRIER, seq)
    if rank == 0:
        sched.round([RecvStep(src, tag) for src in range(1, p)])
        sched.round([SendStep(dst, tag + 1) for dst in range(1, p)])
    else:
        sched.round([SendStep(0, tag)])
        sched.round([RecvStep(0, tag + 1)])
    return sched


@register("barrier", "dissemination")
def barrier_dissemination(cc: CollectiveContext, seq: int) -> None:
    """Blocking dissemination barrier (executes the schedule to completion)."""
    execute(cc, build_barrier_dissemination(cc.rank, cc.size, seq))


@register("barrier", "linear")
def barrier_linear(cc: CollectiveContext, seq: int) -> None:
    """Blocking linear barrier (executes the schedule to completion)."""
    execute(cc, build_barrier_linear(cc.rank, cc.size, seq))
