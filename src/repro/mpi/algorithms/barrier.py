"""Barrier algorithms: dissemination and linear (central coordinator)."""

from __future__ import annotations

from repro.mpi.algorithms.base import KIND_BARRIER, CollectiveContext, coll_tag
from repro.mpi.algorithms.registry import register


@register("barrier", "dissemination")
def barrier_dissemination(cc: CollectiveContext, seq: int) -> None:
    """Dissemination barrier: ``ceil(log2 p)`` rounds of token exchange."""
    p = cc.size
    if p <= 1:
        return
    tag = coll_tag(KIND_BARRIER, seq)
    step = 1
    round_no = 0
    while step < p:
        dst = (cc.rank + step) % p
        src = (cc.rank - step) % p
        cc.send(dst, tag + round_no, b"")
        cc.recv(src, tag + round_no, 0)
        step <<= 1
        round_no += 1


@register("barrier", "linear")
def barrier_linear(cc: CollectiveContext, seq: int) -> None:
    """Linear barrier: rank 0 collects a token from everyone, then releases.

    Two sequential fan-in/fan-out phases -- latency grows linearly with the
    communicator size, but only ``2(p-1)`` messages total, which wins on very
    small communicators.
    """
    p = cc.size
    if p <= 1:
        return
    tag = coll_tag(KIND_BARRIER, seq)
    if cc.rank == 0:
        for src in range(1, p):
            cc.recv(src, tag, 0)
        for dst in range(1, p):
            cc.send(dst, tag + 1, b"")
    else:
        cc.send(0, tag, b"")
        cc.recv(0, tag + 1, 0)
