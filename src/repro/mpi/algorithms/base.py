"""Shared primitives of the collective-algorithm subsystem.

Every algorithm is written against :class:`CollectiveContext` -- the small
bundle of callables the per-rank runtime exposes -- so payloads stay
bit-identical regardless of algorithm and all virtual-time costs fall out of
the transport model underneath ``send``/``recv``.

Tag discipline: collectives own the tag space above :data:`COLL_TAG_BASE`.
A tag is derived from the collective *kind* and the per-communicator
operation sequence number; algorithms add small round offsets on top.  MPI
requires every rank to call collectives in the same order, so the sequence
numbers (and hence the tags) agree across ranks without negotiation.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.mpi.datatypes import Datatype
from repro.mpi.ops import Op

# Tag space reserved for collectives (user tags are non-negative and small).
COLL_TAG_BASE = 1 << 24
COLL_TAG_MOD = 1 << 20

# Kind identifiers (kept distinct so different collectives never cross-match).
KIND_BARRIER = 0
KIND_BCAST = 1
KIND_REDUCE = 2
KIND_GATHER = 3
KIND_SCATTER = 4
KIND_ALLGATHER = 5
KIND_ALLTOALL = 6
KIND_ALLREDUCE = 7


def coll_tag(kind: int, seq: int) -> int:
    """Tag for the ``seq``-th collective of a given kind on a communicator."""
    return COLL_TAG_BASE + kind * COLL_TAG_MOD + (seq % COLL_TAG_MOD)


class CollectiveContext:
    """Bundle of callables the collectives need from the per-rank runtime.

    ``send(dst_local, tag, data)`` and ``recv(src_local, tag, nbytes) -> bytes``
    operate on *communicator-local* ranks; the runtime translates to world
    ranks and forwards to the matching engine.  ``send`` posts without
    blocking (the matching engine buffers), which lets algorithms post a fan
    of sends before draining receives.  ``compute(seconds)`` charges local
    computation time (used for the combine step of reductions).

    The remaining callables are optional and only supplied by the per-rank
    runtime (the incremental schedule executor behind the non-blocking
    collectives needs them; blocking execution works without them):

    * ``probe(src_local, tag) -> bool`` -- whether a matching message is
      already buffered, without consuming it;
    * ``recv_nb(src_local, tag, nbytes) -> Optional[(bytes, arrival)]`` --
      consume a buffered match charging only CPU overhead, reporting the
      virtual time the payload actually finishes arriving (``None`` when
      nothing is buffered).  Separating consumption from the arrival time is
      what lets transfers overlap caller compute;
    * ``now() -> float`` / ``advance_to(t)`` -- the rank's virtual clock,
      used to enforce data dependencies (a step that reads received data
      cannot execute before that data has arrived).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        send: Callable[[int, int, bytes], None],
        recv: Callable[[int, int, int], bytes],
        compute: Callable[[float], None],
        reduce_compute_per_byte: float = 0.04e-9,
        probe: Optional[Callable[[int, int], bool]] = None,
        recv_nb: Optional[Callable[[int, int, int], Optional[tuple]]] = None,
        now: Optional[Callable[[], float]] = None,
        advance_to: Optional[Callable[[float], None]] = None,
        world_rank: Optional[int] = None,
    ):
        self.rank = rank
        self.size = size
        self.send = send
        self.recv = recv
        self.compute = compute
        self.reduce_compute_per_byte = reduce_compute_per_byte
        self.probe = probe
        self.recv_nb = recv_nb
        self.now = now
        self.advance_to = advance_to
        # COMM_WORLD rank for trace attribution (per-rank timeline lanes);
        # falls back to the communicator-local rank when not supplied.
        self.world_rank = world_rank


def combine(cc: CollectiveContext, op: Op, acc: bytearray, contribution: bytes,
            datatype: Datatype, count: int) -> None:
    """Reduce ``contribution`` into ``acc`` and charge the combine time."""
    op.reduce_bytes(acc, contribution, datatype, count)
    cc.compute(count * datatype.size * cc.reduce_compute_per_byte)


def combine_segment(cc: CollectiveContext, op: Op, acc: bytearray, contribution: bytes,
                    datatype: Datatype, elem_offset: int, elem_count: int) -> None:
    """Reduce ``contribution`` into the element range of ``acc`` starting at
    ``elem_offset``; charges combine time for the segment only."""
    if elem_count <= 0:
        return
    esize = datatype.size
    lo = elem_offset * esize
    hi = lo + elem_count * esize
    seg = bytearray(acc[lo:hi])
    op.reduce_bytes(seg, contribution, datatype, elem_count)
    acc[lo:hi] = seg
    cc.compute(elem_count * esize * cc.reduce_compute_per_byte)


def chunk_counts(count: int, parts: int) -> List[int]:
    """Split ``count`` elements into ``parts`` near-equal chunks (MPICH style:
    the remainder is spread over the first chunks)."""
    base, extra = divmod(count, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def chunk_offsets(counts: List[int]) -> List[int]:
    """Exclusive prefix sums of ``counts`` (element offsets of each chunk)."""
    offsets = [0] * len(counts)
    for i in range(1, len(counts)):
        offsets[i] = offsets[i - 1] + counts[i - 1]
    return offsets


def largest_power_of_two_leq(p: int) -> int:
    """Largest power of two <= ``p`` (``p`` >= 1)."""
    pof2 = 1
    while pof2 * 2 <= p:
        pof2 *= 2
    return pof2


def fold_absolute_rank(vrank: int, rem: int) -> int:
    """Inverse of the non-power-of-two fold mapping: virtual id -> absolute
    communicator rank (shared by the halving/doubling reduce and allreduce
    algorithms, whose pre-phases fold the ``rem`` extra ranks into odd
    neighbours)."""
    return 2 * vrank + 1 if vrank < rem else vrank + rem
