"""Schedule representation of collective algorithms (the NBC substrate).

A :class:`Schedule` is one rank's part of a collective, expressed as ordered
*rounds* of primitive steps -- the representation libNBC introduced and Open
MPI's ``coll/libnbc`` component still uses.  Building a schedule is a pure
function of the call shape ``(rank, size, payload, root, seq)``; *executing*
it is a separate concern handled by :class:`ScheduleExecutor`, which can run

* to completion with blocking receives (the classic blocking collectives), or
* incrementally, stopping at the first receive with no buffered match (the
  progress engine behind ``MPI_Iallreduce`` and friends drives this from
  ``MPI_Test``/``MPI_Wait``).

Because both entry points execute the *same* schedule, each ported algorithm
has exactly one implementation.

Steps operate on named byte buffers supplied by the caller (the user-visible
payload plus schedule-declared temporaries), so a schedule itself carries no
payload data and can be built before any communication happens:

* :class:`SendStep` / :class:`RecvStep` -- communicator-local peer exchanges;
  payload bytes are read/written at *execution* time, which is what lets a
  later round depend on data received in an earlier one.
* :class:`CopyStep` -- local byte move between buffers.
* :class:`ReduceStep` -- combine a contribution into an accumulator segment
  via the executing call's reduction op (charged as compute time).

Builders register per ``(collective, algorithm)`` with
:func:`register_builder`; the blocking algorithm functions in the sibling
modules and the runtime's non-blocking entry points both look them up here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.fault import checkpoint as _checkpoint
from repro.fault import inject as _inject
from repro.mpi.algorithms.base import CollectiveContext, combine_segment
from repro.mpi.datatypes import Datatype
from repro.mpi.ops import Op
from repro.obs import trace as _trace


class _StepBase:
    """Shared step behaviour: a stable ``round_index`` and ``describe()``.

    ``round_index`` is stamped by :class:`Schedule` when the step joins a
    round (``None`` until then), so round attribution is a property of the
    step itself rather than of its position in the flattened list -- the
    analyzer's findings and the obs trace labels therefore name the same
    round.  It is excluded from equality/hash: two steps describing the same
    exchange compare equal regardless of which round holds them.
    """

    round_index: Optional[int]

    def _stamp_round(self, round_no: int) -> None:
        # The step dataclasses are frozen (schedules are shareable, reusable
        # values); the one sanctioned mutation is this build-time stamp.
        object.__setattr__(self, "round_index", round_no)

    def _round_suffix(self) -> str:
        return f" @round {self.round_index}" if self.round_index is not None else ""


@dataclass(frozen=True)
class SendStep(_StepBase):
    """Send ``nbytes`` of buffer ``buf`` at byte offset ``lo`` to ``peer``.

    ``buf`` may be ``None`` for zero-byte token messages (barriers).
    """

    peer: int
    tag: int
    buf: Optional[str] = None
    lo: int = 0
    nbytes: int = 0
    round_index: Optional[int] = field(default=None, compare=False)

    def describe(self) -> str:
        payload = f"{self.buf}[{self.lo}:{self.lo + self.nbytes})" if self.buf else "token"
        return f"send({payload} -> rank {self.peer}, tag={self.tag}){self._round_suffix()}"


@dataclass(frozen=True)
class RecvStep(_StepBase):
    """Receive ``nbytes`` from ``peer`` into buffer ``buf`` at offset ``lo``.

    ``buf`` may be ``None`` for zero-byte token messages; the receive still
    consumes a message (and its timing) from the matching engine.
    """

    peer: int
    tag: int
    buf: Optional[str] = None
    lo: int = 0
    nbytes: int = 0
    round_index: Optional[int] = field(default=None, compare=False)

    def describe(self) -> str:
        payload = f"{self.buf}[{self.lo}:{self.lo + self.nbytes})" if self.buf else "token"
        return f"recv({payload} <- rank {self.peer}, tag={self.tag}){self._round_suffix()}"


@dataclass(frozen=True)
class CopyStep(_StepBase):
    """Copy ``nbytes`` from ``src``@``slo`` to ``dst``@``dlo`` (local, free)."""

    src: str
    slo: int
    dst: str
    dlo: int
    nbytes: int
    round_index: Optional[int] = field(default=None, compare=False)

    def describe(self) -> str:
        return (
            f"copy({self.src}[{self.slo}:{self.slo + self.nbytes}) -> "
            f"{self.dst}[{self.dlo}:{self.dlo + self.nbytes})){self._round_suffix()}"
        )


@dataclass(frozen=True)
class ReduceStep(_StepBase):
    """Combine ``count`` elements from ``src``@``slo`` (bytes) into the
    accumulator ``dst`` starting at element ``elem_offset``.

    The op and datatype are execution-time parameters (they are per call, not
    per schedule), so reduction schedules are reusable across ops.
    """

    src: str
    slo: int
    dst: str
    elem_offset: int
    count: int
    round_index: Optional[int] = field(default=None, compare=False)

    def describe(self) -> str:
        return (
            f"reduce({self.src}[{self.slo}:...) -> {self.dst} "
            f"elems [{self.elem_offset}:{self.elem_offset + self.count})){self._round_suffix()}"
        )


Step = Union[SendStep, RecvStep, CopyStep, ReduceStep]


class Schedule:
    """Ordered rounds of steps for one rank's part of one collective call.

    Rounds group the steps the way the algorithm papers present them; the
    executor runs the flattened step list strictly in order, which reproduces
    the exact send/recv order of the original blocking implementations (and
    therefore inherits their deadlock-freedom).
    """

    def __init__(self) -> None:
        self.rounds: List[List[Step]] = []
        #: Temporary buffers the executor must allocate: name -> size in bytes.
        self.temps: Dict[str, int] = {}

    def round(self, steps: Optional[List[Step]] = None) -> List[Step]:
        """Open a new round (optionally pre-populated) and return it."""
        rnd: List[Step] = list(steps or [])
        round_no = len(self.rounds)
        for step in rnd:
            step._stamp_round(round_no)
        self.rounds.append(rnd)
        return rnd

    def add(self, step: Step) -> None:
        """Append ``step`` to the current (last) round, opening one if needed."""
        if not self.rounds:
            self.rounds.append([])
        step._stamp_round(len(self.rounds) - 1)
        self.rounds[-1].append(step)

    def temp(self, name: str, nbytes: int) -> str:
        """Declare a temporary buffer and return its name."""
        self.temps[name] = max(self.temps.get(name, 0), int(nbytes))
        return name

    def flat(self) -> List[Step]:
        """The steps of every round, concatenated in execution order."""
        return [step for rnd in self.rounds for step in rnd]

    @property
    def n_steps(self) -> int:
        return sum(len(rnd) for rnd in self.rounds)


class ScheduleExecutor:
    """Drives one rank's :class:`Schedule` against a :class:`CollectiveContext`.

    The executor is the per-request state machine of the progress engine: it
    remembers how far execution got (``_pc``), owns the working buffers, and
    exposes both a non-blocking :meth:`try_progress` (stops at the first
    receive with nothing buffered) and a blocking :meth:`run_to_completion`.
    ``on_complete`` fires exactly once, with the buffer dict, when the last
    step has executed -- the runtime uses it to copy results into the caller's
    (possibly guest-memory) buffers.

    Incremental execution separates *consumption* from *arrival*: receives
    taken through the context's ``recv_nb`` charge only CPU overhead, and the
    payload's arrival time accumulates into :attr:`data_time` instead of
    stalling the rank.  Steps that read received data (sends, reductions)
    still advance the clock to :attr:`data_time` first -- an interior tree
    node cannot forward bytes it has not received -- but a leaf receive costs
    the rank nothing until its request is *completed*, which is what lets the
    transfer hide behind caller compute.  The operation counts as complete
    only once the rank's clock has reached :attr:`data_time`.
    """

    def __init__(
        self,
        cc: CollectiveContext,
        schedule: Schedule,
        buffers: Optional[Dict[str, bytearray]] = None,
        datatype: Optional[Datatype] = None,
        op: Optional[Op] = None,
        on_complete: Optional[Callable[[Dict[str, bytearray]], None]] = None,
    ) -> None:
        self._cc = cc
        self._steps = schedule.flat()
        #: Round index of each step: rounds are control-dependency barriers
        #: (a round may only start once every payload consumed in earlier
        #: rounds has arrived -- zero-byte barrier tokens included).
        self._round_of = [
            round_no for round_no, rnd in enumerate(schedule.rounds) for _step in rnd
        ]
        self._pc = 0
        self.buffers: Dict[str, bytearray] = dict(buffers or {})
        for name, size in schedule.temps.items():
            self.buffers.setdefault(name, bytearray(size))
        self._datatype = datatype
        self._op = op
        self._on_complete = on_complete
        self._finished = False
        #: Virtual time at which every received payload has actually arrived;
        #: the operation's completion time is at least this.
        self.data_time = 0.0
        #: Per-buffer arrival times: a step only stalls on the buffers it
        #: actually reads, so e.g. an alltoall send of caller-supplied data
        #: is never held back by an unrelated receive still in flight.
        self._buffer_ready: Dict[str, float] = {}

    # ----------------------------------------------------------------- status

    @property
    def done(self) -> bool:
        return self._pc >= len(self._steps)

    def pending_recv(self) -> Optional[RecvStep]:
        """The receive the executor is currently stalled on, if any."""
        if not self.done:
            step = self._steps[self._pc]
            if isinstance(step, RecvStep):
                return step
        return None

    def checkpoint_state(self) -> dict:
        """Executor position for ``repro.fault`` checkpoints.

        Captured at round boundaries, where the position is fully described
        by the program counter (buffers in earlier rounds have been consumed,
        later rounds have not started).  JSON-safe by construction: the same
        dict is compared ``==`` against its serialized copy during
        digest-validated replay.
        """
        return {
            "pc": self._pc,
            "n_steps": len(self._steps),
            "round": self._round_of[self._pc] if not self.done else -1,
            "data_time": self.data_time,
            "finished": self._finished,
        }

    # -------------------------------------------------------------- execution

    def _notify_round(self) -> None:
        """Fault/checkpoint hook at round boundaries.

        Callers invoke this right after every ``_pc`` increment, guarded on
        the module-level flags (one attribute read each on the unarmed hot
        path, mirroring ``_trace.ENABLED``).  A *crossing* is the transition
        out of a round: all steps of earlier rounds executed, none of the
        next -- schedule completion counts as crossing out of the last round,
        so single-round schedules still cross once.  The capture hook runs
        before the injection hook so a checkpoint and a kill armed at the
        same round capture-then-kill.
        """
        pc = self._pc
        if pc == 0:
            return
        if pc < len(self._steps) and self._round_of[pc] == self._round_of[pc - 1]:
            return
        rank = self._trace_tid()
        now = self._trace_now()
        if _checkpoint.CAPTURE is not None:
            _checkpoint.CAPTURE.on_schedule_round(rank, now, self)
        if _inject.ARMED:
            _inject.ACTIVE.on_schedule_round(rank, now)

    def try_progress(self) -> bool:
        """Execute steps in order without ever blocking.

        Stops (returning ``False``) at the first :class:`RecvStep` whose
        message is not already buffered; returns ``True`` once every step has
        executed.  Receives go through the context's ``recv_nb`` when
        available, so the rank is charged CPU overhead only and the payload's
        arrival accumulates into :attr:`data_time` instead of stalling the
        clock (falls back to probe-then-blocking-recv without it).
        """
        while not self.done:
            step = self._steps[self._pc]
            if isinstance(step, RecvStep):
                if self._cc.recv_nb is not None:
                    result = self._cc.recv_nb(step.peer, step.tag, step.nbytes)
                    if result is None:
                        return False
                    data, arrival = result
                    self.data_time = max(self.data_time, arrival)
                    if step.buf is not None:
                        self._buffer_ready[step.buf] = max(
                            self._buffer_ready.get(step.buf, 0.0), arrival
                        )
                        if step.nbytes > 0:
                            self.buffers[step.buf][step.lo : step.lo + step.nbytes] = data
                    self._pc += 1
                    if _inject.ARMED or _checkpoint.CAPTURE is not None:
                        self._notify_round()
                    if _trace.ENABLED:
                        self._trace_step("sched.nbc_step", step)
                    continue
                if self._cc.probe is None or not self._cc.probe(step.peer, step.tag):
                    return False
            elif self._stalled_on_data(self._pc):
                # The step reads payload (or opens a round) that has not
                # arrived yet in this rank's virtual time: stall instead of
                # advancing the clock, so the gap stays available for caller
                # compute.
                return False
            self._execute(step)
            self._pc += 1
            if _inject.ARMED or _checkpoint.CAPTURE is not None:
                self._notify_round()
            if _trace.ENABLED:
                self._trace_step("sched.nbc_step", step)
        self._finish()
        if _trace.ENABLED:
            self._trace_step("sched.nbc_complete", None)
        return True

    def _step_data_time(self, step: Step) -> float:
        """Arrival time of the received data ``step`` reads (0 when it only
        touches caller-supplied payload)."""
        if isinstance(step, SendStep):
            return self._buffer_ready.get(step.buf, 0.0) if step.buf else 0.0
        if isinstance(step, ReduceStep):
            return max(
                self._buffer_ready.get(step.src, 0.0),
                self._buffer_ready.get(step.dst, 0.0),
            )
        return 0.0

    def _step_ready_time(self, pc: int) -> float:
        """Earliest virtual time step ``pc`` may execute.

        Combines the round barrier (a new round needs every earlier round's
        payload to have arrived -- a *control* dependency, so it also covers
        zero-byte barrier tokens) with the step's own data dependency.
        """
        step = self._steps[pc]
        needed = self._step_data_time(step)
        if pc > 0 and self._round_of[pc] != self._round_of[pc - 1]:
            needed = max(needed, self.data_time)
        return needed

    def _stalled_on_data(self, pc: int) -> bool:
        needed = self._step_ready_time(pc)
        if needed <= 0:
            return False
        return self._cc.now is not None and self._cc.now() < needed

    def next_ready_time(self) -> Optional[float]:
        """Earliest virtual time at which time alone unblocks this executor.

        ``data_time`` when the schedule is finished (payload still in flight),
        the stalled step's ready time when a data- or round-dependent step is
        waiting; ``None`` while progress depends on a peer's message instead.
        """
        if self.done:
            return self.data_time
        if self._stalled_on_data(self._pc):
            return self._step_ready_time(self._pc)
        return None

    # ---------------------------------------------------------------- tracing

    def _trace_tid(self) -> int:
        """Per-rank trace stream: the COMM_WORLD rank when known."""
        cc = self._cc
        return cc.world_rank if cc.world_rank is not None else cc.rank

    def _trace_now(self) -> float:
        return self._cc.now() if self._cc.now is not None else 0.0

    def _trace_step(self, name: str, step: Optional[Step]) -> None:
        """Instant event for one executed step (callers guard on the flag)."""
        args = None
        if step is not None:
            # Prefer the step's own (build-time) round stamp so trace labels
            # agree with repro.analysis findings; positional attribution is
            # only the fallback for hand-built steps never added to a round.
            round_no = step.round_index
            if round_no is None:
                round_no = self._round_of[self._pc - 1] if self._pc else 0
            args = {"kind": type(step).__name__, "round": round_no}
            peer = getattr(step, "peer", None)
            if peer is not None:
                args["peer"] = peer
                args["nbytes"] = step.nbytes
        _trace.RECORDER.instant(name, self._trace_tid(), self._trace_now(), args)

    def run_to_completion(self) -> None:
        """Execute every remaining step, blocking inside unmatched receives."""
        if _trace.ENABLED and not self.done:
            self._run_to_completion_traced()
            return
        while not self.done:
            self._execute(self._steps[self._pc])
            self._pc += 1
            if _inject.ARMED or _checkpoint.CAPTURE is not None:
                self._notify_round()
        self._finish()

    def _run_to_completion_traced(self) -> None:
        """Blocking execution with one span per round and per step.

        Only this path emits round/step *spans*: blocking execution runs the
        schedule start-to-finish inside one MPI call, so the spans nest under
        the call's span on the rank's stream.  Incremental execution
        (:meth:`try_progress`) interleaves steps of several schedules across
        many MPI calls and emits instant events instead -- begin/end pairs
        there would partially overlap other spans and break nesting.
        """
        recorder = _trace.RECORDER
        tid = self._trace_tid()
        current_round = -1
        while not self.done:
            round_no = self._round_of[self._pc]
            if round_no != current_round:
                if current_round >= 0:
                    recorder.end(tid, self._trace_now())
                recorder.begin(f"sched.round[{round_no}]", tid, self._trace_now())
                current_round = round_no
            step = self._steps[self._pc]
            recorder.begin(f"sched.{type(step).__name__}", tid, self._trace_now())
            self._execute(step)
            self._pc += 1
            recorder.end(tid, self._trace_now())
            if _inject.ARMED or _checkpoint.CAPTURE is not None:
                self._notify_round()
        if current_round >= 0:
            recorder.end(tid, self._trace_now())
        self._finish()

    def _finish(self) -> None:
        if not self._finished:
            self._finished = True
            if self._on_complete is not None:
                self._on_complete(self.buffers)

    def _execute(self, step: Step) -> None:
        # Data/round dependency: a send or reduction may read payload consumed
        # by an earlier non-blocking receive, and a new round may only start
        # once earlier rounds' payload has arrived -- neither can run before
        # that arrival.  (No-op for blocking execution: ready times stay 0
        # because blocking receives advance the clock themselves.)
        needed = self._step_ready_time(self._pc)
        if needed > 0 and self._cc.advance_to is not None:
            self._cc.advance_to(needed)
        if isinstance(step, SendStep):
            if step.buf is None or step.nbytes == 0:
                data = b""
            else:
                data = bytes(self.buffers[step.buf][step.lo : step.lo + step.nbytes])
            self._cc.send(step.peer, step.tag, data)
        elif isinstance(step, RecvStep):
            data = self._cc.recv(step.peer, step.tag, step.nbytes)
            if step.buf is not None and step.nbytes > 0:
                self.buffers[step.buf][step.lo : step.lo + step.nbytes] = data
        elif isinstance(step, CopyStep):
            if step.nbytes > 0:
                self.buffers[step.dst][step.dlo : step.dlo + step.nbytes] = self.buffers[
                    step.src
                ][step.slo : step.slo + step.nbytes]
                # The copy itself is free, but the destination now carries the
                # source's (possibly still in-flight) data.
                src_ready = self._buffer_ready.get(step.src, 0.0)
                if src_ready > 0:
                    self._buffer_ready[step.dst] = max(
                        self._buffer_ready.get(step.dst, 0.0), src_ready
                    )
        elif isinstance(step, ReduceStep):
            if step.count > 0:
                if self._op is None or self._datatype is None:
                    raise ValueError("schedule has reduce steps but no op/datatype bound")
                esize = self._datatype.size
                contribution = bytes(
                    self.buffers[step.src][step.slo : step.slo + step.count * esize]
                )
                combine_segment(
                    self._cc, self._op, self.buffers[step.dst], contribution,
                    self._datatype, step.elem_offset, step.count,
                )
        else:  # pragma: no cover - registry integrity guard
            raise TypeError(f"unknown schedule step {step!r}")


def execute(
    cc: CollectiveContext,
    schedule: Schedule,
    buffers: Optional[Dict[str, bytearray]] = None,
    datatype: Optional[Datatype] = None,
    op: Optional[Op] = None,
) -> Dict[str, bytearray]:
    """Run ``schedule`` to completion (the blocking entry points use this)."""
    executor = ScheduleExecutor(cc, schedule, buffers, datatype, op)
    executor.run_to_completion()
    return executor.buffers


# ------------------------------------------------------------ builder registry

#: Schedule builders keyed by ``(collective, algorithm)``.  Signatures are
#: fixed per collective (mirroring the registered blocking signatures):
#:
#:   barrier:   build(rank, size, seq) -> Schedule
#:   bcast:     build(rank, size, nbytes, root, seq) -> Schedule
#:   reduce:    build(rank, size, count, esize, root, seq) -> Schedule
#:   allreduce: build(rank, size, count, esize, seq) -> Schedule
#:   allgather: build(rank, size, nbytes_per_rank, seq) -> Schedule
#:   alltoall:  build(rank, size, nbytes_per_rank, seq) -> Schedule
_BUILDERS: Dict[Tuple[str, str], Callable[..., Schedule]] = {}

#: The schedule-capable algorithm each collective falls back to when the
#: decision layer picks one that has no schedule builder (possible only via
#: forced overrides naming a non-ported algorithm).
SCHEDULE_FALLBACKS: Dict[str, str] = {
    "barrier": "dissemination",
    "bcast": "binomial",
    "reduce": "binomial",
    "allreduce": "recursive_doubling",
    "allgather": "ring",
    "alltoall": "pairwise",
}


def register_builder(collective: str, name: str) -> Callable[[Callable], Callable]:
    """Decorator registering a schedule builder for ``(collective, name)``."""

    def decorator(fn: Callable[..., Schedule]) -> Callable[..., Schedule]:
        key = (collective, name)
        if key in _BUILDERS:
            raise ValueError(f"schedule builder {name!r} already registered for {collective!r}")
        _BUILDERS[key] = fn
        return fn

    return decorator


def get_builder(collective: str, name: str) -> Callable[..., Schedule]:
    """Builder for ``(collective, name)``; KeyError if not schedule-capable."""
    try:
        return _BUILDERS[(collective, name)]
    except KeyError:
        raise KeyError(
            f"no schedule builder for {collective!r} algorithm {name!r}; "
            f"schedule-capable: {builders_for(collective)}"
        ) from None


def has_builder(collective: str, name: str) -> bool:
    """Whether ``(collective, name)`` can be expressed as a schedule."""
    return (collective, name) in _BUILDERS


def builders_for(collective: str) -> List[str]:
    """Names of every schedule-capable algorithm of ``collective``."""
    return sorted(n for (c, n) in _BUILDERS if c == collective)


def schedulable(collective: str, algorithm: str) -> str:
    """``algorithm`` if it has a builder, else the collective's fallback.

    The non-blocking entry points route through the decision table like the
    blocking ones; if an override forces an algorithm that has not been
    ported to schedules, they degrade to the nearest ported one rather than
    failing the call.
    """
    if has_builder(collective, algorithm):
        return algorithm
    return SCHEDULE_FALLBACKS[collective]
