"""Size-based algorithm selection (the Open MPI ``tuned`` decision layer).

Open MPI's ``coll/tuned`` module picks a collective algorithm per call from a
fixed decision table keyed on message size and communicator size; users can
force an algorithm with MCA parameters.  This module reproduces that shape:

* :class:`DecisionTable` -- ordered threshold rules per collective,
* :class:`CollectiveSelector` -- the per-job selector combining the table
  with forced overrides (from :class:`repro.core.config.EmbedderConfig` or
  the ``REPRO_COLL_ALGO`` environment knob).

``REPRO_COLL_ALGO`` uses the syntax ``collective:algorithm``, comma-separated
for several collectives, e.g.::

    REPRO_COLL_ALGO=allreduce:ring,bcast:scatter_allgather

The selection is a pure function of ``(collective, message bytes,
communicator size)``, which every rank computes identically -- exactly the
property that lets real MPI libraries pick algorithms without negotiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.core import envvars
from repro.mpi.algorithms import registry

ENV_KNOB = "REPRO_COLL_ALGO"


@dataclass(frozen=True)
class Rule:
    """One decision-table rule: use ``algorithm`` while the call is at most
    ``max_bytes`` large and the communicator at most ``max_ranks`` wide.

    ``None`` thresholds match anything; rules are evaluated in order and the
    last rule of a collective acts as the fallback.
    """

    algorithm: str
    max_bytes: Optional[int] = None
    max_ranks: Optional[int] = None

    def matches(self, nbytes: int, nranks: int) -> bool:
        """Whether this rule applies to a call of ``nbytes`` on ``nranks``."""
        if self.max_bytes is not None and nbytes > self.max_bytes:
            return False
        if self.max_ranks is not None and nranks > self.max_ranks:
            return False
        return True


#: Default fixed decision table, shaped after Open MPI's ``tuned`` defaults:
#: latency-optimal algorithms (binomial trees, recursive doubling, Bruck) for
#: small messages / small communicators, bandwidth-optimal ones (rings,
#: scatter-allgather, pairwise exchange) once the payload dominates.
DEFAULT_RULES: Dict[str, Tuple[Rule, ...]] = {
    "barrier": (
        Rule("linear", max_ranks=4),
        Rule("dissemination"),
    ),
    "bcast": (
        Rule("binomial", max_ranks=4),
        Rule("binomial", max_bytes=65536),
        Rule("scatter_allgather"),
    ),
    "reduce": (
        Rule("binomial", max_ranks=4),
        Rule("binomial", max_bytes=16384),
        Rule("rabenseifner"),
    ),
    "allreduce": (
        Rule("recursive_doubling", max_bytes=16384),
        Rule("ring"),
    ),
    "gather": (
        Rule("binomial", max_bytes=8192),
        Rule("linear"),
    ),
    "scatter": (
        Rule("binomial", max_bytes=8192),
        Rule("linear"),
    ),
    "allgather": (
        Rule("bruck", max_bytes=8192),
        Rule("ring"),
    ),
    "alltoall": (
        Rule("linear", max_bytes=4096),
        Rule("pairwise"),
    ),
}


class DecisionTable:
    """Ordered threshold rules mapping (collective, size, ranks) -> algorithm."""

    def __init__(self, rules: Optional[Mapping[str, Sequence[Rule]]] = None):
        merged: Dict[str, Tuple[Rule, ...]] = dict(DEFAULT_RULES)
        if rules:
            for collective, collective_rules in rules.items():
                _validate_collective(collective)
                merged[collective] = tuple(collective_rules)
        self.rules = merged

    def decide(self, collective: str, nbytes: int, nranks: int) -> str:
        """Algorithm name for one call (falls back to the last rule)."""
        collective_rules = self.rules.get(collective)
        if not collective_rules:
            raise registry.UnknownAlgorithmError(
                f"no decision rules for collective {collective!r}"
            )
        for rule in collective_rules:
            if rule.matches(nbytes, nranks):
                return rule.algorithm
        return collective_rules[-1].algorithm


def _validate_collective(collective: str) -> None:
    if collective not in registry.COLLECTIVES:
        raise ValueError(
            f"unknown collective {collective!r}; known: {registry.COLLECTIVES}"
        )


def _validate_pair(collective: str, algorithm: str) -> None:
    _validate_collective(collective)
    if not registry.is_registered(collective, algorithm):
        raise registry.UnknownAlgorithmError(
            f"no algorithm {algorithm!r} for collective {collective!r}; "
            f"known: {registry.algorithms_for(collective)}"
        )


def parse_env_knob(value: str) -> Dict[str, str]:
    """Parse a ``REPRO_COLL_ALGO`` value into {collective: algorithm}.

    Raises ``ValueError``/``UnknownAlgorithmError`` on malformed entries so a
    typo fails the job loudly instead of silently running the default.
    """
    forced: Dict[str, str] = {}
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            continue
        if ":" not in entry:
            raise ValueError(
                f"malformed {ENV_KNOB} entry {entry!r}; expected 'collective:algorithm'"
            )
        collective, _, algorithm = entry.partition(":")
        collective = collective.strip()
        algorithm = algorithm.strip()
        _validate_pair(collective, algorithm)
        forced[collective] = algorithm
    return forced


class CollectiveSelector:
    """Per-job algorithm selector: decision table + forced overrides.

    One selector is shared by every rank of a simulated job (it lives on the
    :class:`repro.mpi.runtime.MPIWorld`); selection itself is a pure function
    of the call shape, so sharing is safe as long as overrides are changed at
    points where all ranks are synchronised (e.g. between benchmark sweeps).
    """

    def __init__(
        self,
        table: Optional[DecisionTable] = None,
        forced: Optional[Mapping[str, str]] = None,
    ):
        self.table = table or DecisionTable()
        self._forced: Dict[str, str] = {}
        if forced:
            self.force_many(forced)

    @classmethod
    def from_env(
        cls,
        environ: Optional[Mapping[str, str]] = None,
        overrides: Optional[Mapping[str, str]] = None,
        table: Optional[DecisionTable] = None,
    ) -> "CollectiveSelector":
        """Build a selector from ``REPRO_COLL_ALGO`` plus explicit overrides.

        Explicit ``overrides`` (e.g. from :class:`EmbedderConfig`) win over
        the environment, mirroring how MCA command-line parameters beat
        environment variables in Open MPI.
        """
        forced = parse_env_knob(envvars.read_env(ENV_KNOB, "", environ) or "")
        if overrides:
            for collective, algorithm in overrides.items():
                _validate_pair(collective, algorithm)
                forced[collective] = algorithm
        return cls(table=table, forced=forced)

    # ----------------------------------------------------------------- forcing

    def force(self, collective: str, algorithm: Optional[str]) -> None:
        """Force ``collective`` to ``algorithm`` (``None`` clears the force)."""
        _validate_collective(collective)
        if algorithm is None:
            self._forced.pop(collective, None)
            return
        _validate_pair(collective, algorithm)
        self._forced[collective] = algorithm

    def force_many(self, forced: Mapping[str, str]) -> None:
        """Force several collectives at once."""
        for collective, algorithm in forced.items():
            self.force(collective, algorithm)

    def forced(self) -> Dict[str, str]:
        """Snapshot of the active forces."""
        return dict(self._forced)

    # --------------------------------------------------------------- selection

    def decide(self, collective: str, nbytes: int, nranks: int) -> str:
        """Algorithm for one call: the forced override, else the table."""
        forced = self._forced.get(collective)
        if forced is not None:
            return forced
        return self.table.decide(collective, nbytes, nranks)
