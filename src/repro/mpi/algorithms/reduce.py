"""Reduce algorithms: binomial tree and Rabenseifner (reduce-scatter + gather).

Signature shared by every reduce algorithm::

    fn(cc, sendbuf, recvbuf, count, datatype, op, root, seq) -> None

``recvbuf`` is a ``bytearray`` on the root and ``None`` elsewhere.  The
binomial tree is expressed as a schedule over the accumulator buffer
``"acc"`` (see :mod:`repro.mpi.algorithms.schedule`), shared with the
non-blocking path; Rabenseifner stays a direct implementation.
"""

from __future__ import annotations

from typing import Optional

from repro.mpi.algorithms.base import (
    KIND_REDUCE,
    CollectiveContext,
    chunk_counts,
    chunk_offsets,
    coll_tag,
    combine,
    combine_segment,
    fold_absolute_rank,
    largest_power_of_two_leq,
)
from repro.mpi.algorithms.registry import register
from repro.mpi.algorithms.schedule import (
    CopyStep,
    RecvStep,
    ReduceStep,
    Schedule,
    SendStep,
    execute,
    register_builder,
)
from repro.mpi.datatypes import Datatype
from repro.mpi.ops import Op

# Tag offset separating the gather phase from the reduce-scatter rounds
# (rounds use offsets 1..log2(p), far below 64).
_GATHER_TAG_OFFSET = 64

#: Buffer names the reduce schedules use.
ACC = "acc"
RECV = "recv"


@register_builder("reduce", "binomial")
def build_reduce_binomial(rank: int, size: int, count: int, esize: int,
                          root: int, seq: int) -> Schedule:
    """Binomial-tree reduction of ``count`` elements to ``root``.

    The root's schedule ends with a copy of the accumulator into ``"recv"``.
    """
    sched = Schedule()
    p = size
    nbytes = count * esize
    if p > 1:
        tag = coll_tag(KIND_REDUCE, seq)
        vrank = (rank - root) % p
        tmp = sched.temp("tmp", nbytes)
        mask = 1
        while mask < p:
            if vrank & mask:
                parent = ((vrank & ~mask) + root) % p
                sched.round([SendStep(parent, tag, ACC, 0, nbytes)])
                break
            vchild = vrank | mask
            if vchild < p:
                child = (vchild + root) % p
                sched.round([
                    RecvStep(child, tag, tmp, 0, nbytes),
                    ReduceStep(tmp, 0, ACC, 0, count),
                ])
            mask <<= 1
    if rank == root:
        sched.round([CopyStep(ACC, 0, RECV, 0, nbytes)])
    return sched


@register("reduce", "binomial")
def reduce_binomial(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: Optional[bytearray],
    count: int,
    datatype: Datatype,
    op: Op,
    root: int,
    seq: int,
) -> None:
    """Blocking binomial-tree reduction (executes the schedule in place)."""
    nbytes = count * datatype.size
    sched = build_reduce_binomial(cc.rank, cc.size, count, datatype.size, root, seq)
    buffers = {ACC: bytearray(sendbuf[:nbytes])}
    if cc.rank == root:
        # Only the root's schedule references RECV (the final copy step).
        buffers[RECV] = recvbuf if recvbuf is not None else bytearray(nbytes)
    execute(cc, sched, buffers, datatype, op)


def _fold_to_power_of_two(
    cc: CollectiveContext,
    acc: bytearray,
    count: int,
    datatype: Datatype,
    op: Op,
    tag: int,
    rem: int,
) -> int:
    """Pre-phase of the halving/doubling algorithms for non-power-of-two sizes.

    The first ``2 * rem`` ranks pair up: each even rank sends its vector to
    its odd neighbour (which combines it) and drops out of the core phase.
    Returns the rank's virtual id within the power-of-two group, or ``-1``
    for folded-out ranks.
    """
    rank = cc.rank
    nbytes = count * datatype.size
    if rank < 2 * rem:
        if rank % 2 == 0:
            cc.send(rank + 1, tag, bytes(acc))
            return -1
        contribution = cc.recv(rank - 1, tag, nbytes)
        combine(cc, op, acc, contribution, datatype, count)
        return rank // 2
    return rank - rem


def _reduce_scatter_halving(
    cc: CollectiveContext,
    acc: bytearray,
    datatype: Datatype,
    op: Op,
    tag: int,
    vrank: int,
    pof2: int,
    rem: int,
    cnts,
    offs,
):
    """Recursive-halving reduce-scatter over the power-of-two group.

    Each participant starts with a full combined vector and ends owning the
    fully reduced chunk ``vrank`` (chunk boundaries from ``cnts``/``offs``).
    """
    esize = datatype.size
    lo, hi = 0, pof2
    mask = pof2 // 2
    round_no = 1
    while mask > 0:
        partner = fold_absolute_rank(vrank ^ mask, rem)
        mid = lo + (hi - lo) // 2
        if vrank < mid:
            keep_lo, keep_hi, send_lo, send_hi = lo, mid, mid, hi
        else:
            keep_lo, keep_hi, send_lo, send_hi = mid, hi, lo, mid
        send_bytes = acc[offs[send_lo] * esize : (offs[send_hi - 1] + cnts[send_hi - 1]) * esize]
        cc.send(partner, tag + round_no, bytes(send_bytes))
        keep_elems = offs[keep_hi - 1] + cnts[keep_hi - 1] - offs[keep_lo]
        incoming = cc.recv(partner, tag + round_no, keep_elems * esize)
        combine_segment(cc, op, acc, incoming, datatype, offs[keep_lo], keep_elems)
        lo, hi = keep_lo, keep_hi
        mask //= 2
        round_no += 1


@register("reduce", "rabenseifner")
def reduce_rabenseifner(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: Optional[bytearray],
    count: int,
    datatype: Datatype,
    op: Op,
    root: int,
    seq: int,
) -> None:
    """Rabenseifner reduction: recursive-halving reduce-scatter, then a gather
    of the reduced chunks to the root.

    Halves the bandwidth term of the binomial tree for large vectors
    (~``2 * nbytes`` moved per rank instead of ``nbytes * log2(p)``).
    Non-power-of-two sizes fold the ``p - 2^k`` extra ranks into their
    neighbours in a pre-phase, exactly like MPICH's implementation; all
    predefined MPI ops are commutative, which the fold relies on.
    """
    p = cc.size
    esize = datatype.size
    nbytes = count * esize
    acc = bytearray(sendbuf[:nbytes])
    if p <= 1:
        if cc.rank == root and recvbuf is not None:
            recvbuf[:nbytes] = acc
        return

    tag = coll_tag(KIND_REDUCE, seq)
    pof2 = largest_power_of_two_leq(p)
    rem = p - pof2
    vrank = _fold_to_power_of_two(cc, acc, count, datatype, op, tag, rem)

    cnts = chunk_counts(count, pof2)
    offs = chunk_offsets(cnts)
    if vrank != -1:
        _reduce_scatter_halving(cc, acc, datatype, op, tag, vrank, pof2, rem, cnts, offs)

    # Gather phase: every chunk owner ships its reduced chunk to the root.
    gather_tag = tag + _GATHER_TAG_OFFSET
    if cc.rank == root:
        # Drain every chunk even when the caller passed no receive buffer, so
        # no message is left behind in the matching engine.
        for v in range(pof2):
            if cnts[v] == 0:
                continue
            seg_lo = offs[v] * esize
            seg_hi = seg_lo + cnts[v] * esize
            owner = fold_absolute_rank(v, rem)
            if owner == root:
                segment = bytes(acc[seg_lo:seg_hi])
            else:
                segment = cc.recv(owner, gather_tag + v, seg_hi - seg_lo)
            if recvbuf is not None:
                recvbuf[seg_lo:seg_hi] = segment
    elif vrank != -1 and cnts[vrank] > 0:
        seg_lo = offs[vrank] * esize
        seg_hi = seg_lo + cnts[vrank] * esize
        cc.send(root, gather_tag + vrank, bytes(acc[seg_lo:seg_hi]))
