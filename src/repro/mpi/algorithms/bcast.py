"""Broadcast algorithms: binomial tree and scatter-allgather (Van de Geijn).

Signature shared by every bcast algorithm::

    fn(cc, buffer, nbytes, root, seq) -> None

``buffer`` is a ``bytearray`` holding the payload on the root and receiving
it everywhere else.
"""

from __future__ import annotations

from repro.mpi.algorithms.base import KIND_BCAST, CollectiveContext, coll_tag
from repro.mpi.algorithms.registry import register


@register("bcast", "binomial")
def bcast_binomial(cc: CollectiveContext, buffer: bytearray, nbytes: int, root: int, seq: int) -> None:
    """Binomial-tree broadcast of ``nbytes`` from ``root`` into ``buffer``."""
    p = cc.size
    if p <= 1 or nbytes < 0:
        return
    tag = coll_tag(KIND_BCAST, seq)
    vrank = (cc.rank - root) % p

    # Phase 1: every rank except the root receives from its binomial parent.
    # ``mask`` ends up at the bit position where this rank hangs off the tree
    # (or at the first power of two >= p for the root).
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = ((vrank - mask) + root) % p
            data = cc.recv(parent, tag, nbytes)
            buffer[:nbytes] = data
            break
        mask <<= 1
    # Phase 2: forward to children at all lower bit positions.
    mask >>= 1
    while mask > 0:
        if vrank + mask < p:
            child = ((vrank + mask) + root) % p
            cc.send(child, tag, bytes(buffer[:nbytes]))
        mask >>= 1


@register("bcast", "scatter_allgather")
def bcast_scatter_allgather(cc: CollectiveContext, buffer: bytearray, nbytes: int, root: int, seq: int) -> None:
    """Scatter-allgather broadcast (Van de Geijn): the root scatters the
    payload into ``p`` blocks, then a ring allgather reassembles it everywhere.

    Moves ~``2 * nbytes * (p-1)/p`` bytes per rank instead of the binomial
    tree's ``nbytes * log2(p)`` at the root, which wins for large payloads.
    Blocks are addressed in root-relative (virtual) rank order so any root
    works; trailing blocks may be empty when ``nbytes < p``.
    """
    p = cc.size
    if p <= 1 or nbytes <= 0:
        return
    tag = coll_tag(KIND_BCAST, seq)
    vrank = (cc.rank - root) % p
    blk = (nbytes + p - 1) // p

    def span(v: int):
        lo = min(v * blk, nbytes)
        return lo, min(lo + blk, nbytes)

    # Phase 1: linear scatter from the root -- virtual rank v gets block v.
    if vrank == 0:
        for v in range(1, p):
            lo, hi = span(v)
            cc.send((v + root) % p, tag, bytes(buffer[lo:hi]))
    else:
        lo, hi = span(vrank)
        data = cc.recv(root, tag, hi - lo)
        buffer[lo:hi] = data

    # Phase 2: ring allgather of the blocks.  At step s each rank forwards the
    # block that originated at virtual rank (vrank - s) and receives the one
    # from (vrank - s - 1); neighbours in virtual-rank space map to the
    # (rank +/- 1) ring in absolute ranks.
    right = (cc.rank + 1) % p
    left = (cc.rank - 1) % p
    for step in range(p - 1):
        send_v = (vrank - step) % p
        recv_v = (vrank - step - 1) % p
        slo, shi = span(send_v)
        rlo, rhi = span(recv_v)
        cc.send(right, tag + 1 + step, bytes(buffer[slo:shi]))
        incoming = cc.recv(left, tag + 1 + step, rhi - rlo)
        buffer[rlo:rhi] = incoming
