"""Broadcast algorithms: binomial tree and scatter-allgather (Van de Geijn).

Both are expressed as schedules over one named buffer, ``"data"`` -- the
payload on the root, the receive target everywhere else.  The registered
blocking functions execute the same schedules ``MPI_Ibcast`` advances
incrementally, so each algorithm has exactly one implementation.
"""

from __future__ import annotations

from repro.mpi.algorithms.base import KIND_BCAST, CollectiveContext, coll_tag
from repro.mpi.algorithms.registry import register
from repro.mpi.algorithms.schedule import (
    RecvStep,
    Schedule,
    SendStep,
    execute,
    register_builder,
)

#: Buffer name every bcast schedule reads and writes.
DATA = "data"


@register_builder("bcast", "binomial")
def build_bcast_binomial(rank: int, size: int, nbytes: int, root: int, seq: int) -> Schedule:
    """Binomial-tree broadcast of ``nbytes`` from ``root``."""
    sched = Schedule()
    p = size
    if p <= 1 or nbytes < 0:
        return sched
    tag = coll_tag(KIND_BCAST, seq)
    vrank = (rank - root) % p

    # Round 1: every rank except the root receives from its binomial parent.
    # ``mask`` ends up at the bit position where this rank hangs off the tree
    # (or at the first power of two >= p for the root).
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = ((vrank - mask) + root) % p
            sched.round([RecvStep(parent, tag, DATA, 0, nbytes)])
            break
        mask <<= 1
    # Following rounds: forward to children at all lower bit positions.
    mask >>= 1
    while mask > 0:
        if vrank + mask < p:
            child = ((vrank + mask) + root) % p
            sched.round([SendStep(child, tag, DATA, 0, nbytes)])
        mask >>= 1
    return sched


@register_builder("bcast", "scatter_allgather")
def build_bcast_scatter_allgather(rank: int, size: int, nbytes: int, root: int, seq: int) -> Schedule:
    """Scatter-allgather broadcast (Van de Geijn): the root scatters the
    payload into ``p`` blocks, then a ring allgather reassembles it everywhere.

    Moves ~``2 * nbytes * (p-1)/p`` bytes per rank instead of the binomial
    tree's ``nbytes * log2(p)`` at the root, which wins for large payloads.
    Blocks are addressed in root-relative (virtual) rank order so any root
    works; trailing blocks may be empty when ``nbytes < p``.
    """
    sched = Schedule()
    p = size
    if p <= 1 or nbytes <= 0:
        return sched
    tag = coll_tag(KIND_BCAST, seq)
    vrank = (rank - root) % p
    blk = (nbytes + p - 1) // p

    def span(v: int):
        lo = min(v * blk, nbytes)
        return lo, min(lo + blk, nbytes)

    # Round 1: linear scatter from the root -- virtual rank v gets block v.
    if vrank == 0:
        sched.round([
            SendStep((v + root) % p, tag, DATA, span(v)[0], span(v)[1] - span(v)[0])
            for v in range(1, p)
        ])
    else:
        lo, hi = span(vrank)
        sched.round([RecvStep(root, tag, DATA, lo, hi - lo)])

    # Following rounds: ring allgather of the blocks.  At step s each rank
    # forwards the block that originated at virtual rank (vrank - s) and
    # receives the one from (vrank - s - 1); neighbours in virtual-rank space
    # map to the (rank +/- 1) ring in absolute ranks.
    right = (rank + 1) % p
    left = (rank - 1) % p
    for step in range(p - 1):
        send_v = (vrank - step) % p
        recv_v = (vrank - step - 1) % p
        slo, shi = span(send_v)
        rlo, rhi = span(recv_v)
        sched.round([
            SendStep(right, tag + 1 + step, DATA, slo, shi - slo),
            RecvStep(left, tag + 1 + step, DATA, rlo, rhi - rlo),
        ])
    return sched


@register("bcast", "binomial")
def bcast_binomial(cc: CollectiveContext, buffer: bytearray, nbytes: int, root: int, seq: int) -> None:
    """Blocking binomial-tree broadcast (executes the schedule in place)."""
    execute(cc, build_bcast_binomial(cc.rank, cc.size, nbytes, root, seq), {DATA: buffer})


@register("bcast", "scatter_allgather")
def bcast_scatter_allgather(cc: CollectiveContext, buffer: bytearray, nbytes: int, root: int, seq: int) -> None:
    """Blocking scatter-allgather broadcast (executes the schedule in place)."""
    execute(cc, build_bcast_scatter_allgather(cc.rank, cc.size, nbytes, root, seq), {DATA: buffer})
