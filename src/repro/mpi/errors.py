"""MPI error classes and error codes.

The MPI standard reports failures through integer error codes; the host-side
library here raises exceptions carrying those codes, and the embedder converts
them back into the integer codes a Wasm guest expects (the guest-side ABI in
:mod:`repro.toolchain.mpi_header` defines the same constants).
"""

from __future__ import annotations

# Error codes per the MPI-2.2 standard (values match common implementations).
MPI_SUCCESS = 0
MPI_ERR_BUFFER = 1
MPI_ERR_COUNT = 2
MPI_ERR_TYPE = 3
MPI_ERR_TAG = 4
MPI_ERR_COMM = 5
MPI_ERR_RANK = 6
MPI_ERR_REQUEST = 7
MPI_ERR_ROOT = 8
MPI_ERR_OP = 9
MPI_ERR_ARG = 12
MPI_ERR_TRUNCATE = 14
MPI_ERR_OTHER = 15
MPI_ERR_INTERN = 16
MPI_ERR_NO_MEM = 19


class MPIError(RuntimeError):
    """Base class for MPI failures raised by the host library.

    Attributes
    ----------
    code:
        The MPI error code corresponding to this failure.
    """

    code = MPI_ERR_OTHER

    def __init__(self, message: str, code: int | None = None):
        super().__init__(message)
        if code is not None:
            self.code = code


class InvalidRankError(MPIError):
    """A rank argument was outside the communicator."""

    code = MPI_ERR_RANK


class InvalidCountError(MPIError):
    """A count argument was negative or inconsistent with the buffer."""

    code = MPI_ERR_COUNT


class InvalidTagError(MPIError):
    """A tag argument was negative (and not a wildcard)."""

    code = MPI_ERR_TAG


class InvalidDatatypeError(MPIError):
    """A datatype handle did not name a known datatype."""

    code = MPI_ERR_TYPE


class InvalidOpError(MPIError):
    """A reduction-op handle did not name a known operation."""

    code = MPI_ERR_OP


class InvalidCommunicatorError(MPIError):
    """A communicator handle did not name a live communicator."""

    code = MPI_ERR_COMM


class InvalidRootError(MPIError):
    """A collective root argument was outside the communicator."""

    code = MPI_ERR_ROOT


class TruncationError(MPIError):
    """A receive buffer was too small for the matched message."""

    code = MPI_ERR_TRUNCATE


class InvalidRequestError(MPIError):
    """A request handle did not name an active request."""

    code = MPI_ERR_REQUEST


class NotInitializedError(MPIError):
    """An MPI call was made before ``MPI_Init`` or after ``MPI_Finalize``."""

    code = MPI_ERR_OTHER
