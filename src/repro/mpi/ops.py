"""MPI reduction operations of the host library.

Like datatypes, ``MPI_Op`` handles are opaque to applications; on the host
side they are objects carrying a NumPy-vectorised combine function, on the
guest side plain integers translated by the embedder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from repro.mpi.datatypes import Datatype


@dataclass(frozen=True)
class Op:
    """One MPI reduction operation.

    Attributes
    ----------
    name:
        MPI name, e.g. ``"MPI_SUM"``.
    fn:
        Element-wise combine: ``fn(accumulator, contribution) -> combined``.
        Both arguments are NumPy arrays of the same dtype and shape.
    commutative:
        Whether the operation is commutative (all predefined ops are).
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    commutative: bool = True

    def apply(self, acc: np.ndarray, contribution: np.ndarray) -> np.ndarray:
        """Combine ``contribution`` into ``acc`` and return the result."""
        return self.fn(acc, contribution)

    def reduce_bytes(self, acc: bytearray, contribution: bytes, datatype: Datatype, count: int) -> None:
        """Combine raw byte buffers in place, viewing them as ``datatype``.

        This is the path the matching engine and collectives use: buffers are
        raw bytes (possibly views into a Wasm module's linear memory), and the
        datatype provides the element interpretation.
        """
        dt = datatype.numpy()
        nbytes = count * datatype.size
        a = np.frombuffer(memoryview(acc)[:nbytes], dtype=dt).copy()
        b = np.frombuffer(memoryview(contribution)[:nbytes], dtype=dt)
        result = self.fn(a, b)
        memoryview(acc)[:nbytes] = result.astype(dt, copy=False).tobytes()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Op({self.name})"


SUM = Op("MPI_SUM", lambda a, b: a + b)
PROD = Op("MPI_PROD", lambda a, b: a * b)
MAX = Op("MPI_MAX", np.maximum)
MIN = Op("MPI_MIN", np.minimum)
LAND = Op("MPI_LAND", lambda a, b: ((a != 0) & (b != 0)).astype(a.dtype))
LOR = Op("MPI_LOR", lambda a, b: ((a != 0) | (b != 0)).astype(a.dtype))
LXOR = Op("MPI_LXOR", lambda a, b: ((a != 0) ^ (b != 0)).astype(a.dtype))
BAND = Op("MPI_BAND", lambda a, b: a & b)
BOR = Op("MPI_BOR", lambda a, b: a | b)
BXOR = Op("MPI_BXOR", lambda a, b: a ^ b)

PREDEFINED: Dict[str, Op] = {
    op.name: op
    for op in (SUM, PROD, MAX, MIN, LAND, LOR, LXOR, BAND, BOR, BXOR)
}


def by_name(name: str) -> Op:
    """Look up a predefined reduction op by its MPI name."""
    try:
        return PREDEFINED[name]
    except KeyError as exc:
        raise KeyError(f"unknown MPI op {name!r}") from exc
