"""Communicators and groups.

A communicator names an ordered group of world ranks plus a context id that
isolates its message traffic from every other communicator (the standard MPI
matching rule).  ``MPI_COMM_WORLD`` is created by the runtime; ``Comm_split``
and ``Comm_dup`` derive new communicators, which is what the Intel MPI
Benchmarks rely on (the paper points out that Faasm cannot run IMB precisely
because it lacks user-defined communicators).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.mpi.errors import InvalidRankError


@dataclass(frozen=True)
class Group:
    """An ordered set of world ranks (``MPI_Group``)."""

    world_ranks: tuple

    @property
    def size(self) -> int:
        """Number of ranks in the group."""
        return len(self.world_ranks)

    def rank_of(self, world_rank: int) -> Optional[int]:
        """Group-local rank of ``world_rank`` (``None`` if absent)."""
        try:
            return self.world_ranks.index(world_rank)
        except ValueError:
            return None

    def translate(self, local_rank: int) -> int:
        """World rank of group-local ``local_rank``."""
        if not 0 <= local_rank < len(self.world_ranks):
            raise InvalidRankError(f"rank {local_rank} out of range for group of size {self.size}")
        return self.world_ranks[local_rank]


class Communicator:
    """A communication context over an ordered group of world ranks.

    Attributes
    ----------
    context_id:
        Globally unique id used for message matching isolation.
    group:
        The ordered ranks (as world ranks) belonging to this communicator.
    name:
        Debug name (``MPI_Comm_set_name`` analogue).
    """

    _context_counter = itertools.count(100)

    def __init__(self, group: Group, name: str = "", context_id: Optional[int] = None):
        self.group = group
        self.context_id = context_id if context_id is not None else next(Communicator._context_counter)
        self.name = name or f"comm#{self.context_id}"
        self.freed = False

    @property
    def size(self) -> int:
        """Number of ranks in the communicator (``MPI_Comm_size``)."""
        return self.group.size

    def rank_of_world(self, world_rank: int) -> Optional[int]:
        """Communicator-local rank of a world rank, or ``None``."""
        return self.group.rank_of(world_rank)

    def world_rank(self, local_rank: int) -> int:
        """World rank corresponding to a communicator-local rank."""
        return self.group.translate(local_rank)

    def contains_world(self, world_rank: int) -> bool:
        """Whether the world rank belongs to this communicator."""
        return self.group.rank_of(world_rank) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Communicator({self.name}, size={self.size}, ctx={self.context_id})"


def world_communicator(nranks: int) -> Communicator:
    """Build ``MPI_COMM_WORLD`` over ranks ``0 .. nranks-1``."""
    return Communicator(Group(tuple(range(nranks))), name="MPI_COMM_WORLD", context_id=0)


def self_communicator(world_rank: int) -> Communicator:
    """Build ``MPI_COMM_SELF`` for one rank."""
    return Communicator(Group((world_rank,)), name="MPI_COMM_SELF", context_id=1)


class SplitCoordinator:
    """Collects ``Comm_split`` contributions from every member of a parent comm.

    ``Comm_split`` is collective: every member contributes ``(color, key)`` and
    all members of the same color receive a new communicator ordered by
    ``(key, world_rank)``.  The coordinator lives in the shared blackboard of
    the simulation and assigns one fresh context id per (split call, color) so
    that all members agree on it.
    """

    def __init__(self, parent: Communicator):
        self.parent = parent
        self.contributions: Dict[int, tuple] = {}
        self.result_groups: Optional[Dict[int, Group]] = None
        self.context_ids: Dict[int, int] = {}

    def contribute(self, world_rank: int, color: int, key: int) -> None:
        """Record one member's (color, key)."""
        self.contributions[world_rank] = (color, key)

    @property
    def ready(self) -> bool:
        """Whether every member of the parent communicator has contributed."""
        return len(self.contributions) == self.parent.size

    def finalize(self) -> None:
        """Compute the per-color groups and context ids (idempotent)."""
        if self.result_groups is not None:
            return
        by_color: Dict[int, List[tuple]] = {}
        for world_rank, (color, key) in self.contributions.items():
            if color < 0:
                continue  # MPI_UNDEFINED: the rank gets MPI_COMM_NULL
            by_color.setdefault(color, []).append((key, world_rank))
        groups: Dict[int, Group] = {}
        for color, members in by_color.items():
            ordered = tuple(world for _key, world in sorted(members))
            groups[color] = Group(ordered)
            self.context_ids[color] = next(Communicator._context_counter)
        self.result_groups = groups

    def communicator_for(self, world_rank: int) -> Optional[Communicator]:
        """The new communicator for ``world_rank`` (``None`` for MPI_UNDEFINED)."""
        self.finalize()
        color, _key = self.contributions[world_rank]
        if color < 0 or self.result_groups is None or color not in self.result_groups:
            return None
        return Communicator(
            self.result_groups[color],
            name=f"{self.parent.name}.split(color={color})",
            context_id=self.context_ids[color],
        )
