"""Point-to-point message matching engine.

One :class:`MatchingEngine` instance is shared by every rank of a simulation
(it lives in the engine's shared blackboard).  It implements the MPI matching
rules -- messages match on (communicator context, source, tag) in send order,
with ``ANY_SOURCE``/``ANY_TAG`` wildcards -- and drives the virtual-time
accounting for sends and receives using the cluster's transport models:

* the sender is charged the transport's injection overhead,
* the message "arrives" at ``send_time + latency + size/bandwidth``,
* the receiver's clock advances to at least the arrival time,
* messages larger than the transport's eager threshold use a rendezvous
  protocol: the sender blocks until the receiver has drained the message.

Data movement is real: send buffers are copied into the message at injection
time and copied out into the receive buffer at match time, so every benchmark
and test validates actual payloads, not just timings.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.fault import inject as _inject
from repro.mpi.errors import TruncationError
from repro.mpi.status import Status
from repro.obs import trace as _trace
from repro.sim.cluster import Cluster
from repro.sim.engine import RankContext

# Wildcards (host-side symbolic values; the guest ABI defines its own).
ANY_SOURCE = -1
ANY_TAG = -1
PROC_NULL = -2


@dataclass
class Message:
    """An in-flight (or buffered) point-to-point message."""

    msg_id: int
    src_world: int
    dst_world: int
    context_id: int
    tag: int
    data: bytes
    send_time: float
    rendezvous: bool = False
    consumed: bool = False
    consumed_time: float = 0.0


@dataclass
class _WaitingReceiver:
    """A rank blocked inside a receive, with its match pattern."""

    world_rank: int
    context_id: int
    src: int
    tag: int


class MatchingEngine:
    """Shared MPI message-matching and timing engine.

    Parameters
    ----------
    cluster:
        Supplies the per-pair transport models.
    extra_send_overhead, extra_recv_overhead:
        Additional per-call CPU time charged on top of the transport model.
        The MPIWasm embedder uses these hooks to charge its translation costs
        (Figure 6) to the ranks running Wasm guests.
    """

    SHARED_KEY = "mpi.matching"

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._queues: Dict[Tuple[int, int], List[Message]] = {}
        # Per-rank list of patterns the rank is currently blocked on.  A plain
        # receive registers one; ``block_for_any`` (the progress engine's
        # wait-for-anything primitive behind Waitany and non-blocking
        # collectives) registers one per outstanding request.
        self._waiting: Dict[int, List[_WaitingReceiver]] = {}
        self._msg_counter = itertools.count(1)
        self.messages_sent = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------ helpers

    def _queue(self, dst_world: int, context_id: int) -> List[Message]:
        return self._queues.setdefault((dst_world, context_id), [])

    @staticmethod
    def _matches(msg: Message, src: int, tag: int) -> bool:
        if src != ANY_SOURCE and msg.src_world != src:
            return False
        if tag != ANY_TAG and msg.tag != tag:
            return False
        return True

    def _find_match(
        self, dst_world: int, context_id: int, src: int, tag: int
    ) -> Optional[Message]:
        for msg in self._queue(dst_world, context_id):
            if self._matches(msg, src, tag):
                return msg
        return None

    def has_match(self, dst_world: int, context_id: int, src: int, tag: int) -> bool:
        """Whether a matching message is already buffered (``MPI_Iprobe``)."""
        return self._find_match(dst_world, context_id, src, tag) is not None

    def probe_match(
        self, dst_world: int, context_id: int, src: int, tag: int
    ) -> Optional[Message]:
        """Return (without consuming) the first matching buffered message."""
        return self._find_match(dst_world, context_id, src, tag)

    # -------------------------------------------------------------------- send

    def post_send(
        self,
        ctx: RankContext,
        src_world: int,
        dst_world: int,
        context_id: int,
        tag: int,
        data: bytes,
        extra_overhead: float = 0.0,
        blocking: bool = True,
    ) -> Message:
        """Inject a message; optionally block for rendezvous completion.

        Returns the :class:`Message` record (used by ``MPI_Isend`` requests and
        by ``Sendrecv`` to defer the rendezvous wait).
        """
        nbytes = len(data)
        transport = self.cluster.transport(src_world, dst_world)
        ctx.advance(transport.send_overhead(nbytes) + extra_overhead)
        msg = Message(
            msg_id=next(self._msg_counter),
            src_world=src_world,
            dst_world=dst_world,
            context_id=context_id,
            tag=tag,
            data=bytes(data),
            send_time=ctx.now,
            rendezvous=transport.is_rendezvous(nbytes),
        )
        if _inject.ARMED:
            verdict, payload, extra_delay = _inject.ACTIVE.on_message(
                src_world, dst_world, msg.data, ctx.now
            )
            if verdict == "drop":
                # The sender completes normally (the bytes left its NIC); the
                # message simply never reaches the destination queue.
                self.messages_sent += 1
                self.bytes_sent += nbytes
                msg.consumed = True
                msg.consumed_time = ctx.now
                return msg
            msg.data = payload
            # Delaying the injection instant shifts the arrival by the same
            # amount everywhere it is derived (wake targets and consumption).
            msg.send_time += extra_delay
        self._queue(dst_world, context_id).append(msg)
        self.messages_sent += 1
        self.bytes_sent += nbytes
        if _trace.ENABLED:
            _trace.RECORDER.instant(
                "pt2pt.post", src_world, ctx.now,
                args={"dst": dst_world, "tag": tag, "nbytes": nbytes,
                      "rendezvous": msg.rendezvous},
            )
        # Wake the receiver if it is blocked on any matching pattern.
        for waiter in self._waiting.get(dst_world, ()):
            if waiter.context_id == context_id and self._matches(msg, waiter.src, waiter.tag):
                arrival = msg.send_time + transport.transfer_time(nbytes)
                ctx.wake(dst_world, not_before=arrival)
                break
        if blocking and msg.rendezvous:
            self.wait_send(ctx, msg)
        return msg

    def wait_send(self, ctx: RankContext, msg: Message) -> None:
        """Block the sender until a rendezvous message has been consumed."""
        if not msg.rendezvous:
            return
        while not msg.consumed:
            # Record that the sender is waiting so the receiver can wake it via
            # the message record itself (the receiver always knows the sender).
            ctx.block(reason=f"rendezvous send to {msg.dst_world} tag={msg.tag}")
        ctx.advance_to(msg.consumed_time)
        if _trace.ENABLED:
            _trace.RECORDER.instant(
                "pt2pt.rendezvous_drain", msg.src_world, ctx.now,
                args={"dst": msg.dst_world, "tag": msg.tag, "nbytes": len(msg.data)},
            )

    # ---------------------------------------------------------- any-of waiting

    def block_for_any(
        self,
        ctx: RankContext,
        dst_world: int,
        patterns: List[Tuple[int, int, int]],
        reason: str = "",
    ) -> None:
        """Block until a message matching *any* ``(context_id, src, tag)``
        pattern is buffered for ``dst_world`` -- or until any wake arrives
        (e.g. a rendezvous send draining).

        Returns immediately when a match is already buffered.  This is a
        condition-variable style wait: callers re-check their own completion
        condition after it returns.  The progress engine uses it so a rank
        stuck in ``MPI_Waitany``/``MPI_Wait`` resumes as soon as *any* of its
        outstanding requests can make progress, rather than pinning itself to
        one arbitrarily chosen request.
        """
        for context_id, src, tag in patterns:
            if self._find_match(dst_world, context_id, src, tag) is not None:
                return
        waiters = [
            _WaitingReceiver(dst_world, context_id, src, tag)
            for context_id, src, tag in patterns
        ]
        registered = self._waiting.setdefault(dst_world, [])
        registered.extend(waiters)
        try:
            ctx.block(reason=reason or f"wait-any on {len(patterns)} request(s)")
        finally:
            for waiter in waiters:
                registered.remove(waiter)
            if not registered:
                self._waiting.pop(dst_world, None)

    # -------------------------------------------------------------------- recv

    def recv(
        self,
        ctx: RankContext,
        dst_world: int,
        context_id: int,
        src: int,
        tag: int,
        buffer: Optional[memoryview],
        max_bytes: int,
        extra_overhead: float = 0.0,
    ) -> Status:
        """Blocking receive into ``buffer`` (or a pure timing receive if None).

        Raises :class:`TruncationError` if the matched message is larger than
        ``max_bytes`` -- the same condition ``MPI_ERR_TRUNCATE`` reports.
        """
        msg = self._find_match(dst_world, context_id, src, tag)
        while msg is None:
            waiter = _WaitingReceiver(dst_world, context_id, src, tag)
            registered = self._waiting.setdefault(dst_world, [])
            registered.append(waiter)
            try:
                ctx.block(reason=f"recv src={src} tag={tag} ctx={context_id}")
            finally:
                registered.remove(waiter)
                if not registered:
                    self._waiting.pop(dst_world, None)
            msg = self._find_match(dst_world, context_id, src, tag)
        self._queue(dst_world, context_id).remove(msg)

        nbytes = len(msg.data)
        if nbytes > max_bytes:
            raise TruncationError(
                f"message of {nbytes} bytes truncated by receive buffer of {max_bytes} bytes"
            )
        ctx.advance_to(self._consume(ctx, msg, buffer, extra_overhead=extra_overhead))
        return Status(source=msg.src_world, tag=msg.tag, count_bytes=nbytes)

    def consume_nowait(
        self,
        ctx: RankContext,
        dst_world: int,
        context_id: int,
        src: int,
        tag: int,
        buffer: Optional[memoryview],
        max_bytes: int,
    ) -> Optional[Tuple[Status, float]]:
        """Consume a matching buffered message without waiting for its arrival.

        The progress engine's receive: charges only the receiver's CPU
        overhead and returns ``(status, arrival_time)`` instead of advancing
        the clock to the arrival -- the caller decides when the *data*
        dependency bites (that separation is what lets a non-blocking
        collective overlap its transfer time with caller compute).  Returns
        ``None`` when nothing matches.
        """
        msg = self._find_match(dst_world, context_id, src, tag)
        if msg is None:
            return None
        if _trace.ENABLED:
            _trace.RECORDER.instant(
                "pt2pt.match", dst_world, ctx.now,
                args={"src": msg.src_world, "tag": msg.tag, "nbytes": len(msg.data)},
            )
        self._queue(dst_world, context_id).remove(msg)
        nbytes = len(msg.data)
        if nbytes > max_bytes:
            raise TruncationError(
                f"message of {nbytes} bytes truncated by receive buffer of {max_bytes} bytes"
            )
        arrival = self._consume(ctx, msg, buffer)
        return Status(source=msg.src_world, tag=msg.tag, count_bytes=nbytes), arrival

    def _consume(
        self,
        ctx: RankContext,
        msg: Message,
        buffer: Optional[memoryview],
        extra_overhead: float = 0.0,
    ) -> float:
        """Shared consumption core: copy out, charge the receiver's CPU
        overhead, complete a rendezvous.  Returns the arrival time (when the
        last byte is on the receiver); the caller chooses whether to advance
        the clock to it."""
        nbytes = len(msg.data)
        transport = self.cluster.transport(msg.src_world, msg.dst_world)
        ctx.advance(transport.recv_overhead(nbytes) + extra_overhead)
        arrival = msg.send_time + transport.transfer_time(nbytes)
        if buffer is not None and nbytes > 0:
            buffer[:nbytes] = msg.data
        msg.consumed = True
        msg.consumed_time = max(ctx.now, arrival)
        if msg.rendezvous:
            # Wake the sender if it blocked waiting for the rendezvous.
            ctx.wake(msg.src_world, not_before=msg.consumed_time)
        if _trace.ENABLED:
            _trace.RECORDER.instant(
                "pt2pt.consume", msg.dst_world, ctx.now,
                args={"src": msg.src_world, "tag": msg.tag, "nbytes": nbytes,
                      "arrival": arrival, "rendezvous": msg.rendezvous},
            )
        return arrival

    # ------------------------------------------------------------- diagnostics

    def pending_count(self) -> int:
        """Total number of buffered, unconsumed messages (for leak checks)."""
        return sum(len(q) for q in self._queues.values())

    def describe_pending(self) -> List[str]:
        """Human-readable list of buffered messages (test diagnostics)."""
        out = []
        for (dst, ctx_id), q in self._queues.items():
            for m in q:
                out.append(
                    f"msg#{m.msg_id} {m.src_world}->{dst} ctx={ctx_id} tag={m.tag} bytes={len(m.data)}"
                )
        return out
