"""Algorithmic implementations of the MPI collectives.

Every collective is built on top of the point-to-point engine, using the
textbook algorithms the closed-form cost model in
:class:`repro.sim.network.CollectiveCostModel` describes:

* ``barrier``    -- dissemination,
* ``bcast``      -- binomial tree,
* ``reduce``     -- binomial tree (children combined into the parent),
* ``allreduce``  -- reduce followed by broadcast,
* ``gather`` / ``scatter`` -- linear (root exchanges with every other rank),
* ``allgather``  -- ring,
* ``alltoall``   -- pairwise exchange.

The functions operate on raw byte buffers; element interpretation (for the
reduction collectives) comes from the datatype argument.  Successive
collectives on the same communicator are disambiguated with a per-communicator
operation sequence number folded into the message tag; MPI requires all ranks
to call collectives in the same order, so the sequence numbers agree.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.mpi.datatypes import Datatype
from repro.mpi.ops import Op

# Tag space reserved for collectives (user tags are non-negative and small).
_COLL_TAG_BASE = 1 << 24
_COLL_TAG_MOD = 1 << 20


def _coll_tag(kind: int, seq: int) -> int:
    """Tag for the ``seq``-th collective of a given kind on a communicator."""
    return _COLL_TAG_BASE + kind * _COLL_TAG_MOD + (seq % _COLL_TAG_MOD)


# Kind identifiers (kept distinct so different collectives never cross-match).
KIND_BARRIER = 0
KIND_BCAST = 1
KIND_REDUCE = 2
KIND_GATHER = 3
KIND_SCATTER = 4
KIND_ALLGATHER = 5
KIND_ALLTOALL = 6
KIND_ALLREDUCE = 7


class CollectiveContext:
    """Bundle of callables the collectives need from the per-rank runtime.

    ``send(dst_local, tag, data)`` and ``recv(src_local, tag, nbytes) -> bytes``
    operate on *communicator-local* ranks; the runtime translates to world
    ranks and forwards to the matching engine.  ``compute(seconds)`` charges
    local computation time (used for the combine step of reductions).
    """

    def __init__(
        self,
        rank: int,
        size: int,
        send: Callable[[int, int, bytes], None],
        recv: Callable[[int, int, int], bytes],
        compute: Callable[[float], None],
        reduce_compute_per_byte: float = 0.04e-9,
    ):
        self.rank = rank
        self.size = size
        self.send = send
        self.recv = recv
        self.compute = compute
        self.reduce_compute_per_byte = reduce_compute_per_byte


# ----------------------------------------------------------------------- barrier


def barrier(cc: CollectiveContext, seq: int) -> None:
    """Dissemination barrier: ``ceil(log2 p)`` rounds of token exchange."""
    p = cc.size
    if p <= 1:
        return
    tag = _coll_tag(KIND_BARRIER, seq)
    step = 1
    round_no = 0
    while step < p:
        dst = (cc.rank + step) % p
        src = (cc.rank - step) % p
        cc.send(dst, tag + round_no, b"")
        cc.recv(src, tag + round_no, 0)
        step <<= 1
        round_no += 1


# ------------------------------------------------------------------------ bcast


def bcast(cc: CollectiveContext, buffer: bytearray, nbytes: int, root: int, seq: int) -> None:
    """Binomial-tree broadcast of ``nbytes`` from ``root`` into ``buffer``."""
    p = cc.size
    if p <= 1 or nbytes < 0:
        return
    tag = _coll_tag(KIND_BCAST, seq)
    vrank = (cc.rank - root) % p

    # Phase 1: every rank except the root receives from its binomial parent.
    # ``mask`` ends up at the bit position where this rank hangs off the tree
    # (or at the first power of two >= p for the root).
    mask = 1
    while mask < p:
        if vrank & mask:
            parent = ((vrank - mask) + root) % p
            data = cc.recv(parent, tag, nbytes)
            buffer[:nbytes] = data
            break
        mask <<= 1
    # Phase 2: forward to children at all lower bit positions.
    mask >>= 1
    while mask > 0:
        if vrank + mask < p:
            child = ((vrank + mask) + root) % p
            cc.send(child, tag, bytes(buffer[:nbytes]))
        mask >>= 1


# ----------------------------------------------------------------------- reduce


def reduce(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: Optional[bytearray],
    count: int,
    datatype: Datatype,
    op: Op,
    root: int,
    seq: int,
) -> None:
    """Binomial-tree reduction of ``count`` elements to ``root``."""
    p = cc.size
    nbytes = count * datatype.size
    acc = bytearray(sendbuf[:nbytes])
    if p > 1:
        tag = _coll_tag(KIND_REDUCE, seq)
        vrank = (cc.rank - root) % p
        mask = 1
        while mask < p:
            if vrank & mask:
                parent = ((vrank & ~mask) + root) % p
                cc.send(parent, tag, bytes(acc))
                break
            else:
                vchild = vrank | mask
                if vchild < p:
                    child = (vchild + root) % p
                    contribution = cc.recv(child, tag, nbytes)
                    op.reduce_bytes(acc, contribution, datatype, count)
                    cc.compute(nbytes * cc.reduce_compute_per_byte)
            mask <<= 1
    if cc.rank == root and recvbuf is not None:
        recvbuf[:nbytes] = acc


# -------------------------------------------------------------------- allreduce


def allreduce(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    count: int,
    datatype: Datatype,
    op: Op,
    seq: int,
) -> None:
    """Allreduce implemented as reduce-to-0 followed by broadcast."""
    nbytes = count * datatype.size
    tmp = bytearray(nbytes)
    reduce(cc, sendbuf, tmp if cc.rank == 0 else None, count, datatype, op, 0, seq)
    if cc.rank == 0:
        recvbuf[:nbytes] = tmp
    bcast_buf = bytearray(recvbuf[:nbytes]) if cc.rank == 0 else bytearray(nbytes)
    bcast(cc, bcast_buf, nbytes, 0, seq)
    recvbuf[:nbytes] = bcast_buf[:nbytes]


# ---------------------------------------------------------------- gather/scatter


def gather(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: Optional[bytearray],
    nbytes_per_rank: int,
    root: int,
    seq: int,
) -> None:
    """Linear gather: every non-root rank sends its block to the root."""
    p = cc.size
    tag = _coll_tag(KIND_GATHER, seq)
    if cc.rank == root:
        if recvbuf is None:
            raise ValueError("root must supply a receive buffer to gather")
        recvbuf[root * nbytes_per_rank : (root + 1) * nbytes_per_rank] = sendbuf[:nbytes_per_rank]
        for src in range(p):
            if src == root:
                continue
            block = cc.recv(src, tag, nbytes_per_rank)
            recvbuf[src * nbytes_per_rank : (src + 1) * nbytes_per_rank] = block
    else:
        cc.send(root, tag, bytes(sendbuf[:nbytes_per_rank]))


def scatter(
    cc: CollectiveContext,
    sendbuf: Optional[bytes],
    recvbuf: bytearray,
    nbytes_per_rank: int,
    root: int,
    seq: int,
) -> None:
    """Linear scatter: the root sends one block to every other rank."""
    p = cc.size
    tag = _coll_tag(KIND_SCATTER, seq)
    if cc.rank == root:
        if sendbuf is None:
            raise ValueError("root must supply a send buffer to scatter")
        recvbuf[:nbytes_per_rank] = sendbuf[
            root * nbytes_per_rank : (root + 1) * nbytes_per_rank
        ]
        for dst in range(p):
            if dst == root:
                continue
            block = bytes(sendbuf[dst * nbytes_per_rank : (dst + 1) * nbytes_per_rank])
            cc.send(dst, tag, block)
    else:
        data = cc.recv(root, tag, nbytes_per_rank)
        recvbuf[:nbytes_per_rank] = data


# -------------------------------------------------------------------- allgather


def allgather(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    nbytes_per_rank: int,
    seq: int,
) -> None:
    """Ring allgather: ``p - 1`` steps, each forwarding the next rank's block."""
    p = cc.size
    tag = _coll_tag(KIND_ALLGATHER, seq)
    recvbuf[cc.rank * nbytes_per_rank : (cc.rank + 1) * nbytes_per_rank] = sendbuf[
        :nbytes_per_rank
    ]
    if p <= 1:
        return
    left = (cc.rank - 1) % p
    right = (cc.rank + 1) % p
    # At step s each rank forwards the block that originated at (rank - s) % p.
    for step in range(p - 1):
        send_origin = (cc.rank - step) % p
        recv_origin = (cc.rank - step - 1) % p
        block = bytes(
            recvbuf[send_origin * nbytes_per_rank : (send_origin + 1) * nbytes_per_rank]
        )
        cc.send(right, tag + step, block)
        incoming = cc.recv(left, tag + step, nbytes_per_rank)
        recvbuf[
            recv_origin * nbytes_per_rank : (recv_origin + 1) * nbytes_per_rank
        ] = incoming


# --------------------------------------------------------------------- alltoall


def alltoall(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    nbytes_per_rank: int,
    seq: int,
) -> None:
    """Pairwise-exchange alltoall of one block per peer."""
    p = cc.size
    tag = _coll_tag(KIND_ALLTOALL, seq)
    # Local block copies directly.
    recvbuf[cc.rank * nbytes_per_rank : (cc.rank + 1) * nbytes_per_rank] = sendbuf[
        cc.rank * nbytes_per_rank : (cc.rank + 1) * nbytes_per_rank
    ]
    for step in range(1, p):
        dst = (cc.rank + step) % p
        src = (cc.rank - step) % p
        block = bytes(sendbuf[dst * nbytes_per_rank : (dst + 1) * nbytes_per_rank])
        cc.send(dst, tag + step, block)
        incoming = cc.recv(src, tag + step, nbytes_per_rank)
        recvbuf[src * nbytes_per_rank : (src + 1) * nbytes_per_rank] = incoming
