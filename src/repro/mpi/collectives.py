"""Dispatcher for the MPI collectives.

The algorithm implementations live in :mod:`repro.mpi.algorithms` -- a
registry of interchangeable algorithms per collective (at least two each,
mirroring Open MPI's ``tuned`` module) plus a size-based decision layer.
This module is the thin call surface the per-rank runtime uses: each function
accepts an ``algorithm`` name and forwards to the registered implementation,
defaulting to the algorithm the original single-algorithm implementation
hardwired so direct callers keep their historical behaviour.

The functions operate on raw byte buffers; element interpretation (for the
reduction collectives) comes from the datatype argument.  Successive
collectives on the same communicator are disambiguated with a per-communicator
operation sequence number folded into the message tag; MPI requires all ranks
to call collectives in the same order, so the sequence numbers agree.
"""

from __future__ import annotations

from typing import Optional

from repro.mpi.algorithms import registry
from repro.mpi.algorithms.base import (
    COLL_TAG_BASE as _COLL_TAG_BASE,  # noqa: F401  (re-exported for compat)
    COLL_TAG_MOD as _COLL_TAG_MOD,  # noqa: F401
    KIND_ALLGATHER,
    KIND_ALLREDUCE,
    KIND_ALLTOALL,
    KIND_BARRIER,
    KIND_BCAST,
    KIND_GATHER,
    KIND_REDUCE,
    KIND_SCATTER,
    CollectiveContext,
    coll_tag as _coll_tag,
)
from repro.mpi.algorithms import schedule as schedules
from repro.mpi.algorithms.schedule import Schedule
from repro.mpi.datatypes import Datatype
from repro.mpi.ops import Op

__all__ = [
    "CollectiveContext",
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "barrier_schedule",
    "bcast_schedule",
    "allreduce_schedule",
    "allgather_schedule",
    "alltoall_schedule",
    "schedulable_algorithm",
]


def barrier(cc: CollectiveContext, seq: int, algorithm: str = "dissemination") -> None:
    """Barrier through the selected algorithm."""
    registry.get("barrier", algorithm)(cc, seq)


def bcast(
    cc: CollectiveContext,
    buffer: bytearray,
    nbytes: int,
    root: int,
    seq: int,
    algorithm: str = "binomial",
) -> None:
    """Broadcast ``nbytes`` from ``root`` into ``buffer``."""
    registry.get("bcast", algorithm)(cc, buffer, nbytes, root, seq)


def reduce(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: Optional[bytearray],
    count: int,
    datatype: Datatype,
    op: Op,
    root: int,
    seq: int,
    algorithm: str = "binomial",
) -> None:
    """Reduce ``count`` elements to ``root``."""
    registry.get("reduce", algorithm)(cc, sendbuf, recvbuf, count, datatype, op, root, seq)


def allreduce(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    count: int,
    datatype: Datatype,
    op: Op,
    seq: int,
    algorithm: str = "reduce_bcast",
) -> None:
    """Allreduce ``count`` elements into every rank's ``recvbuf``."""
    registry.get("allreduce", algorithm)(cc, sendbuf, recvbuf, count, datatype, op, seq)


def gather(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: Optional[bytearray],
    nbytes_per_rank: int,
    root: int,
    seq: int,
    algorithm: str = "linear",
) -> None:
    """Gather one block per rank to ``root``."""
    registry.get("gather", algorithm)(cc, sendbuf, recvbuf, nbytes_per_rank, root, seq)


def scatter(
    cc: CollectiveContext,
    sendbuf: Optional[bytes],
    recvbuf: bytearray,
    nbytes_per_rank: int,
    root: int,
    seq: int,
    algorithm: str = "linear",
) -> None:
    """Scatter one block per rank from ``root``."""
    registry.get("scatter", algorithm)(cc, sendbuf, recvbuf, nbytes_per_rank, root, seq)


def allgather(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    nbytes_per_rank: int,
    seq: int,
    algorithm: str = "ring",
) -> None:
    """Allgather one block per rank into every rank's ``recvbuf``."""
    registry.get("allgather", algorithm)(cc, sendbuf, recvbuf, nbytes_per_rank, seq)


def alltoall(
    cc: CollectiveContext,
    sendbuf: bytes,
    recvbuf: bytearray,
    nbytes_per_rank: int,
    seq: int,
    algorithm: str = "pairwise",
) -> None:
    """Alltoall of one block per peer."""
    registry.get("alltoall", algorithm)(cc, sendbuf, recvbuf, nbytes_per_rank, seq)


# ------------------------------------------------------------------ schedules
#
# Schedule builders for the non-blocking collectives (``MPI_Ibarrier`` and
# friends).  Each returns the *same* schedule the blocking entry point above
# executes for that algorithm -- the runtime's progress engine just advances
# it incrementally instead of running it to completion in one call.


def schedulable_algorithm(collective: str, algorithm: str) -> str:
    """``algorithm`` if it has a schedule builder, else the ported fallback."""
    return schedules.schedulable(collective, algorithm)


def barrier_schedule(algorithm: str, rank: int, size: int, seq: int) -> Schedule:
    """Schedule of one rank's part of a barrier."""
    return schedules.get_builder("barrier", algorithm)(rank, size, seq)


def bcast_schedule(algorithm: str, rank: int, size: int, nbytes: int, root: int, seq: int) -> Schedule:
    """Schedule of one rank's part of a broadcast (buffer name ``"data"``)."""
    return schedules.get_builder("bcast", algorithm)(rank, size, nbytes, root, seq)


def allreduce_schedule(algorithm: str, rank: int, size: int, count: int, esize: int,
                       seq: int) -> Schedule:
    """Schedule of one rank's part of an allreduce (buffer name ``"acc"``)."""
    return schedules.get_builder("allreduce", algorithm)(rank, size, count, esize, seq)


def allgather_schedule(algorithm: str, rank: int, size: int, nbytes_per_rank: int,
                       seq: int) -> Schedule:
    """Schedule of one rank's part of an allgather (``"send"`` -> ``"recv"``)."""
    return schedules.get_builder("allgather", algorithm)(rank, size, nbytes_per_rank, seq)


def alltoall_schedule(algorithm: str, rank: int, size: int, nbytes_per_rank: int,
                      seq: int) -> Schedule:
    """Schedule of one rank's part of an alltoall (``"send"`` -> ``"recv"``)."""
    return schedules.get_builder("alltoall", algorithm)(rank, size, nbytes_per_rank, seq)
