"""``MPI_Status`` and request objects."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mpi.datatypes import Datatype
from repro.mpi.errors import MPI_SUCCESS


@dataclass
class Status:
    """Result of a completed receive (the ``MPI_Status`` structure).

    ``count_bytes`` is the number of bytes actually received;
    ``get_count(datatype)`` converts it to an element count the way
    ``MPI_Get_count`` does.
    """

    source: int = -1
    tag: int = -1
    error: int = MPI_SUCCESS
    count_bytes: int = 0

    def get_count(self, datatype: Datatype) -> int:
        """Number of ``datatype`` elements received (``MPI_Get_count``)."""
        if datatype.size == 0:
            return 0
        if self.count_bytes % datatype.size != 0:
            # MPI_UNDEFINED when the byte count is not a whole number of elements.
            return -1
        return self.count_bytes // datatype.size


@dataclass(eq=False)
class Request:
    """A nonblocking-operation handle (``MPI_Request``).

    Requests are created by ``Isend``/``Irecv``/``I<collective>`` and
    completed by ``Wait`` / ``Waitall`` / ``Test`` and friends.  Each live
    request is a two-state machine, *active* -> *complete*:

    * while active, :attr:`_op` holds the pending operation (a send awaiting
      its rendezvous drain, a deferred receive, or a collective schedule
      executor) that the runtime's progress engine advances on every
      ``test``/``wait``-family call;
    * :meth:`mark_complete` transitions to complete, detaching the operation
      and freezing the :attr:`status` user code observes.

    Identity semantics (``eq=False``): two distinct requests are never equal,
    which is what the runtime's active-request bookkeeping relies on.
    """

    kind: str = "null"
    complete: bool = False
    status: Status = field(default_factory=Status)
    # Internal: the pending operation driven by the runtime's progress engine
    # (None once complete -- or for null requests, which were never active).
    _op: Optional[object] = None

    def mark_complete(self, status: Optional[Status] = None) -> None:
        """Transition to the complete state, optionally recording a status."""
        self.complete = True
        self._op = None
        if status is not None:
            self.status = status

    @classmethod
    def null(cls) -> "Request":
        """The ``MPI_REQUEST_NULL`` handle: already complete, empty status."""
        req = cls(kind="null", complete=True)
        return req
