"""Host-side MPI-2.2 substrate over the simulated cluster.

This package is the stand-in for the host MPI library (OpenMPI/MPICH reached
through rsmpi in the paper's implementation).  The embedder defers every MPI
call made by a Wasm guest to :class:`repro.mpi.runtime.MPIRuntime`; native
benchmark programs call the same runtime directly, which is what makes the
native-vs-Wasm comparisons in the figures meaningful.
"""

from repro.mpi import datatypes, ops
from repro.mpi.communicator import Communicator, Group, world_communicator, self_communicator
from repro.mpi.datatypes import Datatype
from repro.mpi.errors import (
    MPIError,
    MPI_SUCCESS,
    InvalidCountError,
    InvalidRankError,
    InvalidTagError,
    NotInitializedError,
    TruncationError,
)
from repro.mpi.ops import Op
from repro.mpi.pt2pt import ANY_SOURCE, ANY_TAG, PROC_NULL, MatchingEngine
from repro.mpi.runtime import MPIRuntime, MPIWorld
from repro.mpi.status import Request, Status

__all__ = [
    "datatypes",
    "ops",
    "Datatype",
    "Op",
    "Communicator",
    "Group",
    "world_communicator",
    "self_communicator",
    "MPIError",
    "MPI_SUCCESS",
    "InvalidCountError",
    "InvalidRankError",
    "InvalidTagError",
    "NotInitializedError",
    "TruncationError",
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "MatchingEngine",
    "MPIRuntime",
    "MPIWorld",
    "Request",
    "Status",
]
