"""Host-side MPI library: world state and the per-rank runtime.

This module plays the role that OpenMPI (reached through the rsmpi bindings)
plays for the real MPIWasm: it is the *host MPI library* the embedder defers
to.  :class:`MPIWorld` owns the state shared by all ranks of one simulation
(the matching engine, collective coordination, timing bases);
:class:`MPIRuntime` is the per-rank handle exposing the MPI-2.2 subset the
benchmarks use.

Buffers are anything that supports the Python buffer protocol -- NumPy arrays,
``bytes``/``bytearray``/``memoryview`` -- including memoryviews straight into a
Wasm module's linear memory, which is how the embedder achieves its zero-copy
path (§3.5 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.mpi import collectives as coll
from repro.mpi import datatypes as dts
from repro.mpi import ops as mpi_ops
from repro.mpi.algorithms.decision import CollectiveSelector
from repro.mpi.communicator import (
    Communicator,
    Group,
    SplitCoordinator,
    self_communicator,
    world_communicator,
)
from repro.mpi.datatypes import Datatype
from repro.mpi.errors import (
    InvalidCountError,
    InvalidRankError,
    InvalidRootError,
    InvalidTagError,
    MPIError,
    NotInitializedError,
)
from repro.mpi.ops import Op
from repro.mpi.pt2pt import ANY_SOURCE, ANY_TAG, PROC_NULL, MatchingEngine, Message
from repro.mpi.status import Request, Status
from repro.sim.cluster import Cluster
from repro.sim.engine import RankContext, SimEngine
from repro.sim.metrics import MetricsRegistry

BufferLike = Union[bytes, bytearray, memoryview, np.ndarray]


def _readable(buf: BufferLike, nbytes: int, what: str) -> bytes:
    """View the first ``nbytes`` of ``buf`` as immutable bytes."""
    view = memoryview(buf).cast("B")
    if view.nbytes < nbytes:
        raise InvalidCountError(
            f"{what} buffer of {view.nbytes} bytes is smaller than the {nbytes} bytes requested"
        )
    return view[:nbytes].tobytes()


def _writable(buf: BufferLike, nbytes: int, what: str) -> memoryview:
    """Writable byte view over the first ``nbytes`` of ``buf``."""
    view = memoryview(buf).cast("B")
    if view.readonly:
        raise MPIError(f"{what} buffer is read-only")
    if view.nbytes < nbytes:
        raise InvalidCountError(
            f"{what} buffer of {view.nbytes} bytes is smaller than the {nbytes} bytes required"
        )
    return view[:nbytes]


class MPIWorld:
    """State shared by every rank of one simulated MPI job."""

    SHARED_KEY = "mpi.world"

    def __init__(self, cluster: Cluster, engine: SimEngine, metrics: Optional[MetricsRegistry] = None):
        self.cluster = cluster
        self.engine = engine
        self.matching = MatchingEngine(cluster)
        self.metrics = metrics or MetricsRegistry()
        self.nranks = cluster.nranks
        # Collective coordination state keyed by (context_id, purpose, sequence).
        self.split_coordinators: Dict[Tuple[int, int], SplitCoordinator] = {}
        # Per-element combine cost used by reduction collectives.
        self.reduce_compute_per_byte = 0.04e-9
        self.finalized_ranks: set = set()
        # Collective-algorithm selection, shared by all ranks of the job
        # (decision table + REPRO_COLL_ALGO / config overrides).
        self.collectives = CollectiveSelector.from_env()

    @classmethod
    def install(cls, cluster: Cluster, engine: SimEngine, metrics: Optional[MetricsRegistry] = None) -> "MPIWorld":
        """Create a world and store it on the engine's shared blackboard."""
        world = cls(cluster, engine, metrics)
        engine.shared[cls.SHARED_KEY] = world
        return world

    @classmethod
    def of(cls, engine: SimEngine) -> "MPIWorld":
        """Fetch the world previously installed on ``engine``."""
        world = engine.shared.get(cls.SHARED_KEY)
        if world is None:
            raise NotInitializedError("no MPIWorld installed on this simulation engine")
        return world


class MPIRuntime:
    """Per-rank MPI-2.2 runtime (the interface a rank's program calls).

    The embedder holds one of these per Wasm module instance and forwards
    every ``env.MPI_*`` import to it; native benchmark programs call it
    directly.  All ``comm`` arguments default to ``MPI_COMM_WORLD``.
    """

    def __init__(self, world: MPIWorld, ctx: RankContext):
        self.world = world
        self.ctx = ctx
        self.rank_world = ctx.rank
        self.comm_world = world_communicator(world.nranks)
        self.comm_self = self_communicator(ctx.rank)
        self.initialized = False
        self.finalized = False
        # Per-communicator collective sequence numbers (MPI mandates identical
        # collective call order on all ranks, so these stay in agreement).
        self._coll_seq: Dict[int, int] = {}
        self._active_requests: List[Request] = []

    # re-export the wildcard constants for caller convenience
    ANY_SOURCE = ANY_SOURCE
    ANY_TAG = ANY_TAG
    PROC_NULL = PROC_NULL

    # ------------------------------------------------------------ init/finalize

    def init(self) -> None:
        """``MPI_Init``."""
        self.initialized = True

    def finalize(self) -> None:
        """``MPI_Finalize``."""
        self._require_init()
        self.finalized = True
        self.world.finalized_ranks.add(self.rank_world)

    def is_initialized(self) -> bool:
        """``MPI_Initialized``."""
        return self.initialized

    def abort(self, comm: Optional[Communicator] = None, errorcode: int = 1) -> None:
        """``MPI_Abort``: raise, tearing the simulation down."""
        raise MPIError(f"MPI_Abort called on rank {self.rank_world} with code {errorcode}")

    def _require_init(self) -> None:
        if not self.initialized or self.finalized:
            raise NotInitializedError(
                f"MPI call on rank {self.rank_world} outside Init/Finalize window"
            )

    # ----------------------------------------------------------------- queries

    def comm_rank(self, comm: Optional[Communicator] = None) -> int:
        """``MPI_Comm_rank``."""
        self._require_init()
        comm = comm or self.comm_world
        local = comm.rank_of_world(self.rank_world)
        if local is None:
            raise InvalidRankError(f"rank {self.rank_world} is not a member of {comm.name}")
        return local

    def comm_size(self, comm: Optional[Communicator] = None) -> int:
        """``MPI_Comm_size``."""
        self._require_init()
        comm = comm or self.comm_world
        return comm.size

    def wtime(self) -> float:
        """``MPI_Wtime``: the rank's virtual clock in seconds."""
        return self.ctx.now

    def wtick(self) -> float:
        """``MPI_Wtick``: resolution of the virtual clock."""
        return 1e-9

    def get_processor_name(self) -> str:
        """``MPI_Get_processor_name``: the simulated node's name."""
        node = self.world.cluster.node_of(self.rank_world)
        return f"{self.world.cluster.machine.name}-node{node:04d}"

    # ----------------------------------------------------------- point-to-point

    def _validate_pt2pt(self, comm: Communicator, peer: int, tag: int, count: int) -> None:
        if count < 0:
            raise InvalidCountError(f"count must be non-negative, got {count}")
        if tag != ANY_TAG and tag < 0:
            raise InvalidTagError(f"tag must be non-negative, got {tag}")
        if peer not in (ANY_SOURCE, PROC_NULL) and not 0 <= peer < comm.size:
            raise InvalidRankError(f"peer rank {peer} out of range for {comm.name} of size {comm.size}")

    def send(
        self,
        buf: BufferLike,
        count: int,
        datatype: Datatype,
        dest: int,
        tag: int,
        comm: Optional[Communicator] = None,
        extra_overhead: float = 0.0,
    ) -> None:
        """``MPI_Send`` (standard mode; rendezvous above the eager threshold)."""
        self._require_init()
        comm = comm or self.comm_world
        self._validate_pt2pt(comm, dest, tag, count)
        if dest == PROC_NULL:
            return
        nbytes = count * datatype.size
        data = _readable(buf, nbytes, "send")
        self.world.matching.post_send(
            self.ctx,
            self.rank_world,
            comm.world_rank(dest),
            comm.context_id,
            tag,
            data,
            extra_overhead=extra_overhead,
            blocking=True,
        )

    def recv(
        self,
        buf: Optional[BufferLike],
        count: int,
        datatype: Datatype,
        source: int,
        tag: int,
        comm: Optional[Communicator] = None,
        extra_overhead: float = 0.0,
    ) -> Status:
        """``MPI_Recv``."""
        self._require_init()
        comm = comm or self.comm_world
        self._validate_pt2pt(comm, source, tag, count)
        if source == PROC_NULL:
            return Status(source=PROC_NULL, tag=ANY_TAG, count_bytes=0)
        nbytes = count * datatype.size
        view = _writable(buf, nbytes, "recv") if buf is not None and nbytes > 0 else None
        src_world = ANY_SOURCE if source == ANY_SOURCE else comm.world_rank(source)
        status = self.world.matching.recv(
            self.ctx,
            self.rank_world,
            comm.context_id,
            src_world,
            tag,
            view,
            nbytes,
            extra_overhead=extra_overhead,
        )
        # Convert the world-rank source back to a communicator-local rank.
        local_src = comm.rank_of_world(status.source)
        if local_src is not None:
            status.source = local_src
        return status

    def sendrecv(
        self,
        sendbuf: BufferLike,
        sendcount: int,
        sendtype: Datatype,
        dest: int,
        sendtag: int,
        recvbuf: BufferLike,
        recvcount: int,
        recvtype: Datatype,
        source: int,
        recvtag: int,
        comm: Optional[Communicator] = None,
    ) -> Status:
        """``MPI_Sendrecv``: post the send without blocking, then receive."""
        self._require_init()
        comm = comm or self.comm_world
        self._validate_pt2pt(comm, dest, sendtag, sendcount)
        self._validate_pt2pt(comm, source, recvtag, recvcount)
        msg: Optional[Message] = None
        if dest != PROC_NULL:
            nbytes = sendcount * sendtype.size
            data = _readable(sendbuf, nbytes, "send")
            msg = self.world.matching.post_send(
                self.ctx,
                self.rank_world,
                comm.world_rank(dest),
                comm.context_id,
                sendtag,
                data,
                blocking=False,
            )
        status = self.recv(recvbuf, recvcount, recvtype, source, recvtag, comm)
        if msg is not None:
            self.world.matching.wait_send(self.ctx, msg)
        return status

    def isend(
        self,
        buf: BufferLike,
        count: int,
        datatype: Datatype,
        dest: int,
        tag: int,
        comm: Optional[Communicator] = None,
    ) -> Request:
        """``MPI_Isend`` (buffered at post time; completes at wait)."""
        self._require_init()
        comm = comm or self.comm_world
        self._validate_pt2pt(comm, dest, tag, count)
        req = Request(kind="isend")
        if dest == PROC_NULL:
            req.mark_complete()
            return req
        nbytes = count * datatype.size
        data = _readable(buf, nbytes, "send")
        msg = self.world.matching.post_send(
            self.ctx,
            self.rank_world,
            comm.world_rank(dest),
            comm.context_id,
            tag,
            data,
            blocking=False,
        )
        req._pending_message = msg  # type: ignore[attr-defined]
        req.mark_complete(Status(source=dest, tag=tag, count_bytes=nbytes))
        return req

    def irecv(
        self,
        buf: BufferLike,
        count: int,
        datatype: Datatype,
        source: int,
        tag: int,
        comm: Optional[Communicator] = None,
    ) -> Request:
        """``MPI_Irecv``: the matching receive is performed by ``wait``."""
        self._require_init()
        comm = comm or self.comm_world
        self._validate_pt2pt(comm, source, tag, count)
        req = Request(kind="irecv")
        req._recv_args = (buf, count, datatype, source, tag, comm)  # type: ignore[attr-defined]
        self._active_requests.append(req)
        return req

    def wait(self, request: Request) -> Status:
        """``MPI_Wait``."""
        self._require_init()
        if request.kind == "irecv" and not request.complete:
            buf, count, datatype, source, tag, comm = request._recv_args  # type: ignore[attr-defined]
            status = self.recv(buf, count, datatype, source, tag, comm)
            request.mark_complete(status)
        elif not request.complete:
            request.mark_complete()
        if request in self._active_requests:
            self._active_requests.remove(request)
        return request.status

    def waitall(self, requests: List[Request]) -> List[Status]:
        """``MPI_Waitall``."""
        return [self.wait(r) for r in requests]

    def test(self, request: Request) -> Tuple[bool, Status]:
        """``MPI_Test``: non-blocking completion check.

        Completes the request (performing the deferred receive) if a matching
        message is already buffered; never blocks.
        """
        self._require_init()
        if request.complete:
            if request in self._active_requests:
                self._active_requests.remove(request)
            return True, request.status
        if request.kind == "irecv":
            buf, count, datatype, source, tag, comm = request._recv_args  # type: ignore[attr-defined]
            comm = comm or self.comm_world
            # A PROC_NULL receive completes immediately (recv handles it below).
            if source != PROC_NULL:
                src_world = ANY_SOURCE if source == ANY_SOURCE else comm.world_rank(source)
                if not self.world.matching.has_match(self.rank_world, comm.context_id, src_world, tag):
                    return False, Status()
            status = self.recv(buf, count, datatype, source, tag, comm)
            request.mark_complete(status)
            if request in self._active_requests:
                self._active_requests.remove(request)
            return True, status
        request.mark_complete()
        return True, request.status

    #: Bounded busy-wait budget of ``waitany`` before it falls back to a
    #: blocking wait (which integrates with the engine's deadlock detection).
    WAITANY_SPIN_LIMIT = 1024

    def waitany(self, requests: List[Request]) -> Tuple[int, Status]:
        """``MPI_Waitany``: block until one request completes.

        Returns ``(index, status)`` of the completed request, or
        ``(-1, empty status)`` when no request is active (``MPI_UNDEFINED``).
        While no request is ready the rank nudges its virtual clock forward
        one tick and yields, letting other ranks post their sends; after
        :data:`WAITANY_SPIN_LIMIT` fruitless rounds it blocks on the first
        active request so a genuine deadlock is still detected.
        """
        self._require_init()
        active = [i for i, r in enumerate(requests) if r.kind != "null"]
        if not active:
            return -1, Status()
        for _ in range(self.WAITANY_SPIN_LIMIT):
            for i in active:
                flag, status = self.test(requests[i])
                if flag:
                    return i, status
            self.ctx.advance(self.wtick())
            self.ctx.yield_turn()
        first = active[0]
        return first, self.wait(requests[first])

    def testall(self, requests: List[Request]) -> Tuple[bool, List[Status]]:
        """``MPI_Testall``: complete every request if all can complete now.

        Returns ``(True, statuses)`` when every request is complete after the
        call; otherwise ``(False, statuses)`` where only already-completed
        requests carry a meaningful status (the MPI standard leaves statuses
        undefined when ``flag`` is false).
        """
        self._require_init()

        def attempt() -> bool:
            done = True
            for r in requests:
                if not self.test(r)[0]:
                    done = False
            return done

        if not attempt():
            # Give other ranks a chance to post their sends, then re-check
            # (the same courtesy yield iprobe performs).
            self.ctx.yield_turn()
            if not attempt():
                return False, [r.status if r.complete else Status() for r in requests]
        return True, [r.status for r in requests]

    def iprobe(
        self, source: int, tag: int, comm: Optional[Communicator] = None
    ) -> Tuple[bool, Status]:
        """``MPI_Iprobe``: non-blocking check for a matching message."""
        self._require_init()
        comm = comm or self.comm_world
        src_world = ANY_SOURCE if source == ANY_SOURCE else comm.world_rank(source)
        msg = self.world.matching.probe_match(self.rank_world, comm.context_id, src_world, tag)
        if msg is None:
            # Give other ranks a chance to post their sends before returning.
            self.ctx.yield_turn()
            msg = self.world.matching.probe_match(self.rank_world, comm.context_id, src_world, tag)
        if msg is None:
            return False, Status()
        local = comm.rank_of_world(msg.src_world)
        return True, Status(source=local if local is not None else msg.src_world, tag=msg.tag, count_bytes=len(msg.data))

    # -------------------------------------------------------------- collectives

    def _next_seq(self, comm: Communicator) -> int:
        seq = self._coll_seq.get(comm.context_id, 0)
        self._coll_seq[comm.context_id] = seq + 1
        return seq

    def _select_algorithm(
        self, collective: str, comm: Communicator, nbytes: int,
        bytes_moved: Optional[int] = None,
    ) -> str:
        """Pick the algorithm for one collective call and record the counters.

        Selection is a pure function of (collective, message size,
        communicator size) -- every rank computes the same answer, which is
        what keeps the chosen wire protocols in agreement without
        negotiation.  ``bytes_moved`` is the payload passing through *this
        rank's* buffers (defaults to ``nbytes``); e.g. a gather root counts
        ``p`` blocks while a leaf counts one.
        """
        algorithm = self.world.collectives.decide(collective, nbytes, comm.size)
        self.world.metrics.record_collective(
            collective, algorithm, nbytes if bytes_moved is None else bytes_moved
        )
        return algorithm

    def _collective_context(self, comm: Communicator) -> coll.CollectiveContext:
        local_rank = self.comm_rank(comm)

        def send(dst_local: int, tag: int, data: bytes) -> None:
            self.world.matching.post_send(
                self.ctx,
                self.rank_world,
                comm.world_rank(dst_local),
                comm.context_id,
                tag,
                data,
                blocking=False,
            )

        def recv(src_local: int, tag: int, nbytes: int) -> bytes:
            buf = bytearray(nbytes)
            view = memoryview(buf) if nbytes > 0 else None
            self.world.matching.recv(
                self.ctx,
                self.rank_world,
                comm.context_id,
                comm.world_rank(src_local),
                tag,
                view,
                nbytes,
            )
            return bytes(buf)

        def compute(seconds: float) -> None:
            self.ctx.advance(seconds)

        return coll.CollectiveContext(
            rank=local_rank,
            size=comm.size,
            send=send,
            recv=recv,
            compute=compute,
            reduce_compute_per_byte=self.world.reduce_compute_per_byte,
        )

    def barrier(self, comm: Optional[Communicator] = None) -> None:
        """``MPI_Barrier``."""
        self._require_init()
        comm = comm or self.comm_world
        algorithm = self._select_algorithm("barrier", comm, 0)
        coll.barrier(self._collective_context(comm), self._next_seq(comm), algorithm=algorithm)

    def bcast(
        self,
        buf: BufferLike,
        count: int,
        datatype: Datatype,
        root: int,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Bcast``."""
        self._require_init()
        comm = comm or self.comm_world
        self._check_root(comm, root)
        nbytes = count * datatype.size
        view = _writable(buf, nbytes, "bcast") if nbytes > 0 else memoryview(bytearray(0))
        tmp = bytearray(view.tobytes()) if nbytes > 0 else bytearray(0)
        algorithm = self._select_algorithm("bcast", comm, nbytes)
        coll.bcast(
            self._collective_context(comm), tmp, nbytes, root, self._next_seq(comm),
            algorithm=algorithm,
        )
        if nbytes > 0:
            view[:nbytes] = tmp[:nbytes]

    def reduce(
        self,
        sendbuf: BufferLike,
        recvbuf: Optional[BufferLike],
        count: int,
        datatype: Datatype,
        op: Op,
        root: int,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Reduce``."""
        self._require_init()
        comm = comm or self.comm_world
        self._check_root(comm, root)
        nbytes = count * datatype.size
        send_bytes = _readable(sendbuf, nbytes, "reduce send")
        out = bytearray(nbytes) if self.comm_rank(comm) == root else None
        algorithm = self._select_algorithm("reduce", comm, nbytes)
        coll.reduce(
            self._collective_context(comm), send_bytes, out, count, datatype, op, root,
            self._next_seq(comm), algorithm=algorithm,
        )
        if out is not None and recvbuf is not None and nbytes > 0:
            _writable(recvbuf, nbytes, "reduce recv")[:nbytes] = out

    def allreduce(
        self,
        sendbuf: BufferLike,
        recvbuf: BufferLike,
        count: int,
        datatype: Datatype,
        op: Op,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Allreduce``."""
        self._require_init()
        comm = comm or self.comm_world
        nbytes = count * datatype.size
        send_bytes = _readable(sendbuf, nbytes, "allreduce send")
        out = bytearray(nbytes)
        algorithm = self._select_algorithm("allreduce", comm, nbytes)
        coll.allreduce(
            self._collective_context(comm), send_bytes, out, count, datatype, op,
            self._next_seq(comm), algorithm=algorithm,
        )
        if nbytes > 0:
            _writable(recvbuf, nbytes, "allreduce recv")[:nbytes] = out

    def gather(
        self,
        sendbuf: BufferLike,
        sendcount: int,
        sendtype: Datatype,
        recvbuf: Optional[BufferLike],
        recvcount: int,
        recvtype: Datatype,
        root: int,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Gather``."""
        self._require_init()
        comm = comm or self.comm_world
        self._check_root(comm, root)
        nbytes = sendcount * sendtype.size
        send_bytes = _readable(sendbuf, nbytes, "gather send")
        is_root = self.comm_rank(comm) == root
        out = bytearray(nbytes * comm.size) if is_root else None
        algorithm = self._select_algorithm(
            "gather", comm, nbytes,
            bytes_moved=nbytes * comm.size if is_root else nbytes,
        )
        coll.gather(
            self._collective_context(comm), send_bytes, out, nbytes, root,
            self._next_seq(comm), algorithm=algorithm,
        )
        if is_root and recvbuf is not None:
            total = recvcount * recvtype.size * comm.size
            _writable(recvbuf, total, "gather recv")[: nbytes * comm.size] = out

    def scatter(
        self,
        sendbuf: Optional[BufferLike],
        sendcount: int,
        sendtype: Datatype,
        recvbuf: BufferLike,
        recvcount: int,
        recvtype: Datatype,
        root: int,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Scatter``."""
        self._require_init()
        comm = comm or self.comm_world
        self._check_root(comm, root)
        nbytes = recvcount * recvtype.size
        is_root = self.comm_rank(comm) == root
        send_bytes = (
            _readable(sendbuf, nbytes * comm.size, "scatter send") if is_root and sendbuf is not None else None
        )
        out = bytearray(nbytes)
        algorithm = self._select_algorithm(
            "scatter", comm, nbytes,
            bytes_moved=nbytes * comm.size if is_root else nbytes,
        )
        coll.scatter(
            self._collective_context(comm), send_bytes, out, nbytes, root,
            self._next_seq(comm), algorithm=algorithm,
        )
        _writable(recvbuf, nbytes, "scatter recv")[:nbytes] = out

    def allgather(
        self,
        sendbuf: BufferLike,
        sendcount: int,
        sendtype: Datatype,
        recvbuf: BufferLike,
        recvcount: int,
        recvtype: Datatype,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Allgather``."""
        self._require_init()
        comm = comm or self.comm_world
        nbytes = sendcount * sendtype.size
        send_bytes = _readable(sendbuf, nbytes, "allgather send")
        out = bytearray(nbytes * comm.size)
        algorithm = self._select_algorithm("allgather", comm, nbytes, bytes_moved=nbytes * comm.size)
        coll.allgather(
            self._collective_context(comm), send_bytes, out, nbytes,
            self._next_seq(comm), algorithm=algorithm,
        )
        _writable(recvbuf, nbytes * comm.size, "allgather recv")[: nbytes * comm.size] = out

    def alltoall(
        self,
        sendbuf: BufferLike,
        sendcount: int,
        sendtype: Datatype,
        recvbuf: BufferLike,
        recvcount: int,
        recvtype: Datatype,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Alltoall``."""
        self._require_init()
        comm = comm or self.comm_world
        nbytes = sendcount * sendtype.size
        send_bytes = _readable(sendbuf, nbytes * comm.size, "alltoall send")
        out = bytearray(nbytes * comm.size)
        algorithm = self._select_algorithm("alltoall", comm, nbytes, bytes_moved=nbytes * comm.size)
        coll.alltoall(
            self._collective_context(comm), send_bytes, out, nbytes,
            self._next_seq(comm), algorithm=algorithm,
        )
        _writable(recvbuf, nbytes * comm.size, "alltoall recv")[: nbytes * comm.size] = out

    def _check_root(self, comm: Communicator, root: int) -> None:
        if not 0 <= root < comm.size:
            raise InvalidRootError(f"root {root} out of range for {comm.name} of size {comm.size}")

    # ------------------------------------------------------------ communicators

    def comm_dup(self, comm: Optional[Communicator] = None) -> Communicator:
        """``MPI_Comm_dup``: same group, fresh context id (collective)."""
        self._require_init()
        comm = comm or self.comm_world
        # Derive the duplicate's context id deterministically from the parent's
        # id and the per-communicator duplicate count so all ranks agree
        # without additional communication.
        seq = self._next_seq(comm)
        context_id = (comm.context_id + 1) * 10_000 + seq
        # A dup is collective: synchronise so no rank races ahead.
        algorithm = self._select_algorithm("barrier", comm, 0)
        coll.barrier(self._collective_context(comm), seq, algorithm=algorithm)
        return Communicator(comm.group, name=f"{comm.name}.dup", context_id=context_id)

    def comm_split(
        self, comm: Optional[Communicator], color: int, key: int
    ) -> Optional[Communicator]:
        """``MPI_Comm_split`` (collective).  ``color < 0`` yields ``None``."""
        self._require_init()
        comm = comm or self.comm_world
        seq = self._next_seq(comm)
        coord_key = (comm.context_id, seq)
        coord = self.world.split_coordinators.get(coord_key)
        if coord is None:
            coord = SplitCoordinator(comm)
            self.world.split_coordinators[coord_key] = coord
        coord.contribute(self.rank_world, color, key)
        # Synchronise: everyone must have contributed before anyone proceeds.
        algorithm = self._select_algorithm("barrier", comm, 0)
        coll.barrier(self._collective_context(comm), seq, algorithm=algorithm)
        return coord.communicator_for(self.rank_world)

    def comm_free(self, comm: Communicator) -> None:
        """``MPI_Comm_free``."""
        self._require_init()
        comm.freed = True

    # ----------------------------------------------------------------- memory

    def alloc_mem(self, size: int) -> bytearray:
        """``MPI_Alloc_mem`` for native programs: a plain host allocation.

        (For Wasm guests the embedder redirects this to the module's exported
        ``malloc`` -- see §3.7 of the paper and ``repro.core.mpi_imports``.)
        """
        self._require_init()
        if size < 0:
            raise InvalidCountError(f"allocation size must be non-negative, got {size}")
        return bytearray(size)

    def free_mem(self, buf: bytearray) -> None:
        """``MPI_Free_mem`` for native programs (no-op; GC reclaims it)."""
        self._require_init()
