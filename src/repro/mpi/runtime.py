"""Host-side MPI library: world state and the per-rank runtime.

This module plays the role that OpenMPI (reached through the rsmpi bindings)
plays for the real MPIWasm: it is the *host MPI library* the embedder defers
to.  :class:`MPIWorld` owns the state shared by all ranks of one simulation
(the matching engine, collective coordination, timing bases);
:class:`MPIRuntime` is the per-rank handle exposing the MPI-2.2 subset the
benchmarks use.

Buffers are anything that supports the Python buffer protocol -- NumPy arrays,
``bytes``/``bytearray``/``memoryview`` -- including memoryviews straight into a
Wasm module's linear memory, which is how the embedder achieves its zero-copy
path (§3.5 of the paper).

Non-blocking operations (``isend``/``irecv`` and the ``I<collective>``
family) return :class:`~repro.mpi.status.Request` handles whose pending
operations the per-rank *progress engine* advances: every
``test``/``wait``-family call first runs a non-blocking pass over all
outstanding requests (draining rendezvous sends, consuming matched receives,
stepping collective schedules), then blocks -- if it must -- on progress of
*any* of them.  MPI's weak-progress model applies: outstanding operations are
only guaranteed to advance inside MPI calls.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.fault import checkpoint as _checkpoint
from repro.fault import inject as _inject
from repro.mpi import collectives as coll
from repro.obs import trace as _trace
from repro.mpi import datatypes as dts
from repro.mpi import ops as mpi_ops
from repro.mpi.algorithms.decision import CollectiveSelector
from repro.mpi.algorithms.schedule import ScheduleExecutor
from repro.mpi.communicator import (
    Communicator,
    Group,
    SplitCoordinator,
    self_communicator,
    world_communicator,
)
from repro.mpi.datatypes import Datatype
from repro.mpi.errors import (
    InvalidCountError,
    InvalidRankError,
    InvalidRootError,
    InvalidTagError,
    MPIError,
    NotInitializedError,
)
from repro.mpi.ops import Op
from repro.mpi.pt2pt import ANY_SOURCE, ANY_TAG, PROC_NULL, MatchingEngine, Message
from repro.mpi.status import Request, Status
from repro.sim.cluster import Cluster
from repro.sim.engine import RankContext, SimEngine
from repro.sim.metrics import MetricsRegistry

BufferLike = Union[bytes, bytearray, memoryview, np.ndarray]

#: Buffers of *deferred* operations (irecv and the non-blocking collectives)
#: may also be supplied as a zero-argument callable returning the buffer.
#: The embedder uses this to defer guest address translation to the moment
#: bytes actually move: holding a live memoryview into Wasm linear memory for
#: the whole post-to-wait window would pin the underlying buffer and make
#: ``memory.grow`` fail for any guest that allocates during the overlap.
LazyBuffer = Union[BufferLike, "Callable[[], BufferLike]"]


def _supplied(buf):
    """Resolve a :data:`LazyBuffer` to the concrete buffer."""
    return buf() if callable(buf) else buf


def _traced(name: str):
    """Wrap one MPI entry point in a trace span (one per call, per rank).

    The enabled flag is checked before anything else -- including argument
    evaluation for the event -- so a disabled trace costs one module
    attribute read per call.  Spans are stamped with the rank's virtual
    clock on entry and exit; the recorder adds the wall clock.

    The fault-injection hook rides the same decorator: one armed-plan check
    per MPI call covers every entry point by name (``kill_rank`` at the
    N-th ``MPI_Allreduce``, say), and the unarmed hot path pays exactly one
    extra module attribute read.
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(self, *args, **kwargs):
            if _inject.ARMED:
                _inject.ACTIVE.on_mpi_call(self.rank_world, name, self.ctx.now)
            if not _trace.ENABLED:
                return fn(self, *args, **kwargs)
            recorder = _trace.RECORDER
            recorder.begin(name, self.rank_world, self.ctx.now)
            try:
                return fn(self, *args, **kwargs)
            finally:
                recorder.end(self.rank_world, self.ctx.now)
        return wrapper

    return decorate


# --------------------------------------------------------- pending operations
#
# Each active Request carries exactly one of these pending-operation records
# (the request's state-machine payload).  The runtime's progress engine calls
# ``try_progress`` -- which must never block and returns the completion
# Status once the operation finished -- on every outstanding request whenever
# a test/wait-family call runs.  ``wait_patterns`` reports the
# ``(context_id, src_world, tag)`` message patterns the operation is
# currently stalled on, so a blocked rank can be woken by *any* of them.


class _PendingSend:
    """An ``MPI_Isend`` awaiting completion (rendezvous drain).

    Eager sends are buffered by the matching engine at post time and complete
    at the first progress pass; a rendezvous send completes once the receiver
    has consumed it, synchronising the sender's virtual clock with the
    consumption time exactly like ``sendrecv`` does.
    """

    __slots__ = ("msg", "status")

    def __init__(self, msg: Optional[Message], status: Status):
        self.msg = msg
        self.status = status

    def try_progress(self, rt: "MPIRuntime") -> Optional[Status]:
        if self.msg is None or not self.msg.rendezvous:
            return self.status
        if self.msg.consumed:
            rt.ctx.advance_to(self.msg.consumed_time)
            return self.status
        return None

    def wait_patterns(self, rt: "MPIRuntime") -> List[Tuple[int, int, int]]:
        # Nothing to match: the drain wake arrives directly from the receiver
        # when it consumes the rendezvous message.
        return []


class _PendingRecv:
    """An ``MPI_Irecv`` whose matching receive is performed on completion."""

    __slots__ = ("buf", "count", "datatype", "source", "tag", "comm")

    def __init__(self, buf, count, datatype, source, tag, comm):
        self.buf = buf
        self.count = count
        self.datatype = datatype
        self.source = source
        self.tag = tag
        self.comm = comm

    def _src_world(self, rt: "MPIRuntime") -> Tuple["Communicator", int]:
        comm = self.comm or rt.comm_world
        src = ANY_SOURCE if self.source == ANY_SOURCE else comm.world_rank(self.source)
        return comm, src

    def try_progress(self, rt: "MPIRuntime") -> Optional[Status]:
        # A PROC_NULL receive completes immediately with an empty status.
        if self.source == PROC_NULL:
            return Status(source=PROC_NULL, tag=ANY_TAG, count_bytes=0)
        comm, src = self._src_world(rt)
        if not rt.world.matching.has_match(rt.rank_world, comm.context_id, src, self.tag):
            return None
        # Consume straight through the matching engine (the match is buffered,
        # so this never blocks) rather than re-entering the public recv path:
        # its progress loop must not run nested inside a progress pass.  The
        # buffer may be a lazy supplier (guest memory translated on demand).
        nbytes = self.count * self.datatype.size
        target = _supplied(self.buf)
        view = (
            _writable(target, nbytes, "recv")
            if target is not None and nbytes > 0
            else None
        )
        status = rt.world.matching.recv(
            rt.ctx, rt.rank_world, comm.context_id, src, self.tag, view, nbytes
        )
        local_src = comm.rank_of_world(status.source)
        if local_src is not None:
            status.source = local_src
        return status

    def wait_patterns(self, rt: "MPIRuntime") -> List[Tuple[int, int, int]]:
        if self.source == PROC_NULL:
            return []
        comm, src = self._src_world(rt)
        return [(comm.context_id, src, self.tag)]


class _PendingCollective:
    """A non-blocking collective: a schedule executor advanced incrementally.

    The operation has two tails: executing the schedule's steps, and the
    arrival of payload consumed along the way (``executor.data_time``).  It
    counts as complete only once both are behind the rank's clock --
    ``MPI_Test`` before the arrival reports False, and a blocking wait simply
    sleeps the clock forward to it (:meth:`completion_time`); that gap is
    exactly the transfer time a caller can hide behind compute.
    """

    __slots__ = ("executor", "comm")

    def __init__(self, executor: ScheduleExecutor, comm: "Communicator"):
        self.executor = executor
        self.comm = comm

    def try_progress(self, rt: "MPIRuntime") -> Optional[Status]:
        if not self.executor.try_progress():
            return None
        if rt.ctx.now < self.executor.data_time:
            return None  # steps done, but payload still in flight
        return Status()

    def completion_time(self, rt: "MPIRuntime") -> Optional[float]:
        """Earliest time at which time alone makes more progress: completion
        when the schedule is done, or the arrival a data-dependent step is
        stalled on."""
        return self.executor.next_ready_time()

    def wait_patterns(self, rt: "MPIRuntime") -> List[Tuple[int, int, int]]:
        step = self.executor.pending_recv()
        if step is None:
            return []
        return [(self.comm.context_id, self.comm.world_rank(step.peer), step.tag)]


def _readable(buf: BufferLike, nbytes: int, what: str) -> bytes:
    """View the first ``nbytes`` of ``buf`` as immutable bytes."""
    view = memoryview(buf).cast("B")
    if view.nbytes < nbytes:
        raise InvalidCountError(
            f"{what} buffer of {view.nbytes} bytes is smaller than the {nbytes} bytes requested"
        )
    return view[:nbytes].tobytes()


def _writable(buf: BufferLike, nbytes: int, what: str) -> memoryview:
    """Writable byte view over the first ``nbytes`` of ``buf``."""
    view = memoryview(buf).cast("B")
    if view.readonly:
        raise MPIError(f"{what} buffer is read-only")
    if view.nbytes < nbytes:
        raise InvalidCountError(
            f"{what} buffer of {view.nbytes} bytes is smaller than the {nbytes} bytes required"
        )
    return view[:nbytes]


class MPIWorld:
    """State shared by every rank of one simulated MPI job."""

    SHARED_KEY = "mpi.world"

    def __init__(self, cluster: Cluster, engine: SimEngine, metrics: Optional[MetricsRegistry] = None):
        self.cluster = cluster
        self.engine = engine
        self.matching = MatchingEngine(cluster)
        self.metrics = metrics or MetricsRegistry()
        self.nranks = cluster.nranks
        # Collective coordination state keyed by (context_id, purpose, sequence).
        self.split_coordinators: Dict[Tuple[int, int], SplitCoordinator] = {}
        # Per-element combine cost used by reduction collectives.
        self.reduce_compute_per_byte = 0.04e-9
        self.finalized_ranks: set = set()
        # Collective-algorithm selection, shared by all ranks of the job
        # (decision table + REPRO_COLL_ALGO / config overrides).
        self.collectives = CollectiveSelector.from_env()

    @classmethod
    def install(cls, cluster: Cluster, engine: SimEngine, metrics: Optional[MetricsRegistry] = None) -> "MPIWorld":
        """Create a world and store it on the engine's shared blackboard."""
        world = cls(cluster, engine, metrics)
        engine.shared[cls.SHARED_KEY] = world
        return world

    @classmethod
    def of(cls, engine: SimEngine) -> "MPIWorld":
        """Fetch the world previously installed on ``engine``."""
        world = engine.shared.get(cls.SHARED_KEY)
        if world is None:
            raise NotInitializedError("no MPIWorld installed on this simulation engine")
        return world


class MPIRuntime:
    """Per-rank MPI-2.2 runtime (the interface a rank's program calls).

    The embedder holds one of these per Wasm module instance and forwards
    every ``env.MPI_*`` import to it; native benchmark programs call it
    directly.  All ``comm`` arguments default to ``MPI_COMM_WORLD``.
    """

    def __init__(self, world: MPIWorld, ctx: RankContext):
        self.world = world
        self.ctx = ctx
        self.rank_world = ctx.rank
        self.comm_world = world_communicator(world.nranks)
        self.comm_self = self_communicator(ctx.rank)
        self.initialized = False
        self.finalized = False
        # Per-communicator collective sequence numbers (MPI mandates identical
        # collective call order on all ranks, so these stay in agreement).
        self._coll_seq: Dict[int, int] = {}
        # Outstanding (incomplete) requests the progress engine sweeps.
        self._active_requests: List[Request] = []
        self._progressing = False
        if _checkpoint.CAPTURE is not None:
            _checkpoint.CAPTURE.register_runtime(ctx.rank, self)

    # re-export the wildcard constants for caller convenience
    ANY_SOURCE = ANY_SOURCE
    ANY_TAG = ANY_TAG
    PROC_NULL = PROC_NULL

    # ------------------------------------------------------------ init/finalize

    def init(self) -> None:
        """``MPI_Init``."""
        self.initialized = True

    def finalize(self) -> None:
        """``MPI_Finalize``."""
        self._require_init()
        self.finalized = True
        self.world.finalized_ranks.add(self.rank_world)

    def is_initialized(self) -> bool:
        """``MPI_Initialized``."""
        return self.initialized

    def abort(self, comm: Optional[Communicator] = None, errorcode: int = 1) -> None:
        """``MPI_Abort``: raise, tearing the simulation down."""
        raise MPIError(f"MPI_Abort called on rank {self.rank_world} with code {errorcode}")

    def _require_init(self) -> None:
        if not self.initialized or self.finalized:
            raise NotInitializedError(
                f"MPI call on rank {self.rank_world} outside Init/Finalize window"
            )

    # ----------------------------------------------------------------- queries

    def comm_rank(self, comm: Optional[Communicator] = None) -> int:
        """``MPI_Comm_rank``."""
        self._require_init()
        comm = comm or self.comm_world
        local = comm.rank_of_world(self.rank_world)
        if local is None:
            raise InvalidRankError(f"rank {self.rank_world} is not a member of {comm.name}")
        return local

    def comm_size(self, comm: Optional[Communicator] = None) -> int:
        """``MPI_Comm_size``."""
        self._require_init()
        comm = comm or self.comm_world
        return comm.size

    def wtime(self) -> float:
        """``MPI_Wtime``: the rank's virtual clock in seconds."""
        return self.ctx.now

    def wtick(self) -> float:
        """``MPI_Wtick``: resolution of the virtual clock."""
        return 1e-9

    def get_processor_name(self) -> str:
        """``MPI_Get_processor_name``: the simulated node's name."""
        node = self.world.cluster.node_of(self.rank_world)
        return f"{self.world.cluster.machine.name}-node{node:04d}"

    # ----------------------------------------------------------- point-to-point

    def _validate_pt2pt(self, comm: Communicator, peer: int, tag: int, count: int) -> None:
        if count < 0:
            raise InvalidCountError(f"count must be non-negative, got {count}")
        if tag != ANY_TAG and tag < 0:
            raise InvalidTagError(f"tag must be non-negative, got {tag}")
        if peer not in (ANY_SOURCE, PROC_NULL) and not 0 <= peer < comm.size:
            raise InvalidRankError(f"peer rank {peer} out of range for {comm.name} of size {comm.size}")

    @_traced("MPI_Send")
    def send(
        self,
        buf: BufferLike,
        count: int,
        datatype: Datatype,
        dest: int,
        tag: int,
        comm: Optional[Communicator] = None,
        extra_overhead: float = 0.0,
    ) -> None:
        """``MPI_Send`` (standard mode; rendezvous above the eager threshold)."""
        self._require_init()
        comm = comm or self.comm_world
        self._validate_pt2pt(comm, dest, tag, count)
        if dest == PROC_NULL:
            return
        nbytes = count * datatype.size
        data = _readable(buf, nbytes, "send")
        self.world.matching.post_send(
            self.ctx,
            self.rank_world,
            comm.world_rank(dest),
            comm.context_id,
            tag,
            data,
            extra_overhead=extra_overhead,
            blocking=True,
        )

    @_traced("MPI_Recv")
    def recv(
        self,
        buf: Optional[BufferLike],
        count: int,
        datatype: Datatype,
        source: int,
        tag: int,
        comm: Optional[Communicator] = None,
        extra_overhead: float = 0.0,
    ) -> Status:
        """``MPI_Recv``."""
        self._require_init()
        comm = comm or self.comm_world
        self._validate_pt2pt(comm, source, tag, count)
        if source == PROC_NULL:
            return Status(source=PROC_NULL, tag=ANY_TAG, count_bytes=0)
        nbytes = count * datatype.size
        view = _writable(buf, nbytes, "recv") if buf is not None and nbytes > 0 else None
        src_world = ANY_SOURCE if source == ANY_SOURCE else comm.world_rank(source)
        status = self._recv_with_progress(
            comm.context_id, src_world, tag, view, nbytes, extra_overhead=extra_overhead
        )
        # Convert the world-rank source back to a communicator-local rank.
        local_src = comm.rank_of_world(status.source)
        if local_src is not None:
            status.source = local_src
        return status

    def _recv_with_progress(
        self,
        context_id: int,
        src_world: int,
        tag: int,
        view: Optional[memoryview],
        nbytes: int,
        extra_overhead: float = 0.0,
    ) -> Status:
        """Blocking receive with weak progress.

        While the matching message has not arrived, keep advancing every
        outstanding non-blocking request -- a peer may be unable to send our
        message until a schedule of ours posts *its* sends -- and wake on our
        own pattern or on anything an outstanding request is stalled on.
        With no outstanding requests this is exactly a plain blocking receive.
        """
        matching = self.world.matching
        self.progress()
        while not matching.has_match(self.rank_world, context_id, src_world, tag):
            self._await_progress(
                self._active_requests,
                extra_patterns=[(context_id, src_world, tag)],
                reason=f"recv src={src_world} tag={tag} ctx={context_id}",
            )
        return matching.recv(
            self.ctx, self.rank_world, context_id, src_world, tag, view, nbytes,
            extra_overhead=extra_overhead,
        )

    @_traced("MPI_Sendrecv")
    def sendrecv(
        self,
        sendbuf: BufferLike,
        sendcount: int,
        sendtype: Datatype,
        dest: int,
        sendtag: int,
        recvbuf: BufferLike,
        recvcount: int,
        recvtype: Datatype,
        source: int,
        recvtag: int,
        comm: Optional[Communicator] = None,
    ) -> Status:
        """``MPI_Sendrecv``: post the send without blocking, then receive."""
        self._require_init()
        comm = comm or self.comm_world
        self._validate_pt2pt(comm, dest, sendtag, sendcount)
        self._validate_pt2pt(comm, source, recvtag, recvcount)
        msg: Optional[Message] = None
        if dest != PROC_NULL:
            nbytes = sendcount * sendtype.size
            data = _readable(sendbuf, nbytes, "send")
            msg = self.world.matching.post_send(
                self.ctx,
                self.rank_world,
                comm.world_rank(dest),
                comm.context_id,
                sendtag,
                data,
                blocking=False,
            )
        status = self.recv(recvbuf, recvcount, recvtype, source, recvtag, comm)
        if msg is not None:
            self.world.matching.wait_send(self.ctx, msg)
        return status

    @_traced("MPI_Isend")
    def isend(
        self,
        buf: BufferLike,
        count: int,
        datatype: Datatype,
        dest: int,
        tag: int,
        comm: Optional[Communicator] = None,
    ) -> Request:
        """``MPI_Isend`` (buffered at post time; completes at wait/test).

        An eager send completes at the first progress pass; a rendezvous send
        stays active until the receiver drains it, at which point the waiting
        rank's virtual clock advances to the consumption time (the same
        synchronisation ``sendrecv`` performs).
        """
        self._require_init()
        comm = comm or self.comm_world
        self._validate_pt2pt(comm, dest, tag, count)
        req = Request(kind="isend")
        if dest == PROC_NULL:
            req.mark_complete()
            return req
        nbytes = count * datatype.size
        data = _readable(buf, nbytes, "send")
        msg = self.world.matching.post_send(
            self.ctx,
            self.rank_world,
            comm.world_rank(dest),
            comm.context_id,
            tag,
            data,
            blocking=False,
        )
        self._activate(req, _PendingSend(msg, Status(source=dest, tag=tag, count_bytes=nbytes)))
        return req

    @_traced("MPI_Irecv")
    def irecv(
        self,
        buf: LazyBuffer,
        count: int,
        datatype: Datatype,
        source: int,
        tag: int,
        comm: Optional[Communicator] = None,
    ) -> Request:
        """``MPI_Irecv``: the matching receive is performed on completion."""
        self._require_init()
        comm = comm or self.comm_world
        self._validate_pt2pt(comm, source, tag, count)
        req = Request(kind="irecv")
        self._activate(req, _PendingRecv(buf, count, datatype, source, tag, comm))
        return req

    # ---------------------------------------------------------- progress engine

    def _activate(self, request: Request, op) -> None:
        """Attach a pending operation; complete immediately if it already can."""
        request._op = op
        status = op.try_progress(self)
        if status is not None:
            request.mark_complete(status)
        else:
            self._active_requests.append(request)

    def _retire(self, request: Request) -> None:
        if request in self._active_requests:
            self._active_requests.remove(request)

    def progress(self) -> None:
        """One non-blocking pass of the progress engine.

        Advances every outstanding request -- deferred receives, rendezvous
        sends, and non-blocking collective schedules -- as far as buffered
        messages allow.  Every ``test``/``wait``-family call runs this first,
        so any outstanding schedule keeps moving no matter which request the
        caller is actually waiting on.
        """
        if self._progressing:
            return
        self._progressing = True
        try:
            swept = True
            while swept:
                swept = False
                for req in list(self._active_requests):
                    if req.complete or req._op is None:
                        self._retire(req)
                        continue
                    status = req._op.try_progress(self)
                    if status is not None:
                        req.mark_complete(status)
                        self._retire(req)
                        # A completed request may have posted sends that
                        # unblock a sibling: sweep again until a fixpoint.
                        swept = True
        finally:
            self._progressing = False

    def _wait_patterns(self, requests: List[Request]) -> List[Tuple[int, int, int]]:
        """Message patterns any of ``requests`` is currently stalled on."""
        patterns: List[Tuple[int, int, int]] = []
        for req in requests:
            if not req.complete and req._op is not None:
                patterns.extend(req._op.wait_patterns(self))
        return patterns

    def _await_progress(
        self,
        requests: List[Request],
        extra_patterns: Optional[List[Tuple[int, int, int]]] = None,
        reason: str = "",
    ) -> None:
        """One blocking step of the shared wake protocol.

        First yield the execution token (one tick) so every lower-clock peer
        gets to post its sends -- a message that *can* arrive must complete us
        at its true time, not at a later sleep target.  Only if that produced
        nothing: if any watched request completes by time alone (a schedule
        whose steps are done or stalled only on an in-flight arrival), sleep
        the clock to the earliest such point; otherwise block until a message
        matching any watched request's pattern -- or one of the caller's
        ``extra_patterns`` -- can be consumed.  Either way, finish with a
        progress pass.  Callers loop around this re-checking their own
        condition; every blocking primitive (wait, waitany, blocking receive)
        shares this single implementation of the protocol.

        Known approximation: the sleep targets the earliest *watched*
        completion, so a receive whose sender is itself transitively blocked
        (and therefore cannot post during the yield) may be stamped at a
        sibling schedule's arrival time rather than its own, slightly
        inflating that wait.  Removing it would need timer wakes in the
        engine; the sleep is what keeps stalled schedules live.
        """
        patterns = [*(extra_patterns or []), *self._wait_patterns(requests)]
        self.ctx.advance(self.wtick())
        self.ctx.yield_turn()
        self.progress()
        if any(req.complete for req in requests) or any(
            self.world.matching.has_match(self.rank_world, c, s, t) for (c, s, t) in patterns
        ):
            return
        if not self._sleep_until_completion(requests):
            self.world.matching.block_for_any(
                self.ctx,
                self.rank_world,
                # Recollect: the progress pass may have moved a schedule to a
                # different pending receive.
                [*(extra_patterns or []), *self._wait_patterns(requests)],
                reason=reason,
            )
        self.progress()

    @_traced("MPI_Wait")
    def wait(self, request: Request) -> Status:
        """``MPI_Wait``: block until ``request`` completes.

        While blocked, the rank wakes on *any* message one of its outstanding
        requests is waiting for (or on a rendezvous drain), runs a progress
        pass, and re-checks -- so outstanding schedules keep advancing even
        while the caller waits on a different request.
        """
        self._require_init()
        self.progress()
        while not request.complete:
            if request._op is None:
                request.mark_complete()
                break
            # Watch every outstanding request, not just the waited one: a
            # sibling collective stalled on a data-dependent step advances by
            # time alone, and peers may need the sends it will post.
            self._await_progress(
                [request, *self._active_requests], reason=f"wait {request.kind}"
            )
        self._retire(request)
        return request.status

    def _sleep_until_completion(self, requests: List[Request]) -> bool:
        """If any of ``requests`` completes by time alone (its steps are done
        and only payload arrival is outstanding), advance the clock to the
        earliest such completion and return True."""
        times = []
        for req in requests:
            op = req._op
            if req.complete or op is None:
                continue
            when = getattr(op, "completion_time", None)
            if when is not None:
                when = when(self)
                if when is not None:
                    times.append(when)
        if not times:
            return False
        self.ctx.advance_to(min(times))
        return True

    @_traced("MPI_Waitall")
    def waitall(self, requests: List[Request]) -> List[Status]:
        """``MPI_Waitall``."""
        return [self.wait(r) for r in requests]

    def _try_complete(self, request: Request) -> bool:
        """Non-yielding completion attempt (run a progress pass first)."""
        if not request.complete:
            if request._op is None:
                # Inactive kinds (user-constructed requests) complete trivially.
                request.mark_complete()
            else:
                status = request._op.try_progress(self)
                if status is not None:
                    request.mark_complete(status)
        if request.complete:
            self._retire(request)
            return True
        return False

    @_traced("MPI_Test")
    def test(self, request: Request) -> Tuple[bool, Status]:
        """``MPI_Test``: non-blocking completion check.

        Runs a progress pass (completing the request if it can complete now)
        but never blocks.  When the request cannot complete yet, the rank
        nudges its clock one tick and yields the execution token once (the
        same courtesy ``iprobe`` performs) so peers get to post their sends
        -- without it a guest polling ``MPI_Test`` in a loop would starve the
        cooperative scheduler -- and re-checks after the yield.
        """
        self._require_init()
        self.progress()
        if not self._try_complete(request):
            self.ctx.advance(self.wtick())
            self.ctx.yield_turn()
            self.progress()
            if not self._try_complete(request):
                return False, Status()
        return True, request.status

    #: Bounded busy-wait budget of ``waitany`` before it falls back to a
    #: blocking wait (which integrates with the engine's deadlock detection).
    WAITANY_SPIN_LIMIT = 1024

    @_traced("MPI_Waitany")
    def waitany(self, requests: List[Request]) -> Tuple[int, Status]:
        """``MPI_Waitany``: block until one request completes.

        Returns ``(index, status)`` of the completed request, or
        ``(-1, empty status)`` when no request is active (``MPI_UNDEFINED``).
        While no request is ready the rank nudges its virtual clock forward
        one tick and yields, letting other ranks post their sends; after
        :data:`WAITANY_SPIN_LIMIT` fruitless rounds it blocks until *any*
        active request can make progress (so a late-posted sender to any of
        the requests resumes it), which keeps genuine deadlocks detectable.
        """
        self._require_init()
        active = [i for i, r in enumerate(requests) if r.kind != "null"]
        if not active:
            return -1, Status()

        def poll() -> Optional[Tuple[int, Status]]:
            # One progress pass, then non-yielding checks, so a spin round
            # costs exactly one tick and one yield regardless of list length.
            self.progress()
            for i in active:
                if self._try_complete(requests[i]):
                    return i, requests[i].status
            return None

        for _ in range(self.WAITANY_SPIN_LIMIT):
            done = poll()
            if done is not None:
                return done
            self.ctx.advance(self.wtick())
            self.ctx.yield_turn()
        while True:
            done = poll()
            if done is not None:
                return done
            self._await_progress(
                [*(requests[i] for i in active), *self._active_requests],
                reason=f"waitany over {len(active)} request(s)",
            )

    @_traced("MPI_Testall")
    def testall(self, requests: List[Request]) -> Tuple[bool, List[Status]]:
        """``MPI_Testall``: complete every request if all can complete now.

        Returns ``(True, statuses)`` when every request is complete after the
        call; otherwise ``(False, statuses)`` where only already-completed
        requests carry a meaningful status (the MPI standard leaves statuses
        undefined when ``flag`` is false).
        """
        self._require_init()

        def attempt() -> bool:
            self.progress()
            done = True
            for r in requests:
                if not self._try_complete(r):
                    done = False
            return done

        if not attempt():
            # Give other ranks a chance to post their sends, then re-check
            # (the same courtesy yield iprobe performs).
            self.ctx.yield_turn()
            if not attempt():
                return False, [r.status if r.complete else Status() for r in requests]
        return True, [r.status for r in requests]

    def iprobe(
        self, source: int, tag: int, comm: Optional[Communicator] = None
    ) -> Tuple[bool, Status]:
        """``MPI_Iprobe``: non-blocking check for a matching message."""
        self._require_init()
        comm = comm or self.comm_world
        src_world = ANY_SOURCE if source == ANY_SOURCE else comm.world_rank(source)
        msg = self.world.matching.probe_match(self.rank_world, comm.context_id, src_world, tag)
        if msg is None:
            # Give other ranks a chance to post their sends before returning.
            self.ctx.yield_turn()
            msg = self.world.matching.probe_match(self.rank_world, comm.context_id, src_world, tag)
        if msg is None:
            return False, Status()
        local = comm.rank_of_world(msg.src_world)
        return True, Status(source=local if local is not None else msg.src_world, tag=msg.tag, count_bytes=len(msg.data))

    # -------------------------------------------------------------- collectives

    def _next_seq(self, comm: Communicator) -> int:
        seq = self._coll_seq.get(comm.context_id, 0)
        self._coll_seq[comm.context_id] = seq + 1
        return seq

    def _select_algorithm(
        self, collective: str, comm: Communicator, nbytes: int,
        bytes_moved: Optional[int] = None, schedule_only: bool = False,
    ) -> str:
        """Pick the algorithm for one collective call and record the counters.

        Selection is a pure function of (collective, message size,
        communicator size) -- every rank computes the same answer, which is
        what keeps the chosen wire protocols in agreement without
        negotiation.  ``bytes_moved`` is the payload passing through *this
        rank's* buffers (defaults to ``nbytes``); e.g. a gather root counts
        ``p`` blocks while a leaf counts one.

        ``schedule_only`` is set by the non-blocking entry points: if the
        decision (or a forced override) names an algorithm that has not been
        ported to schedules, the nearest schedule-capable one is used -- and
        recorded, so counters always reflect what actually ran.
        """
        algorithm = self.world.collectives.decide(collective, nbytes, comm.size)
        if schedule_only:
            algorithm = coll.schedulable_algorithm(collective, algorithm)
        self.world.metrics.record_collective(
            collective, algorithm, nbytes if bytes_moved is None else bytes_moved
        )
        if _trace.ENABLED:
            _trace.RECORDER.instant(
                "coll.algorithm", self.rank_world, self.ctx.now,
                args={"collective": collective, "algorithm": algorithm,
                      "nbytes": int(nbytes), "comm_size": comm.size},
            )
        return algorithm

    def _start_collective(
        self,
        kind: str,
        comm: Communicator,
        schedule,
        buffers,
        datatype: Optional[Datatype] = None,
        op: Optional[Op] = None,
        finalize=None,
    ) -> Request:
        """Create the request for one non-blocking collective and kick it off.

        The first progress pass posts the schedule's initial sends right away
        (so peers still running their blocking counterparts can proceed) and
        may complete trivial schedules (single rank, zero payload) on the
        spot.  ``finalize`` runs exactly once, at completion, to copy results
        from the schedule's working buffers into the caller's memory.
        """
        executor = ScheduleExecutor(
            self._collective_context(comm), schedule, buffers, datatype, op,
            on_complete=finalize,
        )
        request = Request(kind=kind)
        self._activate(request, _PendingCollective(executor, comm))
        return request

    def _collective_context(self, comm: Communicator) -> coll.CollectiveContext:
        local_rank = self.comm_rank(comm)

        def send(dst_local: int, tag: int, data: bytes) -> None:
            self.world.matching.post_send(
                self.ctx,
                self.rank_world,
                comm.world_rank(dst_local),
                comm.context_id,
                tag,
                data,
                blocking=False,
            )

        def recv(src_local: int, tag: int, nbytes: int) -> bytes:
            buf = bytearray(nbytes)
            view = memoryview(buf) if nbytes > 0 else None
            # Weak progress while blocked inside a blocking collective, too:
            # an outstanding non-blocking schedule may owe a peer the very
            # send that lets it reach its part of this collective.
            self._recv_with_progress(
                comm.context_id, comm.world_rank(src_local), tag, view, nbytes
            )
            return bytes(buf)

        def compute(seconds: float) -> None:
            self.ctx.advance(seconds)

        def probe(src_local: int, tag: int) -> bool:
            return self.world.matching.has_match(
                self.rank_world, comm.context_id, comm.world_rank(src_local), tag
            )

        def recv_nb(src_local: int, tag: int, nbytes: int):
            buf = bytearray(nbytes)
            view = memoryview(buf) if nbytes > 0 else None
            out = self.world.matching.consume_nowait(
                self.ctx, self.rank_world, comm.context_id,
                comm.world_rank(src_local), tag, view, nbytes,
            )
            if out is None:
                return None
            _status, arrival = out
            return bytes(buf), arrival

        return coll.CollectiveContext(
            rank=local_rank,
            size=comm.size,
            send=send,
            recv=recv,
            compute=compute,
            reduce_compute_per_byte=self.world.reduce_compute_per_byte,
            probe=probe,
            recv_nb=recv_nb,
            now=lambda: self.ctx.now,
            advance_to=self.ctx.advance_to,
            world_rank=self.rank_world,
        )

    @_traced("MPI_Barrier")
    def barrier(self, comm: Optional[Communicator] = None) -> None:
        """``MPI_Barrier``."""
        self._require_init()
        comm = comm or self.comm_world
        algorithm = self._select_algorithm("barrier", comm, 0)
        coll.barrier(self._collective_context(comm), self._next_seq(comm), algorithm=algorithm)

    @_traced("MPI_Bcast")
    def bcast(
        self,
        buf: BufferLike,
        count: int,
        datatype: Datatype,
        root: int,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Bcast``."""
        self._require_init()
        comm = comm or self.comm_world
        self._check_root(comm, root)
        nbytes = count * datatype.size
        view = _writable(buf, nbytes, "bcast") if nbytes > 0 else memoryview(bytearray(0))
        tmp = bytearray(view.tobytes()) if nbytes > 0 else bytearray(0)
        algorithm = self._select_algorithm("bcast", comm, nbytes)
        coll.bcast(
            self._collective_context(comm), tmp, nbytes, root, self._next_seq(comm),
            algorithm=algorithm,
        )
        if nbytes > 0:
            view[:nbytes] = tmp[:nbytes]

    @_traced("MPI_Reduce")
    def reduce(
        self,
        sendbuf: BufferLike,
        recvbuf: Optional[BufferLike],
        count: int,
        datatype: Datatype,
        op: Op,
        root: int,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Reduce``."""
        self._require_init()
        comm = comm or self.comm_world
        self._check_root(comm, root)
        nbytes = count * datatype.size
        send_bytes = _readable(sendbuf, nbytes, "reduce send")
        out = bytearray(nbytes) if self.comm_rank(comm) == root else None
        algorithm = self._select_algorithm("reduce", comm, nbytes)
        coll.reduce(
            self._collective_context(comm), send_bytes, out, count, datatype, op, root,
            self._next_seq(comm), algorithm=algorithm,
        )
        if out is not None and recvbuf is not None and nbytes > 0:
            _writable(recvbuf, nbytes, "reduce recv")[:nbytes] = out

    @_traced("MPI_Allreduce")
    def allreduce(
        self,
        sendbuf: BufferLike,
        recvbuf: BufferLike,
        count: int,
        datatype: Datatype,
        op: Op,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Allreduce``."""
        self._require_init()
        comm = comm or self.comm_world
        nbytes = count * datatype.size
        send_bytes = _readable(sendbuf, nbytes, "allreduce send")
        out = bytearray(nbytes)
        algorithm = self._select_algorithm("allreduce", comm, nbytes)
        coll.allreduce(
            self._collective_context(comm), send_bytes, out, count, datatype, op,
            self._next_seq(comm), algorithm=algorithm,
        )
        if nbytes > 0:
            _writable(recvbuf, nbytes, "allreduce recv")[:nbytes] = out

    @_traced("MPI_Gather")
    def gather(
        self,
        sendbuf: BufferLike,
        sendcount: int,
        sendtype: Datatype,
        recvbuf: Optional[BufferLike],
        recvcount: int,
        recvtype: Datatype,
        root: int,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Gather``."""
        self._require_init()
        comm = comm or self.comm_world
        self._check_root(comm, root)
        nbytes = sendcount * sendtype.size
        send_bytes = _readable(sendbuf, nbytes, "gather send")
        is_root = self.comm_rank(comm) == root
        out = bytearray(nbytes * comm.size) if is_root else None
        algorithm = self._select_algorithm(
            "gather", comm, nbytes,
            bytes_moved=nbytes * comm.size if is_root else nbytes,
        )
        coll.gather(
            self._collective_context(comm), send_bytes, out, nbytes, root,
            self._next_seq(comm), algorithm=algorithm,
        )
        if is_root and recvbuf is not None:
            total = recvcount * recvtype.size * comm.size
            _writable(recvbuf, total, "gather recv")[: nbytes * comm.size] = out

    @_traced("MPI_Scatter")
    def scatter(
        self,
        sendbuf: Optional[BufferLike],
        sendcount: int,
        sendtype: Datatype,
        recvbuf: BufferLike,
        recvcount: int,
        recvtype: Datatype,
        root: int,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Scatter``."""
        self._require_init()
        comm = comm or self.comm_world
        self._check_root(comm, root)
        nbytes = recvcount * recvtype.size
        is_root = self.comm_rank(comm) == root
        send_bytes = (
            _readable(sendbuf, nbytes * comm.size, "scatter send") if is_root and sendbuf is not None else None
        )
        out = bytearray(nbytes)
        algorithm = self._select_algorithm(
            "scatter", comm, nbytes,
            bytes_moved=nbytes * comm.size if is_root else nbytes,
        )
        coll.scatter(
            self._collective_context(comm), send_bytes, out, nbytes, root,
            self._next_seq(comm), algorithm=algorithm,
        )
        _writable(recvbuf, nbytes, "scatter recv")[:nbytes] = out

    @_traced("MPI_Allgather")
    def allgather(
        self,
        sendbuf: BufferLike,
        sendcount: int,
        sendtype: Datatype,
        recvbuf: BufferLike,
        recvcount: int,
        recvtype: Datatype,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Allgather``."""
        self._require_init()
        comm = comm or self.comm_world
        nbytes = sendcount * sendtype.size
        send_bytes = _readable(sendbuf, nbytes, "allgather send")
        out = bytearray(nbytes * comm.size)
        algorithm = self._select_algorithm("allgather", comm, nbytes, bytes_moved=nbytes * comm.size)
        coll.allgather(
            self._collective_context(comm), send_bytes, out, nbytes,
            self._next_seq(comm), algorithm=algorithm,
        )
        _writable(recvbuf, nbytes * comm.size, "allgather recv")[: nbytes * comm.size] = out

    @_traced("MPI_Alltoall")
    def alltoall(
        self,
        sendbuf: BufferLike,
        sendcount: int,
        sendtype: Datatype,
        recvbuf: BufferLike,
        recvcount: int,
        recvtype: Datatype,
        comm: Optional[Communicator] = None,
    ) -> None:
        """``MPI_Alltoall``."""
        self._require_init()
        comm = comm or self.comm_world
        nbytes = sendcount * sendtype.size
        send_bytes = _readable(sendbuf, nbytes * comm.size, "alltoall send")
        out = bytearray(nbytes * comm.size)
        algorithm = self._select_algorithm("alltoall", comm, nbytes, bytes_moved=nbytes * comm.size)
        coll.alltoall(
            self._collective_context(comm), send_bytes, out, nbytes,
            self._next_seq(comm), algorithm=algorithm,
        )
        _writable(recvbuf, nbytes * comm.size, "alltoall recv")[: nbytes * comm.size] = out

    def _check_root(self, comm: Communicator, root: int) -> None:
        if not 0 <= root < comm.size:
            raise InvalidRootError(f"root {root} out of range for {comm.name} of size {comm.size}")

    # ------------------------------------------------- non-blocking collectives
    #
    # Every ``I<collective>`` selects its algorithm through the same decision
    # table as the blocking counterpart, builds the same schedule the blocking
    # path executes, and returns a Request the progress engine advances from
    # ``test``/``wait``-family calls.  Results land in the caller's buffers at
    # completion time, so communication overlaps any compute between the post
    # and the wait.

    @_traced("MPI_Ibarrier")
    def ibarrier(self, comm: Optional[Communicator] = None) -> Request:
        """``MPI_Ibarrier``."""
        self._require_init()
        comm = comm or self.comm_world
        algorithm = self._select_algorithm("barrier", comm, 0, schedule_only=True)
        schedule = coll.barrier_schedule(
            algorithm, self.comm_rank(comm), comm.size, self._next_seq(comm)
        )
        return self._start_collective("ibarrier", comm, schedule, {})

    @_traced("MPI_Ibcast")
    def ibcast(
        self,
        buf: LazyBuffer,
        count: int,
        datatype: Datatype,
        root: int,
        comm: Optional[Communicator] = None,
    ) -> Request:
        """``MPI_Ibcast``."""
        self._require_init()
        comm = comm or self.comm_world
        self._check_root(comm, root)
        nbytes = count * datatype.size
        # Buffers are materialised transiently (and again at completion), so
        # no view into guest memory outlives this call -- see LazyBuffer.
        data = (
            bytearray(_writable(_supplied(buf), nbytes, "bcast").tobytes())
            if nbytes > 0
            else bytearray(0)
        )
        algorithm = self._select_algorithm("bcast", comm, nbytes, schedule_only=True)
        schedule = coll.bcast_schedule(
            algorithm, self.comm_rank(comm), comm.size, nbytes, root, self._next_seq(comm)
        )

        def finalize(buffers) -> None:
            if nbytes > 0:
                _writable(_supplied(buf), nbytes, "bcast")[:nbytes] = buffers["data"][:nbytes]

        return self._start_collective("ibcast", comm, schedule, {"data": data}, finalize=finalize)

    @_traced("MPI_Iallreduce")
    def iallreduce(
        self,
        sendbuf: LazyBuffer,
        recvbuf: LazyBuffer,
        count: int,
        datatype: Datatype,
        op: Op,
        comm: Optional[Communicator] = None,
    ) -> Request:
        """``MPI_Iallreduce``."""
        self._require_init()
        comm = comm or self.comm_world
        nbytes = count * datatype.size
        send_bytes = _readable(_supplied(sendbuf), nbytes, "allreduce send")
        if nbytes > 0:
            _writable(_supplied(recvbuf), nbytes, "allreduce recv")  # validate early
        algorithm = self._select_algorithm("allreduce", comm, nbytes, schedule_only=True)
        schedule = coll.allreduce_schedule(
            algorithm, self.comm_rank(comm), comm.size, count, datatype.size, self._next_seq(comm)
        )

        def finalize(buffers) -> None:
            if nbytes > 0:
                _writable(_supplied(recvbuf), nbytes, "allreduce recv")[:nbytes] = (
                    buffers["acc"][:nbytes]
                )

        return self._start_collective(
            "iallreduce", comm, schedule, {"acc": bytearray(send_bytes)},
            datatype=datatype, op=op, finalize=finalize,
        )

    @_traced("MPI_Iallgather")
    def iallgather(
        self,
        sendbuf: LazyBuffer,
        sendcount: int,
        sendtype: Datatype,
        recvbuf: LazyBuffer,
        recvcount: int,
        recvtype: Datatype,
        comm: Optional[Communicator] = None,
    ) -> Request:
        """``MPI_Iallgather``."""
        self._require_init()
        comm = comm or self.comm_world
        nbytes = sendcount * sendtype.size
        total = nbytes * comm.size
        send_bytes = _readable(_supplied(sendbuf), nbytes, "allgather send")
        if total > 0:
            _writable(_supplied(recvbuf), total, "allgather recv")  # validate early
        algorithm = self._select_algorithm(
            "allgather", comm, nbytes, bytes_moved=total, schedule_only=True
        )
        schedule = coll.allgather_schedule(
            algorithm, self.comm_rank(comm), comm.size, nbytes, self._next_seq(comm)
        )

        def finalize(buffers) -> None:
            if total > 0:
                _writable(_supplied(recvbuf), total, "allgather recv")[:total] = (
                    buffers["recv"][:total]
                )

        return self._start_collective(
            "iallgather", comm, schedule,
            {"send": bytearray(send_bytes), "recv": bytearray(total)},
            finalize=finalize,
        )

    @_traced("MPI_Ialltoall")
    def ialltoall(
        self,
        sendbuf: LazyBuffer,
        sendcount: int,
        sendtype: Datatype,
        recvbuf: LazyBuffer,
        recvcount: int,
        recvtype: Datatype,
        comm: Optional[Communicator] = None,
    ) -> Request:
        """``MPI_Ialltoall``."""
        self._require_init()
        comm = comm or self.comm_world
        nbytes = sendcount * sendtype.size
        total = nbytes * comm.size
        send_bytes = _readable(_supplied(sendbuf), total, "alltoall send")
        if total > 0:
            _writable(_supplied(recvbuf), total, "alltoall recv")  # validate early
        algorithm = self._select_algorithm(
            "alltoall", comm, nbytes, bytes_moved=total, schedule_only=True
        )
        schedule = coll.alltoall_schedule(
            algorithm, self.comm_rank(comm), comm.size, nbytes, self._next_seq(comm)
        )

        def finalize(buffers) -> None:
            if total > 0:
                _writable(_supplied(recvbuf), total, "alltoall recv")[:total] = (
                    buffers["recv"][:total]
                )

        return self._start_collective(
            "ialltoall", comm, schedule,
            {"send": bytearray(send_bytes), "recv": bytearray(total)},
            finalize=finalize,
        )

    # ------------------------------------------------------------ communicators

    @_traced("MPI_Comm_dup")
    def comm_dup(self, comm: Optional[Communicator] = None) -> Communicator:
        """``MPI_Comm_dup``: same group, fresh context id (collective)."""
        self._require_init()
        comm = comm or self.comm_world
        # Derive the duplicate's context id deterministically from the parent's
        # id and the per-communicator duplicate count so all ranks agree
        # without additional communication.
        seq = self._next_seq(comm)
        context_id = (comm.context_id + 1) * 10_000 + seq
        # A dup is collective: synchronise so no rank races ahead.
        algorithm = self._select_algorithm("barrier", comm, 0)
        coll.barrier(self._collective_context(comm), seq, algorithm=algorithm)
        return Communicator(comm.group, name=f"{comm.name}.dup", context_id=context_id)

    @_traced("MPI_Comm_split")
    def comm_split(
        self, comm: Optional[Communicator], color: int, key: int
    ) -> Optional[Communicator]:
        """``MPI_Comm_split`` (collective).  ``color < 0`` yields ``None``."""
        self._require_init()
        comm = comm or self.comm_world
        seq = self._next_seq(comm)
        coord_key = (comm.context_id, seq)
        coord = self.world.split_coordinators.get(coord_key)
        if coord is None:
            coord = SplitCoordinator(comm)
            self.world.split_coordinators[coord_key] = coord
        coord.contribute(self.rank_world, color, key)
        # Synchronise: everyone must have contributed before anyone proceeds.
        algorithm = self._select_algorithm("barrier", comm, 0)
        coll.barrier(self._collective_context(comm), seq, algorithm=algorithm)
        return coord.communicator_for(self.rank_world)

    def comm_free(self, comm: Communicator) -> None:
        """``MPI_Comm_free``."""
        self._require_init()
        comm.freed = True

    # ----------------------------------------------------------------- memory

    def alloc_mem(self, size: int) -> bytearray:
        """``MPI_Alloc_mem`` for native programs: a plain host allocation.

        (For Wasm guests the embedder redirects this to the module's exported
        ``malloc`` -- see §3.7 of the paper and ``repro.core.mpi_imports``.)
        """
        self._require_init()
        if size < 0:
            raise InvalidCountError(f"allocation size must be non-negative, got {size}")
        return bytearray(size)

    def free_mem(self, buf: bytearray) -> None:
        """``MPI_Free_mem`` for native programs (no-op; GC reclaims it)."""
        self._require_init()
