"""Unified registry subsystem: one discovery/registration mechanism for every
extension point of the embedder.

Before this module each pluggable axis had its own hand-rolled dict with its
own registration idiom: compiler back-ends (``repro.wasm.compilers.base``),
machine presets (``repro.sim.machines``), benchmarks
(``repro.benchmarks_suite.registry``), collective algorithms
(``repro.mpi.algorithms.registry``) and experiment drivers
(``repro.harness.experiments``).  They now all share :class:`Registry`:

* **one decorator-based registration mechanism** (``@register_backend``,
  ``@register_machine``, ``@register_benchmark``, ``@register_algorithm``,
  ``@register_experiment``, ``@register_mode``) usable by third-party code
  without editing core modules,
* **helpful lookup failures**: an unknown name raises
  :class:`UnknownEntryError` (a ``KeyError`` subclass) that names the
  registry and lists everything registered, instead of a bare ``KeyError``,
* **explicit override semantics**: re-registering a name raises
  :class:`DuplicateEntryError` unless ``override=True`` is passed,
* **lazy population**: each registry knows which module(s) provide the
  bundled entries and imports them on first lookup, so ``repro.api`` stays
  cheap to import.

This module is a *leaf* (stdlib imports only); the provider modules import it
and register themselves, never the other way round.
"""

from __future__ import annotations

import importlib
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

_MISSING = object()


class UnknownEntryError(KeyError):
    """Lookup of a name that is not registered; lists what is."""

    def __init__(self, kind: str, name: str, known: Sequence[str]):
        self.kind = kind
        self.name = name
        self.known = list(known)
        super().__init__(f"unknown {kind} {name!r}; known: {self.known}")


class DuplicateEntryError(ValueError):
    """Registration of a name that is already taken (without ``override``)."""


class Registry:
    """A named mapping of string keys to registered objects.

    ``entries`` is the live backing dict -- legacy module-level tables
    (``PRESETS``, ``EXPERIMENT_DRIVERS``, ...) alias it so existing imports
    keep observing registrations made through the new mechanism.
    """

    def __init__(self, kind: str, *, populate: Sequence[str] = ()):
        self.kind = kind
        self._populate_modules = tuple(populate)
        self._populated = not self._populate_modules
        self._populating = False
        self.entries: Dict[str, Any] = {}

    # ----------------------------------------------------------- population

    def _ensure_populated(self) -> None:
        if self._populated or self._populating:
            return
        # The in-progress guard stops recursion when a provider module
        # performs lookups while it imports; the success flag is only set
        # after every provider imported cleanly, so a failed import is
        # retried (and its real error re-raised) on the next lookup instead
        # of leaving the registry permanently, silently empty.
        self._populating = True
        try:
            for module in self._populate_modules:
                importlib.import_module(module)
        finally:
            self._populating = False
        self._populated = True

    # --------------------------------------------------------- registration

    def register(self, name: Optional[str] = None, obj: Any = _MISSING, *,
                 override: bool = False):
        """Register ``obj`` under ``name``; usable directly or as a decorator.

        * ``registry.register("x", obj=thing)`` -- direct registration,
        * ``@registry.register("x")`` -- decorator form,
        * ``@registry.register()`` -- decorator form keyed on the target's
          ``name`` attribute (falling back to ``__name__``).
        """
        def add(target: Any, key: Optional[str]) -> Any:
            key = key or getattr(target, "name", None) or getattr(target, "__name__", None)
            if not isinstance(key, str) or not key:
                raise ValueError(
                    f"cannot infer a registration name for {target!r}; pass one explicitly"
                )
            if not override and key in self.entries:
                raise DuplicateEntryError(
                    f"{self.kind} {key!r} is already registered; "
                    f"pass override=True to replace it"
                )
            self.entries[key] = target
            return target

        if obj is not _MISSING:
            return add(obj, name)

        def decorator(target: Any) -> Any:
            return add(target, name)

        return decorator

    def unregister(self, name: str) -> None:
        """Remove a registration (idempotent)."""
        self.entries.pop(name, None)

    # --------------------------------------------------------------- lookup

    def get(self, name: str) -> Any:
        """Registered object for ``name``; :class:`UnknownEntryError` if absent."""
        self._ensure_populated()
        try:
            return self.entries[name]
        except KeyError:
            raise UnknownEntryError(self.kind, name, self.names()) from None

    def names(self) -> List[str]:
        """Sorted names of every registered entry."""
        self._ensure_populated()
        return sorted(self.entries)

    def items(self) -> List[Tuple[str, Any]]:
        """(name, object) pairs, sorted by name."""
        self._ensure_populated()
        return sorted(self.entries.items())

    def contains(self, name: str) -> bool:
        """Whether ``name`` is registered."""
        self._ensure_populated()
        return name in self.entries

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.contains(name)

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_populated()
        return len(self.entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {len(self.entries)} entries)"


# ------------------------------------------------------- the named registries

#: Compiler back-ends (instances of ``repro.wasm.compilers.base.CompilerBackend``).
BACKENDS = Registry("compiler backend", populate=("repro.wasm.compilers",))

#: Machine presets (``repro.sim.machines.MachinePreset`` instances).
MACHINES = Registry("machine preset", populate=("repro.sim.machines",))

#: Guest benchmarks (zero-argument factories returning a ``GuestProgram``).
BENCHMARKS = Registry("benchmark", populate=("repro.benchmarks_suite.registry",))

#: Collective algorithms, keyed ``"<collective>:<algorithm>"``.
ALGORITHMS = Registry("collective algorithm", populate=("repro.mpi.algorithms",))

#: Experiment drivers (one callable per table/figure of the paper).
EXPERIMENTS = Registry("experiment driver", populate=("repro.harness.experiments",))

#: Execution modes for ``Session.run`` ("wasm", "native", ...).
MODES = Registry("execution mode",
                 populate=("repro.api.session", "repro.baselines.native"))


# ------------------------------------------------------- typed entry points


def register_backend(backend: Any = None, *, name: Optional[str] = None,
                     override: bool = False):
    """Register a compiler back-end instance (keyed on its ``name`` attribute).

    Usable directly (``register_backend(MyBackend())``) or as a class
    decorator, in which case the class is instantiated once and the instance
    registered -- the shape third-party back-ends are expected to use.
    """
    def add(target: Any) -> Any:
        instance = target() if isinstance(target, type) else target
        BACKENDS.register(name or getattr(instance, "name", None),
                          obj=instance, override=override)
        return target

    if backend is None:
        return add
    return add(backend)


def register_machine(preset: Any = None, *, name: Optional[str] = None,
                     override: bool = False):
    """Register a machine preset (an instance, or a factory used as decorator)."""
    def add(target: Any) -> Any:
        instance = target() if callable(target) else target
        MACHINES.register(name or getattr(instance, "name", None),
                          obj=instance, override=override)
        return target

    if preset is None:
        return add
    return add(preset)


def register_benchmark(name: str, *, override: bool = False):
    """Decorator registering a zero-argument ``GuestProgram`` factory."""
    return BENCHMARKS.register(name, override=override)


def register_experiment(name: str, *, override: bool = False):
    """Decorator registering an experiment (table/figure) driver callable."""
    return EXPERIMENTS.register(name, override=override)


def register_mode(name: str, *, override: bool = False):
    """Decorator registering a ``Session.run`` execution-mode runner."""
    return MODES.register(name, override=override)


def algorithm_key(collective: str, name: str) -> str:
    """Composite key the collective-algorithm registry uses."""
    return f"{collective}:{name}"


def register_algorithm(collective: str, name: str, *, override: bool = False):
    """Decorator registering a collective algorithm implementation.

    Same contract as ``repro.mpi.algorithms.registry.register`` (which
    delegates here): the collective must be one of the dispatched ones.
    """
    from repro.mpi.algorithms import registry as mpi_registry

    if collective not in mpi_registry.COLLECTIVES:
        raise ValueError(
            f"unknown collective {collective!r}; known: {mpi_registry.COLLECTIVES}"
        )
    return ALGORITHMS.register(algorithm_key(collective, name), override=override)


__all__ = [
    "Registry",
    "UnknownEntryError",
    "DuplicateEntryError",
    "BACKENDS",
    "MACHINES",
    "BENCHMARKS",
    "ALGORITHMS",
    "EXPERIMENTS",
    "MODES",
    "register_backend",
    "register_machine",
    "register_benchmark",
    "register_algorithm",
    "register_experiment",
    "register_mode",
    "algorithm_key",
]
