"""``repro.api`` -- the stable, versioned public surface of the reproduction.

This package is the programmatic front door HPC launchers (and the bundled
CLIs) use::

    from repro.api import Session

    with Session(machine="graviton2", backend="cranelift") as session:
        job = session.run("pingpong", np=2)       # compiles once, warm after
        result = session.campaign(spec, workers=4)

Three subsystems make up the surface:

* :mod:`repro.api.session` -- warm :class:`Session` objects with cross-job
  artifact reuse and context-manager lifecycle,
* :mod:`repro.api.registry` -- one decorator-based registration mechanism for
  every extension point (back-ends, machines, benchmarks, collective
  algorithms, experiment drivers, execution modes),
* :mod:`repro.api.config` -- layered :class:`ResolvedConfig` (defaults <
  config file < ``REPRO_*`` environment < kwargs) with recorded provenance.

The static-analysis layer (:mod:`repro.analysis`) is re-exported here too:
the :class:`Finding`/:class:`Severity`/:class:`Report` findings model plus
:func:`check_schedules` / :func:`check_schedule_point` / :func:`schedule_sweep`
(cross-rank schedule verification) and :func:`verify_lowered_artifact`
(lowered-IR artifact verification).

The fault-tolerance subsystem (:mod:`repro.fault`) is re-exported here:
:func:`capture_checkpoint` / :func:`load_checkpoint` /
:func:`resume_from_checkpoint` for checkpoint/restart, :class:`FaultPlan` /
:func:`inject_faults` for deterministic fault injection,
:func:`run_with_recovery` for restart-level recovery, and :class:`Journal`
for the crash-safe job journal behind resumable campaigns and the serve
daemon (:func:`verify_checkpoint` statically checks snapshot documents).

The observability subsystem (:mod:`repro.obs`) is re-exported here as well:
:func:`tracing` / :class:`TraceRecorder` record per-rank MPI event traces,
:func:`to_chrome_trace` / :func:`merge_traces` / :func:`write_chrome_trace`
export Perfetto-loadable timelines, and :func:`profiling` /
:class:`InterpreterProfiler` drive the interpreter's sampled profiling hooks.

``__all__`` is the compatibility contract: it is asserted against
``docs/api_manifest.json`` by the CI ``api-stability`` job, and
``docs/API.md`` (regenerate with ``python -m repro.api.docgen``) documents
every name.  :data:`DEPRECATIONS` maps superseded entry points to their
replacements; the old paths keep working behind ``DeprecationWarning`` shims.

Attribute access is lazy (PEP 562) so that low-level modules may import
``repro.api.registry`` without dragging the whole execution stack in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

#: Version of the public API contract (bumped on breaking surface changes).
API_VERSION = "1.0"

#: Deprecated entry point -> its replacement on the public surface.
DEPRECATIONS = {
    "repro.core.launcher.run_wasm": "repro.api.Session.run(app, nranks, mode='wasm')",
    "repro.core.launcher.run_native": "repro.api.Session.run(app, nranks, mode='native')",
    "repro.core.embedder.MPIWasm(...)": "repro.api.Session (owns embedders and the artifact store)",
    "repro.core.cache": "repro.wasm.compilers.cache (or Session's artifact store)",
}

#: name -> submodule that defines it (resolved lazily on first access).
_EXPORT_SOURCES = {
    "Session": "session",
    "JobResult": "session",
    "run": "session",
    "current_session": "session",
    "default_session": "session",
    "use_session": "session",
    "resolve_machine": "session",
    "ResolvedConfig": "config",
    "Registry": "registry",
    "UnknownEntryError": "registry",
    "DuplicateEntryError": "registry",
    "BACKENDS": "registry",
    "MACHINES": "registry",
    "BENCHMARKS": "registry",
    "ALGORITHMS": "registry",
    "EXPERIMENTS": "registry",
    "MODES": "registry",
    "register_backend": "registry",
    "register_machine": "registry",
    "register_benchmark": "registry",
    "register_algorithm": "registry",
    "register_experiment": "registry",
    "register_mode": "registry",
    # Observability (repro.obs): absolute module paths, resolved the same way.
    "TraceRecorder": "repro.obs",
    "tracing": "repro.obs",
    "enable_tracing": "repro.obs",
    "disable_tracing": "repro.obs",
    "to_chrome_trace": "repro.obs",
    "merge_traces": "repro.obs",
    "write_chrome_trace": "repro.obs",
    "validate_chrome_trace": "repro.obs",
    "InterpreterProfiler": "repro.obs",
    "profiling": "repro.obs",
    "format_profile_report": "repro.obs",
    # Serving (repro.serve): the multi-tenant job service over warm sessions.
    "ServeConfig": "repro.serve",
    "JobService": "repro.serve",
    "Tenant": "repro.serve",
    "TenantStore": "repro.serve",
    "create_server": "repro.serve",
    "run_server": "repro.serve",
    # Static analysis (repro.analysis): findings model + analyzer entry points.
    "Finding": "repro.analysis",
    "Report": "repro.analysis",
    "Severity": "repro.analysis",
    "check_schedules": "repro.analysis.schedule_check",
    "check_schedule_point": "repro.analysis.schedule_check",
    "schedule_sweep": "repro.analysis.schedule_check",
    "verify_lowered_artifact": "repro.analysis.ir_verify",
    "verify_checkpoint": "repro.analysis",
    # Fault tolerance (repro.fault): checkpoint/restart, injection, recovery.
    "Checkpoint": "repro.fault",
    "Fault": "repro.fault",
    "FaultPlan": "repro.fault",
    "InjectedFault": "repro.fault",
    "Journal": "repro.fault",
    "RecoveryResult": "repro.fault",
    "capture_checkpoint": "repro.fault",
    "inject_faults": "repro.fault",
    "job_descriptor": "repro.fault",
    "load_checkpoint": "repro.fault",
    "resume_from_checkpoint": "repro.fault",
    "run_with_recovery": "repro.fault",
}

__all__ = sorted(["API_VERSION", "DEPRECATIONS", *_EXPORT_SOURCES])

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from repro.api.config import ResolvedConfig  # noqa: F401
    from repro.obs import (  # noqa: F401
        InterpreterProfiler,
        TraceRecorder,
        disable_tracing,
        enable_tracing,
        format_profile_report,
        merge_traces,
        profiling,
        to_chrome_trace,
        tracing,
        validate_chrome_trace,
        write_chrome_trace,
    )
    from repro.api.registry import (  # noqa: F401
        ALGORITHMS,
        BACKENDS,
        BENCHMARKS,
        EXPERIMENTS,
        MACHINES,
        MODES,
        DuplicateEntryError,
        Registry,
        UnknownEntryError,
        register_algorithm,
        register_backend,
        register_benchmark,
        register_experiment,
        register_machine,
        register_mode,
    )
    from repro.api.session import (  # noqa: F401
        JobResult,
        Session,
        current_session,
        default_session,
        resolve_machine,
        run,
        use_session,
    )
    from repro.serve import (  # noqa: F401
        JobService,
        ServeConfig,
        Tenant,
        TenantStore,
        create_server,
        run_server,
    )
    from repro.analysis import (  # noqa: F401
        Finding,
        Report,
        Severity,
    )
    from repro.analysis.checkpoint_verify import (  # noqa: F401
        verify_checkpoint,
    )
    from repro.analysis.ir_verify import (  # noqa: F401
        verify_lowered_artifact,
    )
    from repro.fault import (  # noqa: F401
        Checkpoint,
        Fault,
        FaultPlan,
        InjectedFault,
        Journal,
        RecoveryResult,
        capture_checkpoint,
        inject_faults,
        job_descriptor,
        load_checkpoint,
        resume_from_checkpoint,
        run_with_recovery,
    )
    from repro.analysis.schedule_check import (  # noqa: F401
        check_schedule_point,
        check_schedules,
        schedule_sweep,
    )


def __getattr__(name: str):
    source = _EXPORT_SOURCES.get(name)
    if source is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    import importlib

    # Sources containing a dot are absolute module paths (e.g. "repro.obs");
    # bare names are submodules of this package.
    module = importlib.import_module(source if "." in source else f"repro.api.{source}")
    value = getattr(module, name)
    globals()[name] = value          # cache for subsequent accesses
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
