"""The stable public session API: warm :class:`Session` objects.

The paper's embedder is a long-lived library that launchers link against;
this module is the reproduction's equivalent front door.  A ``Session`` owns

* a **resolved configuration** (:class:`repro.api.config.ResolvedConfig`,
  layered defaults < config file < ``REPRO_*`` env < kwargs),
* a **compiled-artifact store**: an in-memory tier that lives as long as the
  session, optionally fronting the shared on-disk
  :class:`~repro.wasm.compilers.cache.FileSystemCache` -- so repeated jobs in
  one process reuse lowered IR and compiled artifacts without round-tripping
  the disk cache (and without re-running ``wasicc``),
* a **metrics registry** aggregating every job it runs.

Execution modes ("wasm", "native", ...) are registry-driven
(:data:`repro.api.registry.MODES`): ``Session.run`` resolves the mode's
runner, so new execution baselines plug in without editing this module.

The legacy entry points (``repro.core.launcher.run_wasm``/``run_native``,
direct ``MPIWasm`` construction) are deprecation shims over the *ambient*
session (:func:`current_session`), which campaign workers rebind to their own
warm per-process session via :func:`use_session`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.config import ResolvedConfig, _UNSET
from repro.api.registry import BENCHMARKS, MACHINES, MODES, register_mode
from repro.core import envvars
from repro.core.config import EmbedderConfig
from repro.core.embedder import GuestResult, MPIWasm
from repro.fault import checkpoint as _checkpoint
from repro.mpi.runtime import MPIRuntime, MPIWorld
from repro.obs import trace as _trace
from repro.sim.cluster import Cluster
from repro.sim.engine import RankFailedError, SimEngine
from repro.sim.machines import MachinePreset
from repro.sim.metrics import MetricsRegistry
from repro.toolchain.guest import GuestProgram
from repro.toolchain.wasicc import CompiledApplication, compile_guest
from repro.wasm.compilers.base import CompiledModule
from repro.wasm.compilers.cache import (
    GLOBAL_CACHE,
    FileSystemCache,
    InMemoryCache,
    TieredCache,
)
from repro.wasm.decoder import decode_module

#: Application argument accepted by :meth:`Session.run` / :meth:`Session.compile`.
AppLike = Union[GuestProgram, CompiledApplication, str]


@dataclass
class JobResult:
    """Outcome of one ``mpirun``-style job (wasm or native)."""

    nranks: int
    machine: str
    mode: str                               # "wasm" or "native"
    rank_results: List[object]
    makespan: float                         # max virtual time across ranks, seconds
    metrics: MetricsRegistry
    stdout: str                             # rank 0's stdout
    #: Recorder snapshot (``repro.obs.trace``) when the job ran with tracing
    #: enabled; feed it to :func:`repro.obs.to_chrome_trace` for a timeline.
    trace: Optional[dict] = None

    def exit_codes(self) -> List[int]:
        """Per-rank exit codes (0 for native runs that returned non-ints)."""
        codes = []
        for r in self.rank_results:
            if isinstance(r, GuestResult):
                codes.append(r.exit_code)
            elif isinstance(r, int):
                codes.append(r)
            else:
                codes.append(0)
        return codes

    def return_values(self) -> List[object]:
        """Per-rank values returned by the guest's ``main``."""
        out = []
        for r in self.rank_results:
            out.append(r.return_value if isinstance(r, GuestResult) else r)
        return out


def resolve_machine(machine: Union[str, MachinePreset]) -> MachinePreset:
    """Machine preset for a name (via the registry) or a preset passthrough.

    An unknown name raises :class:`repro.api.registry.UnknownEntryError`
    listing every registered preset -- never a bare ``KeyError``.
    """
    if isinstance(machine, MachinePreset):
        return machine
    return MACHINES.get(machine)


def execute_job(
    preset: MachinePreset,
    nranks: int,
    ranks_per_node: Optional[int],
    collective_algorithms: Optional[Mapping[str, str]],
    program_factory: Callable[[MPIWorld, MetricsRegistry], Callable[[int], Callable]],
) -> Tuple[List[object], float, MetricsRegistry]:
    """Shared SPMD scaffolding used by every execution mode.

    Builds the cluster, discrete-event engine and MPI world, applies forced
    collective algorithms, spawns one rank program per rank (obtained from
    ``program_factory(world, metrics)``) and runs the job to completion.
    Returns ``(rank_results, makespan, metrics)``.
    """
    cluster = Cluster(preset, nranks, ranks_per_node)
    engine = SimEngine(nranks)
    metrics = MetricsRegistry()
    world = MPIWorld.install(cluster, engine, metrics)
    if collective_algorithms:
        world.collectives.force_many(dict(collective_algorithms))
    if _checkpoint.CAPTURE is not None:
        _checkpoint.CAPTURE.register_world(world)
    engine.spawn_all(program_factory(world, metrics))
    try:
        rank_results = engine.run()
    except RankFailedError as err:
        # Survivors are already torn down (the engine guarantees it); attach
        # the job's final metrics so the error record carries each rank's
        # counters at failure time.
        err.metrics_snapshot = metrics.snapshot()
        raise
    return rank_results, engine.max_clock, metrics


class Session:
    """One warm embedder session: configuration + artifact store + metrics.

    ::

        from repro.api import Session

        with Session(machine="graviton2", backend="cranelift") as session:
            job = session.run("pingpong", 2)          # compiles the module
            job = session.run("pingpong", 4)          # reuses the artifact
            print(session.metrics.cache_summary())    # {'misses': 1, ...}

    ``config`` may be a :class:`ResolvedConfig`, a mapping, or ``None``;
    keyword overrides always win (they are the top configuration layer).
    """

    def __init__(
        self,
        config: Union[ResolvedConfig, Mapping[str, Any], None] = None,
        *,
        config_file: Union[str, None, object] = _UNSET,
        artifact_store: Optional[InMemoryCache] = None,
        metrics: Optional[MetricsRegistry] = None,
        **overrides: Any,
    ):
        self.config = ResolvedConfig.resolve(config, config_file=config_file, **overrides)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._memory = artifact_store if artifact_store is not None else InMemoryCache()
        self._disk: Dict[str, FileSystemCache] = {}
        self._programs: Dict[str, GuestProgram] = {}
        self._apps: Dict[int, Tuple[object, CompiledApplication]] = {}
        self._jobs_run = 0
        self._closed = False

    # -------------------------------------------------------------- lifecycle

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    @property
    def jobs_run(self) -> int:
        """Number of jobs executed through this session."""
        return self._jobs_run

    def close(self) -> None:
        """Release the session's in-memory artifact store (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._memory.clear()
        self._apps.clear()
        self._programs.clear()

    def __enter__(self) -> "Session":
        self._check_open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("this Session is closed; create a new one")

    # ---------------------------------------------------------- config/cache

    def _effective_cache_dir(self, override: Any) -> Optional[str]:
        if override is not _UNSET:
            return str(override) if override else None
        # A cache_dir that came from the environment (or was never
        # configured) stays *live*: the current REPRO_CACHE_DIR wins, so the
        # campaign runner's per-job scoping -- exporting the shared directory,
        # or an empty value when the on-disk cache is disabled -- takes
        # effect even on sessions resolved earlier.  Only an explicitly
        # configured value (kwarg or config file) is pinned.
        source = self.config.provenance.get("cache_dir", "default")
        if source == "default" or source.startswith("env:"):
            return envvars.cache_dir()
        return self.config.cache_dir

    def _embedder_config(
        self,
        *,
        backend: Optional[str] = None,
        algorithms: Optional[Mapping[str, str]] = None,
        cache_dir: Any = _UNSET,
        guest_args: Sequence[str] = (),
    ) -> EmbedderConfig:
        merged_algorithms = dict(self.config.collective_algorithms)
        if algorithms:
            merged_algorithms.update(algorithms)
        return self.config.embedder_config(
            compiler_backend=backend or self.config.backend,
            cache_dir=self._effective_cache_dir(cache_dir),
            collective_algorithms=merged_algorithms,
            guest_args=tuple(guest_args),
        )

    def artifact_cache(self, config: EmbedderConfig):
        """Artifact store for one job: the session's in-memory tier, fronting
        the shared on-disk cache when the configuration names a directory."""
        if config.cache_dir:
            directory = str(config.cache_dir)
            disk = self._disk.get(directory)
            if disk is None:
                disk = self._disk[directory] = FileSystemCache(directory)
            return TieredCache(self._memory, disk)
        return self._memory

    # ------------------------------------------------------------ application

    def _guest_program(self, app: AppLike) -> GuestProgram:
        if isinstance(app, CompiledApplication):
            return app.program
        if isinstance(app, str):
            program = self._programs.get(app)
            if program is None:
                program = BENCHMARKS.get(app)()
                self._programs[app] = program
            return program
        return app

    #: Bound on the (program -> wasicc output) memo: warm reuse is meant for
    #: a working set of applications, not for pinning every program a
    #: long-lived process ever ran (the ambient default session lives for
    #: the whole process).
    MAX_WARM_APPLICATIONS = 128

    def _compiled_application(self, app: AppLike) -> CompiledApplication:
        if isinstance(app, CompiledApplication):
            return app
        program = self._guest_program(app)
        entry = self._apps.get(id(program))
        if entry is None or entry[0] is not program:
            entry = (program, compile_guest(program))
            self._apps[id(program)] = entry
            while len(self._apps) > self.MAX_WARM_APPLICATIONS:
                self._apps.pop(next(iter(self._apps)))      # evict oldest
        return entry[1]

    # ------------------------------------------------------------ compilation

    def compile(self, app: Union[AppLike, bytes], *,
                backend: Optional[str] = None,
                module=None) -> CompiledModule:
        """AoT-compile an application through the session's artifact store.

        Accepts a guest program, a ``wasicc`` output, a registered benchmark
        name, or raw ``.wasm`` bytes (with an optional already-decoded
        ``module`` to skip re-decoding).  Repeated compiles of the same
        module (any job, same session) are served from the warm store; the
        lookup is recorded in the session's ``metrics.cache_summary()``.

        Compiled lowered-IR artifacts -- freshly built or loaded from the
        shared on-disk cache -- are statically verified
        (:mod:`repro.analysis.ir_verify`) before they are returned; a
        structurally-broken artifact raises
        :class:`~repro.wasm.errors.ValidationError`.
        """
        self._check_open()
        config = self._embedder_config(backend=backend)
        embedder = MPIWasm(config, cache=self.artifact_cache(config), _session_owned=True)
        if isinstance(app, bytes):
            compiled = embedder.compile_module(app, module or decode_module(app))
        else:
            compiled_app = self._compiled_application(app)
            compiled = embedder.compile_module(compiled_app.wasm_bytes, compiled_app.module)
        self.metrics.record_cache_event(
            embedder.last_cache_hit,
            tier=getattr(embedder, "last_cache_tier", None),
        )
        artifact = getattr(compiled, "artifact", None)
        if isinstance(artifact, dict) and artifact.get("kind") == "lowered-ir":
            from repro.analysis.ir_verify import verify_artifact
            from repro.wasm.errors import ValidationError

            verify_artifact(artifact).raise_if_error(
                ValidationError, "compiled artifact rejected: "
            )
        return compiled

    # -------------------------------------------------------------- execution

    def run(
        self,
        app: AppLike,
        nranks: Optional[int] = None,
        *,
        np: Optional[int] = None,
        mode: str = "wasm",
        machine: Union[str, MachinePreset, None] = None,
        backend: Optional[str] = None,
        ranks_per_node: Optional[int] = None,
        guest_args: Sequence[str] = (),
        algorithms: Optional[Mapping[str, str]] = None,
        cache_dir: Any = _UNSET,
        config: Optional[EmbedderConfig] = None,
    ) -> JobResult:
        """Run one job and fold its metrics into the session.

        ``mode`` selects a registered execution mode (``"wasm"`` runs the
        embedder, ``"native"`` the no-embedder baseline).  Per-run keyword
        overrides beat the session configuration; an explicit
        :class:`EmbedderConfig` (``config=``) bypasses the layering entirely
        (the back-compat shims use this to preserve legacy semantics).
        """
        self._check_open()
        runner = MODES.get(mode)
        preset = resolve_machine(machine if machine is not None else self.config.machine)
        if nranks is None:
            nranks = np if np is not None else self.config.nranks
        if ranks_per_node is None:
            ranks_per_node = self.config.ranks_per_node
        # An explicit EmbedderConfig (the legacy-shim path) keeps the exact
        # pre-session cache behaviour: each embedder picks its own store from
        # the config instead of the session's warm tier.
        session_store = config is None
        if config is None:
            config = self._embedder_config(
                backend=backend, algorithms=algorithms, cache_dir=cache_dir
            )
        elif algorithms:
            merged = dict(config.collective_algorithms)
            merged.update(algorithms)
            config = replace(config, collective_algorithms=merged)
        if self.config.trace and not _trace.ENABLED:
            # Session-level tracing: record this job on a fresh recorder and
            # attach the snapshot to the result.  When a recorder is already
            # installed (the campaign runner owns one per job), defer to it.
            with _trace.tracing() as recorder:
                job = runner(
                    self,
                    app,
                    nranks=int(nranks),
                    preset=preset,
                    ranks_per_node=ranks_per_node,
                    config=config,
                    guest_args=tuple(guest_args),
                    session_store=session_store,
                )
            job.trace = recorder.snapshot()
        else:
            job = runner(
                self,
                app,
                nranks=int(nranks),
                preset=preset,
                ranks_per_node=ranks_per_node,
                config=config,
                guest_args=tuple(guest_args),
                session_store=session_store,
            )
        self._jobs_run += 1
        self.metrics.merge(job.metrics)
        return job

    def campaign(self, spec, *, workers: Optional[int] = None,
                 cache_dir: Any = None, progress: Optional[Callable] = None,
                 trace: Optional[bool] = None,
                 journal_dir: Any = None, resume: bool = False):
        """Expand and execute a campaign spec through this session.

        Serial campaigns (``workers <= 1``) run every job on *this* warm
        session; parallel campaigns give each worker process its own warm
        session sharing the on-disk cache.  ``cache_dir`` defaults to a
        cache directory *explicitly* configured on the session (kwarg or
        config file); an env-resolved or default one is left for
        ``run_campaign`` to apply at its documented precedence (explicit
        argument > spec > ``$REPRO_CACHE_DIR`` > temp dir), so a spec-level
        ``"cache_dir"`` -- including ``false`` to disable the on-disk cache
        -- still beats the environment.  ``trace`` forces per-job event
        tracing on (``True``) or off (``False``); ``None`` defers to the
        spec's ``"trace"`` key, then the session's ``trace`` config.
        ``journal_dir`` keeps a crash-safe on-disk journal of job outcomes
        (:mod:`repro.fault.journal`); ``resume=True`` re-runs only the jobs
        that journal records as unfinished (``spec`` may then be ``None``).
        Returns the :class:`repro.harness.campaign.CampaignResult`.
        """
        self._check_open()
        from repro.harness.campaign import run_campaign

        workers = self.config.workers if workers is None else workers
        if trace is None and self.config.trace:
            trace = True
        if cache_dir is None:
            source = self.config.provenance.get("cache_dir", "default")
            if source == "kwarg" or source.startswith("file:"):
                cache_dir = self.config.cache_dir
        result = run_campaign(
            spec, workers=workers, cache_dir=cache_dir, progress=progress,
            session=self, trace=trace, journal_dir=journal_dir, resume=resume,
        )
        if workers > 1:
            # Serial jobs already merged through Session.run; parallel jobs
            # ran on worker sessions, so fold the shipped-back aggregate in.
            self.metrics.merge(result.metrics)
        return result

    # -------------------------------------------------------------- reporting

    def cache_summary(self) -> Dict[str, float]:
        """Aggregate AoT-cache counters across every job this session ran."""
        return self.metrics.cache_summary()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (f"Session({state}, backend={self.config.backend!r}, "
                f"machine={self.config.machine!r}, jobs={self._jobs_run})")


# ------------------------------------------------------------ execution modes


@register_mode("wasm")
def _run_wasm_mode(
    session: Session,
    app: AppLike,
    *,
    nranks: int,
    preset: MachinePreset,
    ranks_per_node: Optional[int],
    config: EmbedderConfig,
    guest_args: Tuple[str, ...],
    session_store: bool = True,
) -> JobResult:
    """Run a guest under MPIWasm: one embedder per rank, shared warm store."""
    compiled_app = session._compiled_application(app)
    cache = session.artifact_cache(config) if session_store else None

    def program_factory(world: MPIWorld, metrics: MetricsRegistry):
        def make_rank_program(rank: int):
            def rank_program(ctx):
                runtime = MPIRuntime(world, ctx)
                embedder = MPIWasm(config, cache=cache, _session_owned=True)
                result = embedder.run_guest(compiled_app, runtime, guest_args)
                metrics.merge(result.metrics)
                return result

            return rank_program

        return make_rank_program

    rank_results, makespan, metrics = execute_job(
        preset, nranks, ranks_per_node, config.collective_algorithms, program_factory
    )
    stdout = (rank_results[0].stdout
              if rank_results and isinstance(rank_results[0], GuestResult) else "")
    return JobResult(
        nranks=nranks,
        machine=preset.name,
        mode="wasm",
        rank_results=rank_results,
        makespan=makespan,
        metrics=metrics,
        stdout=stdout,
    )


# --------------------------------------------------------- the ambient session

_DEFAULT_SESSION: Optional[Session] = None
_DEFAULT_SESSION_ENV: Optional[Dict[str, str]] = None
_ACTIVE_SESSIONS: List[Session] = []


def default_session() -> Session:
    """Process-wide fallback session used by the deprecation shims.

    Its artifact store is the legacy process-global in-memory cache, so code
    still calling ``run_wasm``/``run_native`` keeps the exact cross-call
    compilation reuse it had before sessions existed.  The legacy entry
    points also re-read the ``REPRO_*`` environment on every call, so the
    session is re-resolved whenever the ``REPRO_*`` snapshot changes --
    exporting or unsetting a knob between shim calls keeps taking effect
    (the warm artifact store is the shared global cache either way).
    """
    global _DEFAULT_SESSION, _DEFAULT_SESSION_ENV
    env = envvars.snapshot()
    if (_DEFAULT_SESSION is None or _DEFAULT_SESSION.closed
            or env != _DEFAULT_SESSION_ENV):
        _DEFAULT_SESSION = Session(artifact_store=GLOBAL_CACHE)
        _DEFAULT_SESSION_ENV = env
    return _DEFAULT_SESSION


def current_session() -> Session:
    """The innermost :func:`use_session` session, else the default one."""
    if _ACTIVE_SESSIONS:
        return _ACTIVE_SESSIONS[-1]
    return default_session()


@contextmanager
def use_session(session: Session) -> Iterator[Session]:
    """Make ``session`` the ambient session for the duration of the block.

    The campaign runner wraps each job in this so nested compiles -- including
    ones buried inside experiment drivers and legacy shims -- all land on the
    job's warm per-worker session.
    """
    _ACTIVE_SESSIONS.append(session)
    try:
        yield session
    finally:
        _ACTIVE_SESSIONS.pop()


def run(app: AppLike, nranks: Optional[int] = None, **kwargs: Any) -> JobResult:
    """One-shot convenience: ``repro.api.run(...)`` on the ambient session."""
    return current_session().run(app, nranks, **kwargs)


__all__ = [
    "AppLike",
    "JobResult",
    "Session",
    "current_session",
    "default_session",
    "execute_job",
    "resolve_machine",
    "run",
    "use_session",
]
