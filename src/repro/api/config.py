"""Layered session configuration with recorded provenance.

A :class:`ResolvedConfig` is built from four layers, lowest priority first::

    built-in defaults  <  config file (JSON)  <  REPRO_* environment  <  kwargs

Every environment read goes through :mod:`repro.core.envvars` (re-exported by
``repro.core.env``), and the winning layer of every field is recorded in
:attr:`ResolvedConfig.provenance` -- so ``session.config.explain()`` can answer
"why is the backend cranelift?" with ``env:REPRO_BACKEND`` instead of a
debugging session.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, Mapping, Optional, Tuple, Union

from repro.core import envvars

_UNSET = object()


def _parse_algorithms(raw: object) -> Dict[str, str]:
    """Accept the env-knob string syntax or a plain mapping."""
    if isinstance(raw, Mapping):
        return {str(k): str(v) for k, v in raw.items()}
    from repro.mpi.algorithms.decision import parse_env_knob

    return parse_env_knob(str(raw))


@dataclass(frozen=True)
class _Field:
    """One configurable knob: its default, env var, and parser."""

    name: str
    default: Any
    env: Optional[str] = None
    parse: Optional[Callable[[str], Any]] = None       # env-string -> value
    coerce: Optional[Callable[[Any], Any]] = None      # file/kwarg value -> value


#: Every field of :class:`ResolvedConfig`, in declaration order.
FIELDS: Tuple[_Field, ...] = (
    _Field("backend", "llvm", "REPRO_BACKEND"),
    _Field("machine", "supermuc-ng", "REPRO_MACHINE"),
    _Field("nranks", 4, "REPRO_NRANKS", parse=int, coerce=int),
    _Field("ranks_per_node", None, None, coerce=lambda v: None if v is None else int(v)),
    _Field("cache_dir", None, "REPRO_CACHE_DIR",
           parse=lambda raw: raw or None,
           coerce=lambda v: str(v) if v else None),
    _Field("enable_cache", True, "REPRO_CACHE",
           parse=lambda raw: envvars.parse_bool(raw, "REPRO_CACHE"), coerce=bool),
    _Field("validate", True, "REPRO_VALIDATE",
           parse=lambda raw: envvars.parse_bool(raw, "REPRO_VALIDATE"), coerce=bool),
    _Field("memory_pages", None, "REPRO_MEMORY_PAGES", parse=int,
           coerce=lambda v: None if v is None else int(v)),
    _Field("max_call_depth", 256, "REPRO_MAX_CALL_DEPTH", parse=int, coerce=int),
    _Field("collective_algorithms", {}, "REPRO_COLL_ALGO",
           parse=_parse_algorithms, coerce=_parse_algorithms),
    _Field("guest_args", (), None, coerce=lambda v: tuple(str(a) for a in v)),
    _Field("workers", 1, "REPRO_WORKERS", parse=int, coerce=int),
    _Field("trace", False, "REPRO_TRACE",
           parse=lambda raw: envvars.parse_bool(raw, "REPRO_TRACE"), coerce=bool),
)

_FIELD_BY_NAME: Dict[str, _Field] = {f.name: f for f in FIELDS}


@dataclass(frozen=True)
class ResolvedConfig:
    """Fully-resolved session configuration plus per-field provenance."""

    backend: str = "llvm"
    machine: str = "supermuc-ng"
    nranks: int = 4
    ranks_per_node: Optional[int] = None
    cache_dir: Optional[str] = None
    enable_cache: bool = True
    validate: bool = True
    memory_pages: Optional[int] = None
    max_call_depth: int = 256
    collective_algorithms: Dict[str, str] = field(default_factory=dict)
    guest_args: Tuple[str, ...] = ()
    workers: int = 1
    trace: bool = False
    #: Winning layer per field: "default", "file:<path>", "env:<VAR>", "kwarg".
    provenance: Dict[str, str] = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------ resolution

    @classmethod
    def resolve(
        cls,
        base: Union["ResolvedConfig", Mapping[str, Any], None] = None,
        *,
        config_file: Union[str, Path, None, object] = _UNSET,
        environ: Optional[Mapping[str, str]] = None,
        **overrides: Any,
    ) -> "ResolvedConfig":
        """Layer defaults < config file < environment < explicit kwargs.

        ``base`` may be a mapping (treated as additional kwargs, beaten by
        explicit ``overrides``) or an existing :class:`ResolvedConfig`, in
        which case only ``overrides`` are applied on top of it -- the file and
        environment layers were already considered when it was resolved.

        ``config_file`` defaults to ``$REPRO_CONFIG`` when set; pass ``None``
        explicitly to ignore the environment's config file.
        """
        if isinstance(base, ResolvedConfig):
            values = {f.name: getattr(base, f.name) for f in FIELDS}
            provenance = dict(base.provenance)
        else:
            values = {f.name: (dict(f.default) if isinstance(f.default, dict)
                               else f.default) for f in FIELDS}
            provenance = {f.name: "default" for f in FIELDS}
            if isinstance(base, Mapping):
                merged = dict(base)
                merged.update(overrides)
                overrides = merged

            # ---- layer 2: config file ---------------------------------------
            path = (envvars.config_file(environ) if config_file is _UNSET
                    else config_file)
            if path is not None:
                path = Path(path)
                try:
                    data = json.loads(path.read_text(encoding="utf-8"))
                except (OSError, ValueError) as exc:
                    raise ValueError(f"cannot load config file {path}: {exc}") from exc
                if not isinstance(data, Mapping):
                    raise ValueError(f"config file {path} must hold a JSON object")
                unknown = set(data) - set(_FIELD_BY_NAME)
                if unknown:
                    raise ValueError(
                        f"unknown config file keys {sorted(unknown)} in {path}; "
                        f"known: {sorted(_FIELD_BY_NAME)}"
                    )
                for key, raw in data.items():
                    spec = _FIELD_BY_NAME[key]
                    values[key] = spec.coerce(raw) if spec.coerce else raw
                    provenance[key] = f"file:{path}"

            # ---- layer 3: environment ---------------------------------------
            for spec in FIELDS:
                if spec.env is None:
                    continue
                raw = envvars.read_env(spec.env, None, environ)
                if raw is None:
                    continue
                try:
                    values[spec.name] = spec.parse(raw) if spec.parse else raw
                except ValueError as exc:
                    raise ValueError(f"invalid {spec.env}={raw!r}: {exc}") from exc
                provenance[spec.name] = f"env:{spec.env}"

        # ---- layer 4: explicit kwargs ---------------------------------------
        unknown = set(overrides) - set(_FIELD_BY_NAME)
        if unknown:
            raise ValueError(
                f"unknown configuration fields {sorted(unknown)}; "
                f"known: {sorted(_FIELD_BY_NAME)}"
            )
        for key, raw in overrides.items():
            spec = _FIELD_BY_NAME[key]
            values[key] = (spec.coerce(raw)
                           if spec.coerce and raw is not None else raw)
            provenance[key] = "kwarg"

        return cls(provenance=provenance, **values)

    def replaced(self, **overrides: Any) -> "ResolvedConfig":
        """Copy with selected fields overridden (provenance: ``kwarg``)."""
        return self.resolve(self, **overrides)

    # ------------------------------------------------------------- reporting

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data view of every field (no provenance)."""
        return {f.name: getattr(self, f.name) for f in FIELDS}

    def explain(self) -> str:
        """Human-readable ``field = value  (source layer)`` listing."""
        lines = []
        for spec in FIELDS:
            source = self.provenance.get(spec.name, "default")
            lines.append(f"{spec.name} = {getattr(self, spec.name)!r}  ({source})")
        return "\n".join(lines)

    # -------------------------------------------------------------- adapters

    def embedder_config(self, **overrides: Any):
        """Materialise an :class:`repro.core.config.EmbedderConfig`.

        ``overrides`` replace individual embedder fields (``compiler_backend``,
        ``cache_dir``, ...) without re-running the layering.
        """
        from repro.core.config import EmbedderConfig

        kwargs: Dict[str, Any] = dict(
            compiler_backend=self.backend,
            cache_dir=self.cache_dir,
            enable_cache=self.enable_cache,
            memory_pages=self.memory_pages,
            max_call_depth=self.max_call_depth,
            validate=self.validate,
            guest_args=tuple(self.guest_args),
            collective_algorithms=dict(self.collective_algorithms),
        )
        kwargs.update(overrides)
        return EmbedderConfig(**kwargs)


__all__ = ["ResolvedConfig", "FIELDS"]
