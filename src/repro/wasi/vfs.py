"""Virtual filesystem with capability-based pre-opened directories.

This is the filesystem-isolation mechanism of §3.4 of the paper: the embedder
exposes a *virtual directory tree* to the module in which every pre-opened
directory appears as a direct child of the root, hiding the host path (so a
home directory exposed with ``-d`` never leaks the username), and access
rights per directory can be more restrictive than the invoking user's rights.

Files live entirely in memory (the IOR bandwidth numbers come from the
parallel-filesystem *model*, not from actually writing gigabytes), but the
permission handling, path resolution, directory structure and file descriptor
lifecycle are fully functional and unit-tested.
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.wasi.errno import EACCES, EBADF, EEXIST, EINVAL, EISDIR, ENOENT, ENOTCAPABLE, ENOTDIR, WasiError


@dataclass
class VirtualFile:
    """A regular file in the virtual tree."""

    name: str
    data: bytearray = field(default_factory=bytearray)

    @property
    def size(self) -> int:
        """Current size in bytes."""
        return len(self.data)


@dataclass
class VirtualDirectory:
    """A directory in the virtual tree."""

    name: str
    entries: Dict[str, object] = field(default_factory=dict)

    def lookup(self, name: str):
        """Child entry by name (``None`` if absent)."""
        return self.entries.get(name)


@dataclass
class Preopen:
    """A directory granted to the module, with its capability rights."""

    guest_path: str          # how the module sees it, e.g. "/data"
    directory: VirtualDirectory
    read: bool = True
    write: bool = True


@dataclass
class OpenFile:
    """An open file descriptor."""

    fd: int
    file: Optional[VirtualFile]
    directory: Optional[VirtualDirectory]
    readable: bool
    writable: bool
    append: bool = False
    offset: int = 0
    path: str = ""

    @property
    def is_directory(self) -> bool:
        """Whether this descriptor refers to a directory."""
        return self.directory is not None


class VirtualFilesystem:
    """The per-instance virtual filesystem and descriptor table.

    File descriptors 0-2 are reserved for stdio (captured in byte buffers so
    benchmark output can be asserted on); descriptor 3 onwards are pre-opened
    directories followed by files the module opens.
    """

    FIRST_PREOPEN_FD = 3

    def __init__(self) -> None:
        self.stdout = bytearray()
        self.stderr = bytearray()
        self.stdin = bytearray()
        self._preopens: List[Preopen] = []
        self._open: Dict[int, OpenFile] = {}
        self._next_fd = self.FIRST_PREOPEN_FD

    # ---------------------------------------------------------------- preopens

    def preopen(self, guest_path: str, read: bool = True, write: bool = True) -> Preopen:
        """Grant the module access to a directory mounted at ``guest_path``.

        The guest path is always normalised to a single root-level component
        (``/results``), matching MPIWasm's ``-d`` mapping behaviour.
        """
        name = "/" + guest_path.strip("/").split("/")[0] if guest_path.strip("/") else "/"
        directory = VirtualDirectory(name=name.strip("/") or "/")
        pre = Preopen(guest_path=name, directory=directory, read=read, write=write)
        self._preopens.append(pre)
        fd = self._next_fd
        self._next_fd += 1
        self._open[fd] = OpenFile(
            fd=fd, file=None, directory=directory, readable=read, writable=write, path=name
        )
        return pre

    def preopens(self) -> List[Preopen]:
        """All pre-opened directories (in fd order)."""
        return list(self._preopens)

    def preopen_fd(self, index: int) -> int:
        """File descriptor of the ``index``-th preopen."""
        return self.FIRST_PREOPEN_FD + index

    # ------------------------------------------------------------- path helpers

    def _resolve(self, start: VirtualDirectory, path: str, rights: Preopen) -> Tuple[VirtualDirectory, str]:
        """Resolve ``path`` below ``start``; returns (parent_directory, leaf name).

        Rejects absolute escapes and ``..`` traversal above the preopen --
        the capability model of WASI.
        """
        norm = posixpath.normpath(path.lstrip("/"))
        if norm in (".", ""):
            return start, ""
        if norm.startswith(".."):
            raise WasiError(ENOTCAPABLE, f"path {path!r} escapes its capability directory")
        parts = norm.split("/")
        current = start
        for part in parts[:-1]:
            entry = current.lookup(part)
            if entry is None:
                raise WasiError(ENOENT, f"missing directory {part!r} in {path!r}")
            if not isinstance(entry, VirtualDirectory):
                raise WasiError(ENOTDIR, f"{part!r} is not a directory")
            current = entry
        return current, parts[-1]

    def _preopen_for_fd(self, dirfd: int) -> Preopen:
        open_dir = self._open.get(dirfd)
        if open_dir is None or not open_dir.is_directory:
            raise WasiError(EBADF, f"fd {dirfd} is not an open directory")
        for pre in self._preopens:
            if pre.directory is open_dir.directory:
                return pre
        # A subdirectory opened via path_open inherits its preopen's rights.
        return Preopen(guest_path=open_dir.path, directory=open_dir.directory,
                       read=open_dir.readable, write=open_dir.writable)

    # ------------------------------------------------------------------- files

    def path_open(
        self,
        dirfd: int,
        path: str,
        create: bool = False,
        truncate: bool = False,
        append: bool = False,
        read: bool = True,
        write: bool = False,
        directory: bool = False,
    ) -> int:
        """Open (or create) a file below a pre-opened directory; returns the fd."""
        pre = self._preopen_for_fd(dirfd)
        if write and not pre.write:
            raise WasiError(ENOTCAPABLE, f"directory {pre.guest_path} is read-only")
        if read and not pre.read:
            raise WasiError(ENOTCAPABLE, f"directory {pre.guest_path} is not readable")
        parent, leaf = self._resolve(pre.directory, path, pre)
        if leaf == "":
            entry: object = parent
        else:
            entry = parent.lookup(leaf)
        if directory:
            if entry is None and create:
                entry = VirtualDirectory(name=leaf)
                parent.entries[leaf] = entry
            if not isinstance(entry, VirtualDirectory):
                raise WasiError(ENOTDIR, f"{path!r} is not a directory")
            fd = self._next_fd
            self._next_fd += 1
            self._open[fd] = OpenFile(fd=fd, file=None, directory=entry, readable=read,
                                      writable=write, path=path)
            return fd
        if entry is None:
            if not create:
                raise WasiError(ENOENT, f"{path!r} does not exist")
            if not pre.write:
                raise WasiError(ENOTCAPABLE, f"cannot create {path!r} in read-only directory")
            entry = VirtualFile(name=leaf)
            parent.entries[leaf] = entry
        if isinstance(entry, VirtualDirectory):
            raise WasiError(EISDIR, f"{path!r} is a directory")
        if truncate:
            if not write:
                raise WasiError(EINVAL, "truncate requires write access")
            entry.data = bytearray()
        fd = self._next_fd
        self._next_fd += 1
        self._open[fd] = OpenFile(
            fd=fd, file=entry, directory=None, readable=read, writable=write,
            append=append, offset=len(entry.data) if append else 0, path=path,
        )
        return fd

    def _file_fd(self, fd: int) -> OpenFile:
        handle = self._open.get(fd)
        if handle is None:
            raise WasiError(EBADF, f"fd {fd} is not open")
        return handle

    def fd_write(self, fd: int, data: bytes) -> int:
        """Write to a descriptor (stdout/stderr or a regular file)."""
        if fd == 1:
            self.stdout.extend(data)
            return len(data)
        if fd == 2:
            self.stderr.extend(data)
            return len(data)
        handle = self._file_fd(fd)
        if handle.file is None:
            raise WasiError(EISDIR, f"fd {fd} is a directory")
        if not handle.writable:
            raise WasiError(EACCES, f"fd {fd} is not writable")
        if handle.append:
            handle.offset = len(handle.file.data)
        end = handle.offset + len(data)
        if end > len(handle.file.data):
            handle.file.data.extend(bytes(end - len(handle.file.data)))
        handle.file.data[handle.offset : end] = data
        handle.offset = end
        return len(data)

    def fd_read(self, fd: int, nbytes: int) -> bytes:
        """Read from a descriptor (stdin or a regular file)."""
        if fd == 0:
            data = bytes(self.stdin[:nbytes])
            del self.stdin[:nbytes]
            return data
        handle = self._file_fd(fd)
        if handle.file is None:
            raise WasiError(EISDIR, f"fd {fd} is a directory")
        if not handle.readable:
            raise WasiError(EACCES, f"fd {fd} is not readable")
        data = bytes(handle.file.data[handle.offset : handle.offset + nbytes])
        handle.offset += len(data)
        return data

    def fd_seek(self, fd: int, offset: int, whence: int) -> int:
        """Reposition a descriptor; returns the new offset."""
        handle = self._file_fd(fd)
        if handle.file is None:
            raise WasiError(EISDIR, f"fd {fd} is a directory")
        if whence == 0:      # SET
            new = offset
        elif whence == 1:    # CUR
            new = handle.offset + offset
        elif whence == 2:    # END
            new = len(handle.file.data) + offset
        else:
            raise WasiError(EINVAL, f"invalid whence {whence}")
        if new < 0:
            raise WasiError(EINVAL, "seek before start of file")
        handle.offset = new
        return new

    def fd_close(self, fd: int) -> None:
        """Close a descriptor (stdio and preopens cannot be closed)."""
        if fd in (0, 1, 2):
            return
        if fd not in self._open:
            raise WasiError(EBADF, f"fd {fd} is not open")
        if self._open[fd].is_directory and any(
            p.directory is self._open[fd].directory for p in self._preopens
        ):
            raise WasiError(EBADF, f"fd {fd} is a preopened directory")
        del self._open[fd]

    def fd_filesize(self, fd: int) -> int:
        """Size of the file behind ``fd``."""
        handle = self._file_fd(fd)
        if handle.file is None:
            raise WasiError(EISDIR, f"fd {fd} is a directory")
        return handle.file.size

    def unlink(self, dirfd: int, path: str) -> None:
        """Remove a file below a pre-opened directory."""
        pre = self._preopen_for_fd(dirfd)
        if not pre.write:
            raise WasiError(ENOTCAPABLE, f"directory {pre.guest_path} is read-only")
        parent, leaf = self._resolve(pre.directory, path, pre)
        entry = parent.lookup(leaf)
        if entry is None:
            raise WasiError(ENOENT, f"{path!r} does not exist")
        if isinstance(entry, VirtualDirectory):
            raise WasiError(EISDIR, f"{path!r} is a directory")
        del parent.entries[leaf]

    def open_fds(self) -> List[int]:
        """Currently open descriptors (excluding stdio)."""
        return sorted(self._open)

    def stdout_text(self) -> str:
        """Captured stdout as text."""
        return self.stdout.decode("utf-8", errors="replace")

    def stderr_text(self) -> str:
        """Captured stderr as text."""
        return self.stderr.decode("utf-8", errors="replace")
