"""WASI substrate: virtual filesystem, errno space, and host functions.

The embedder attaches one :class:`WasiEnvironment` per module instance so
that guest POSIX-style I/O stays inside the capability-limited virtual
directory tree (§3.4 of the paper).
"""

from repro.wasi.errno import SUCCESS, WasiError, errno_name
from repro.wasi.snapshot_preview1 import NAMESPACE, WasiEnvironment, build_wasi_imports
from repro.wasi.vfs import Preopen, VirtualDirectory, VirtualFile, VirtualFilesystem

__all__ = [
    "SUCCESS",
    "WasiError",
    "errno_name",
    "NAMESPACE",
    "WasiEnvironment",
    "build_wasi_imports",
    "VirtualFilesystem",
    "VirtualFile",
    "VirtualDirectory",
    "Preopen",
]
