"""``wasi_snapshot_preview1`` host functions.

Implements the WASI system interface the paper's modules import (Listing 1):
``fd_write``, ``fd_read``, ``fd_seek``, ``fd_close``, ``path_open``,
``proc_exit``, ``args_*``, ``environ_*``, ``clock_time_get`` and
``random_get``, over the virtual filesystem in :mod:`repro.wasi.vfs`.

All functions follow the WASI ABI: scatter/gather iovecs, results written
through out-pointers in linear memory, and an errno returned as ``i32``.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Sequence

from repro.wasi.errno import EBADF, EINVAL, ENOSYS, SUCCESS, WasiError
from repro.wasi.vfs import VirtualFilesystem
from repro.wasm.errors import ExitTrap
from repro.wasm.runtime import HostFunction, ImportObject, Instance
from repro.wasm.types import FuncType

NAMESPACE = "wasi_snapshot_preview1"

# path_open oflags / fdflags / rights bits (subset used by wasi-libc).
OFLAG_CREAT = 1 << 0
OFLAG_DIRECTORY = 1 << 1
OFLAG_EXCL = 1 << 2
OFLAG_TRUNC = 1 << 3
FDFLAG_APPEND = 1 << 0
RIGHT_FD_READ = 1 << 1
RIGHT_FD_WRITE = 1 << 6


class WasiEnvironment:
    """Per-instance WASI state: args, environment, clock and the VFS.

    The clock is supplied by the embedder so that guest-visible time is the
    *simulated* time of the rank running the module, keeping benchmark
    self-timing consistent with the cluster model.
    """

    def __init__(
        self,
        args: Sequence[str] = (),
        environ: Optional[Dict[str, str]] = None,
        vfs: Optional[VirtualFilesystem] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.args = ["wasm-app", *args] if not args or args[0] != "wasm-app" else list(args)
        self.environ = dict(environ or {})
        self.vfs = vfs or VirtualFilesystem()
        self.clock = clock or (lambda: 0.0)
        self.exit_code: Optional[int] = None
        self._prng_state = 0x9E3779B97F4A7C15

    # ------------------------------------------------------------------ helpers

    def _args_blob(self) -> List[bytes]:
        return [a.encode("utf-8") + b"\x00" for a in self.args]

    def _environ_blob(self) -> List[bytes]:
        return [f"{k}={v}".encode("utf-8") + b"\x00" for k, v in sorted(self.environ.items())]

    def _next_random(self) -> int:
        # xorshift64*: deterministic, seedable, good enough for guest PRNG needs.
        x = self._prng_state
        x ^= (x >> 12) & 0xFFFFFFFFFFFFFFFF
        x ^= (x << 25) & 0xFFFFFFFFFFFFFFFF
        x ^= (x >> 27) & 0xFFFFFFFFFFFFFFFF
        self._prng_state = x & 0xFFFFFFFFFFFFFFFF
        return (x * 0x2545F4914F6CDD1D) & 0xFFFFFFFFFFFFFFFF


def _iovec_gather(memory, iovs_ptr: int, iovs_len: int) -> List[tuple]:
    """Decode a WASI iovec array into (pointer, length) pairs."""
    out = []
    for i in range(iovs_len):
        base = iovs_ptr + 8 * i
        ptr = memory.load_int(base, 4)
        length = memory.load_int(base + 4, 4)
        out.append((ptr, length))
    return out


def build_wasi_imports(env: WasiEnvironment) -> ImportObject:
    """Build an :class:`ImportObject` exposing WASI to a module."""
    imports = ImportObject()

    def register(name: str, params, results, fn) -> None:
        imports.register(NAMESPACE, name, FuncType.of(params, results), fn)

    # ----------------------------------------------------------- args / environ

    def args_sizes_get(instance: Instance, argc_ptr: int, argv_buf_size_ptr: int) -> int:
        blobs = env._args_blob()
        instance.memory.store_int(argc_ptr, len(blobs), 4)
        instance.memory.store_int(argv_buf_size_ptr, sum(len(b) for b in blobs), 4)
        return SUCCESS

    def args_get(instance: Instance, argv_ptr: int, argv_buf_ptr: int) -> int:
        offset = argv_buf_ptr
        for i, blob in enumerate(env._args_blob()):
            instance.memory.store_int(argv_ptr + 4 * i, offset, 4)
            instance.memory.write(offset, blob)
            offset += len(blob)
        return SUCCESS

    def environ_sizes_get(instance: Instance, count_ptr: int, buf_size_ptr: int) -> int:
        blobs = env._environ_blob()
        instance.memory.store_int(count_ptr, len(blobs), 4)
        instance.memory.store_int(buf_size_ptr, sum(len(b) for b in blobs), 4)
        return SUCCESS

    def environ_get(instance: Instance, environ_ptr: int, buf_ptr: int) -> int:
        offset = buf_ptr
        for i, blob in enumerate(env._environ_blob()):
            instance.memory.store_int(environ_ptr + 4 * i, offset, 4)
            instance.memory.write(offset, blob)
            offset += len(blob)
        return SUCCESS

    register("args_sizes_get", ["i32", "i32"], ["i32"], args_sizes_get)
    register("args_get", ["i32", "i32"], ["i32"], args_get)
    register("environ_sizes_get", ["i32", "i32"], ["i32"], environ_sizes_get)
    register("environ_get", ["i32", "i32"], ["i32"], environ_get)

    # ------------------------------------------------------------------- clocks

    def clock_time_get(instance: Instance, clock_id: int, precision: int, time_ptr: int) -> int:
        nanos = int(env.clock() * 1e9)
        instance.memory.store_int(time_ptr, nanos, 8)
        return SUCCESS

    register("clock_time_get", ["i32", "i64", "i32"], ["i32"], clock_time_get)

    # ------------------------------------------------------------------- random

    def random_get(instance: Instance, buf_ptr: int, buf_len: int) -> int:
        remaining = buf_len
        offset = buf_ptr
        while remaining > 0:
            chunk = env._next_random().to_bytes(8, "little")[: min(8, remaining)]
            instance.memory.write(offset, chunk)
            offset += len(chunk)
            remaining -= len(chunk)
        return SUCCESS

    register("random_get", ["i32", "i32"], ["i32"], random_get)

    # --------------------------------------------------------------------- fds

    def fd_write(instance: Instance, fd: int, iovs_ptr: int, iovs_len: int, nwritten_ptr: int) -> int:
        try:
            total = 0
            for ptr, length in _iovec_gather(instance.memory, iovs_ptr, iovs_len):
                total += env.vfs.fd_write(fd, instance.memory.read(ptr, length))
            instance.memory.store_int(nwritten_ptr, total, 4)
            return SUCCESS
        except WasiError as exc:
            return exc.errno

    def fd_read(instance: Instance, fd: int, iovs_ptr: int, iovs_len: int, nread_ptr: int) -> int:
        try:
            total = 0
            for ptr, length in _iovec_gather(instance.memory, iovs_ptr, iovs_len):
                data = env.vfs.fd_read(fd, length)
                instance.memory.write(ptr, data)
                total += len(data)
                if len(data) < length:
                    break
            instance.memory.store_int(nread_ptr, total, 4)
            return SUCCESS
        except WasiError as exc:
            return exc.errno

    def fd_seek(instance: Instance, fd: int, offset: int, whence: int, newoffset_ptr: int) -> int:
        try:
            new = env.vfs.fd_seek(fd, offset, whence)
            instance.memory.store_int(newoffset_ptr, new, 8)
            return SUCCESS
        except WasiError as exc:
            return exc.errno

    def fd_close(instance: Instance, fd: int) -> int:
        try:
            env.vfs.fd_close(fd)
            return SUCCESS
        except WasiError as exc:
            return exc.errno

    def fd_filestat_get(instance: Instance, fd: int, stat_ptr: int) -> int:
        try:
            size = env.vfs.fd_filesize(fd)
        except WasiError as exc:
            return exc.errno
        instance.memory.write(stat_ptr, bytes(64))
        instance.memory.store_int(stat_ptr + 32, size, 8)
        return SUCCESS

    def fd_prestat_get(instance: Instance, fd: int, prestat_ptr: int) -> int:
        index = fd - env.vfs.FIRST_PREOPEN_FD
        preopens = env.vfs.preopens()
        if not 0 <= index < len(preopens):
            return EBADF
        name = preopens[index].guest_path.encode("utf-8")
        instance.memory.store_int(prestat_ptr, 0, 4)              # tag: dir
        instance.memory.store_int(prestat_ptr + 4, len(name), 4)  # name length
        return SUCCESS

    def fd_prestat_dir_name(instance: Instance, fd: int, path_ptr: int, path_len: int) -> int:
        index = fd - env.vfs.FIRST_PREOPEN_FD
        preopens = env.vfs.preopens()
        if not 0 <= index < len(preopens):
            return EBADF
        name = preopens[index].guest_path.encode("utf-8")[:path_len]
        instance.memory.write(path_ptr, name)
        return SUCCESS

    register("fd_write", ["i32", "i32", "i32", "i32"], ["i32"], fd_write)
    register("fd_read", ["i32", "i32", "i32", "i32"], ["i32"], fd_read)
    register("fd_seek", ["i32", "i64", "i32", "i32"], ["i32"], fd_seek)
    register("fd_close", ["i32"], ["i32"], fd_close)
    register("fd_filestat_get", ["i32", "i32"], ["i32"], fd_filestat_get)
    register("fd_prestat_get", ["i32", "i32"], ["i32"], fd_prestat_get)
    register("fd_prestat_dir_name", ["i32", "i32", "i32"], ["i32"], fd_prestat_dir_name)

    # -------------------------------------------------------------------- paths

    def path_open(
        instance: Instance,
        dirfd: int,
        dirflags: int,
        path_ptr: int,
        path_len: int,
        oflags: int,
        rights_base: int,
        rights_inheriting: int,
        fdflags: int,
        fd_ptr: int,
    ) -> int:
        path = instance.memory.read(path_ptr, path_len).decode("utf-8", errors="replace")
        try:
            fd = env.vfs.path_open(
                dirfd,
                path,
                create=bool(oflags & OFLAG_CREAT),
                truncate=bool(oflags & OFLAG_TRUNC),
                append=bool(fdflags & FDFLAG_APPEND),
                read=bool(rights_base & RIGHT_FD_READ) or not (rights_base & RIGHT_FD_WRITE),
                write=bool(rights_base & RIGHT_FD_WRITE),
                directory=bool(oflags & OFLAG_DIRECTORY),
            )
            instance.memory.store_int(fd_ptr, fd, 4)
            return SUCCESS
        except WasiError as exc:
            return exc.errno

    def path_unlink_file(instance: Instance, dirfd: int, path_ptr: int, path_len: int) -> int:
        path = instance.memory.read(path_ptr, path_len).decode("utf-8", errors="replace")
        try:
            env.vfs.unlink(dirfd, path)
            return SUCCESS
        except WasiError as exc:
            return exc.errno

    register(
        "path_open",
        ["i32", "i32", "i32", "i32", "i32", "i64", "i64", "i32", "i32"],
        ["i32"],
        path_open,
    )
    register("path_unlink_file", ["i32", "i32", "i32"], ["i32"], path_unlink_file)

    # --------------------------------------------------------------------- proc

    def proc_exit(instance: Instance, code: int):
        env.exit_code = code
        instance.exit_code = code
        raise ExitTrap(code)

    register("proc_exit", ["i32"], [], proc_exit)

    def sched_yield(instance: Instance) -> int:
        return SUCCESS

    register("sched_yield", [], ["i32"], sched_yield)

    return imports
