"""WASI error numbers (``__wasi_errno_t``) used by the snapshot_preview1 API."""

from __future__ import annotations

# Subset of the WASI errno space that the virtual filesystem reports.
SUCCESS = 0
E2BIG = 1
EACCES = 2
EBADF = 8
EEXIST = 20
EINVAL = 28
EIO = 29
EISDIR = 31
ENOENT = 44
ENOSYS = 52
ENOTDIR = 54
ENOTEMPTY = 55
ENOTCAPABLE = 76

_NAMES = {
    SUCCESS: "ESUCCESS",
    E2BIG: "E2BIG",
    EACCES: "EACCES",
    EBADF: "EBADF",
    EEXIST: "EEXIST",
    EINVAL: "EINVAL",
    EIO: "EIO",
    EISDIR: "EISDIR",
    ENOENT: "ENOENT",
    ENOSYS: "ENOSYS",
    ENOTDIR: "ENOTDIR",
    ENOTEMPTY: "ENOTEMPTY",
    ENOTCAPABLE: "ENOTCAPABLE",
}


def errno_name(code: int) -> str:
    """Symbolic name of a WASI errno value (for diagnostics)."""
    return _NAMES.get(code, f"errno({code})")


class WasiError(Exception):
    """Internal exception carrying a WASI errno; converted to a return code."""

    def __init__(self, errno: int, message: str = ""):
        super().__init__(message or errno_name(errno))
        self.errno = errno
