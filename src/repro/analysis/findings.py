"""Shared findings model for the static-analysis layer (``repro.analysis``).

Every analyzer -- the cross-rank schedule checker, the lowered-IR verifier
and the project-invariant linter -- reports through the same three types so
one CLI can print, merge and JSON-encode their results uniformly:

* :class:`Severity` -- ``error`` (must fail the run), ``warning`` (reported,
  fails strict runs), ``note`` (informational: skipped points, context).
* :class:`Finding` -- one diagnostic with a machine-readable location.
  Locations are ``file:line`` strings for source findings, and analyzer
  coordinates (``bcast/binomial p=8 rank 3 step 5``) for artifact findings.
* :class:`Report` -- an ordered collection of findings with exit-code
  semantics (:attr:`Report.ok`) and a :meth:`Report.raise_if_error` hook for
  callers that want a typed exception instead of a result object.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional


class Severity(enum.Enum):
    """How bad a finding is; ordered so ``ERROR > WARNING > NOTE``."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "note": 0}[self.value]


@dataclass
class Finding:
    """One diagnostic produced by an analyzer.

    ``analyzer`` names the producing pass (``schedule``, ``ir``, ``lint``),
    ``rule`` the specific invariant (``deadlock-cycle``, ``bad-jump-target``,
    ``no-bare-except``); together with ``location`` they form the stable
    identity baselines and tests key on.
    """

    analyzer: str
    rule: str
    severity: Severity
    message: str
    location: str = ""
    details: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable form (the JSON output of the CLI)."""
        out: Dict[str, Any] = {
            "analyzer": self.analyzer,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location,
        }
        if self.details:
            out["details"] = dict(self.details)
        return out

    @property
    def key(self) -> str:
        """Stable identity used by lint baselines: rule + location."""
        return f"{self.rule}::{self.location}"

    def format(self) -> str:
        loc = f"{self.location}: " if self.location else ""
        return f"{self.severity.value}[{self.analyzer}/{self.rule}] {loc}{self.message}"


class Report:
    """Ordered findings plus the exit-code contract shared by all analyzers.

    ``ok`` is ``True`` when no finding is ``ERROR``-severity: notes (skipped
    sweep points, context lines) and plain warnings never fail a run on
    their own -- the CLI's ``--strict`` escalates warnings.
    """

    def __init__(self, findings: Optional[Iterable[Finding]] = None):
        self.findings: List[Finding] = list(findings or [])

    # --------------------------------------------------------------- building

    def add(
        self,
        analyzer: str,
        rule: str,
        severity: Severity,
        message: str,
        location: str = "",
        **details: Any,
    ) -> Finding:
        finding = Finding(analyzer, rule, severity, message, location, dict(details))
        self.findings.append(finding)
        return finding

    def error(self, analyzer: str, rule: str, message: str, location: str = "",
              **details: Any) -> Finding:
        return self.add(analyzer, rule, Severity.ERROR, message, location, **details)

    def warning(self, analyzer: str, rule: str, message: str, location: str = "",
                **details: Any) -> Finding:
        return self.add(analyzer, rule, Severity.WARNING, message, location, **details)

    def note(self, analyzer: str, rule: str, message: str, location: str = "",
             **details: Any) -> Finding:
        return self.add(analyzer, rule, Severity.NOTE, message, location, **details)

    def merge(self, other: "Report") -> "Report":
        self.findings.extend(other.findings)
        return self

    # -------------------------------------------------------------- inspection

    def by_severity(self, severity: Severity) -> List[Finding]:
        return [f for f in self.findings if f.severity is severity]

    @property
    def errors(self) -> List[Finding]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> List[Finding]:
        return self.by_severity(Severity.WARNING)

    @property
    def notes(self) -> List[Finding]:
        return self.by_severity(Severity.NOTE)

    @property
    def ok(self) -> bool:
        return not self.errors

    def counts(self) -> Dict[str, int]:
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "note": len(self.notes),
        }

    def exit_code(self, strict: bool = False) -> int:
        """CLI exit code: 1 on errors (or warnings under ``--strict``)."""
        if self.errors or (strict and self.warnings):
            return 1
        return 0

    # ------------------------------------------------------------------ output

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "counts": self.counts(),
            "findings": [f.to_dict() for f in self.findings],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def format_text(self, verbose: bool = False) -> str:
        """Human-readable listing, worst findings first; notes only when
        ``verbose`` (they describe coverage, not problems)."""
        shown = [f for f in self.findings if verbose or f.severity is not Severity.NOTE]
        shown.sort(key=lambda f: -f.severity.rank)
        lines = [f.format() for f in shown]
        counts = self.counts()
        summary = (
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['note']} note(s)"
        )
        lines.append(summary if lines else f"clean: {summary}")
        return "\n".join(lines)

    def raise_if_error(self, exc_type: type = RuntimeError, prefix: str = "") -> None:
        """Raise ``exc_type`` summarizing the error findings, if any."""
        if self.ok:
            return
        errors = self.errors
        head = "; ".join(f.format() for f in errors[:3])
        more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
        raise exc_type(f"{prefix}{head}{more}")

    def __len__(self) -> int:
        return len(self.findings)

    def __iter__(self):
        return iter(self.findings)
