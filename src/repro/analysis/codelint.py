"""AST-based project-invariant linter (stdlib ``ast`` only).

Each rule encodes an invariant this repo has already paid for in bugfixes --
the linter exists so those regressions stay fixed:

* ``no-wallclock-in-lock-code`` -- ``time.time()`` inside a function that
  deals in locks/deadlines/timeouts.  PR 8 replaced wall-clock deadline
  arithmetic with ``time.monotonic()`` after wall-clock adjustments produced
  spurious lock expiries; new timing code must not reintroduce it.
* ``env-reads-via-envvars`` -- ``os.environ`` / ``os.getenv`` anywhere but
  ``core/envvars.py``.  PR 5 consolidated every knob behind typed accessors
  so ``repro-harness campaign`` can enumerate and pin them; a stray read is
  an invisible knob.
* ``no-mutable-default-args`` -- the classic shared-state trap.
* ``no-bare-except`` -- swallows ``KeyboardInterrupt``/``SystemExit``; name
  an exception type (``Exception`` at the broadest).
* ``obs-fastpath-discipline`` -- calls on the trace ``RECORDER`` must sit
  under an ``ENABLED`` guard so the disabled-tracing fast path never
  constructs trace arguments (the PR 6 overhead contract: BENCH gates assume
  a sub-1% disabled-path cost).

Findings are baseline-gated: :func:`apply_baseline` demotes violations whose
stable key (``rule::relpath::qualname`` -- line numbers excluded, so pure
code motion never churns the baseline) appears in the checked-in
``.codelint-baseline.json`` to notes; anything new stays an error.  CI runs
``repro-harness analyze lint --self`` and fails on new violations only.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding, Report, Severity

#: Identifier fragments that mark a function as lock/deadline code for the
#: wall-clock rule.
_TIMING_HINTS = ("lock", "deadline", "timeout", "expire", "expiry", "stale")

#: Default baseline file name, resolved against the lint root.
BASELINE_NAME = ".codelint-baseline.json"

#: Files exempt from ``env-reads-via-envvars`` (the accessor module itself).
_ENV_EXEMPT_SUFFIX = ("core/envvars.py",)


def _qualname_stack(stack: Sequence[ast.AST]) -> str:
    names = [
        node.name
        for node in stack
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))
    ]
    return ".".join(names) or "<module>"


def _call_name(node: ast.Call) -> str:
    """Dotted name of a call target, best effort (``time.time``, ``getenv``)."""
    parts: List[str] = []
    cur = node.func
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
    return ".".join(reversed(parts))


class _FileLinter(ast.NodeVisitor):
    """One file's lint pass; accumulates findings with baseline keys."""

    def __init__(self, relpath: str, env_exempt: bool):
        self.relpath = relpath
        self.env_exempt = env_exempt
        self.findings: List[Finding] = []
        self._stack: List[ast.AST] = []        # enclosing class/function defs
        self._if_enabled_depth = 0             # inside an ENABLED-guarded if

    # ------------------------------------------------------------- reporting

    def _report(self, rule: str, node: ast.AST, message: str) -> None:
        qualname = _qualname_stack(self._stack)
        self.findings.append(Finding(
            analyzer="lint",
            rule=rule,
            severity=Severity.ERROR,
            message=message,
            location=f"{self.relpath}:{getattr(node, 'lineno', 0)}",
            details={"baseline_key": f"{rule}::{self.relpath}::{qualname}"},
        ))

    # ------------------------------------------------------------- traversal

    def _function_hints(self, node: ast.AST) -> bool:
        """Whether the enclosing function's identifiers mark timing code."""
        for anc in reversed(self._stack):
            if isinstance(anc, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if any(h in anc.name.lower() for h in _TIMING_HINTS):
                    return True
                for sub in ast.walk(anc):
                    name = None
                    if isinstance(sub, ast.Name):
                        name = sub.id
                    elif isinstance(sub, ast.Attribute):
                        name = sub.attr
                    elif isinstance(sub, ast.arg):
                        name = sub.arg
                    if name and any(h in name.lower() for h in _TIMING_HINTS):
                        return True
                return False
        return False

    def _visit_def(self, node) -> None:
        args = node.args
        defaults = list(args.defaults) + list(args.kw_defaults)
        for default in defaults:
            if default is None:
                continue
            if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and _call_name(default) in ("list", "dict", "set", "bytearray")
                and not default.args and not default.keywords
            ):
                self._stack.append(node)
                self._report(
                    "no-mutable-default-args", default,
                    f"mutable default argument in {node.name}() is shared "
                    "across calls; default to None and allocate inside",
                )
                self._stack.pop()
        self._stack.append(node)
        self.generic_visit(node)
        self._stack.pop()

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._stack.append(node)
        self.generic_visit(node)
        self._stack.pop()

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                "no-bare-except", node,
                "bare 'except:' also swallows KeyboardInterrupt/SystemExit; "
                "catch Exception (or narrower)",
            )
        self.generic_visit(node)

    @staticmethod
    def _mentions_enabled(test: ast.AST) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Name) and sub.id == "ENABLED":
                return True
            if isinstance(sub, ast.Attribute) and sub.attr == "ENABLED":
                return True
        return False

    def visit_If(self, node: ast.If) -> None:
        guarded = self._mentions_enabled(node.test)
        self.visit(node.test)
        if guarded:
            self._if_enabled_depth += 1
        for child in node.body:
            self.visit(child)
        if guarded:
            self._if_enabled_depth -= 1
        for child in node.orelse:
            self.visit(child)

    def visit_Call(self, node: ast.Call) -> None:
        name = _call_name(node)
        if name.endswith("time.time") or name == "time.time":
            if self._function_hints(node):
                self._report(
                    "no-wallclock-in-lock-code", node,
                    "time.time() in lock/deadline code jumps with wall-clock "
                    "adjustments; use time.monotonic()",
                )
        if not self.env_exempt and name in (
            "os.getenv", "getenv", "os.environ.get", "environ.get"
        ):
            self._report(
                "env-reads-via-envvars", node,
                f"{name}() bypasses core/envvars.py; add a typed accessor "
                "there so the knob is enumerable",
            )
        if ".RECORDER." in f".{name}." and self._if_enabled_depth == 0:
            self._report(
                "obs-fastpath-discipline", node,
                "RECORDER call without an ENABLED guard in scope: the "
                "disabled-tracing fast path must not construct trace args",
            )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        # os.environ["X"] reads (and writes -- equally invisible knobs).
        if not self.env_exempt and isinstance(node.value, ast.Attribute):
            if (node.value.attr == "environ"
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id == "os"):
                self._report(
                    "env-reads-via-envvars", node,
                    "os.environ[...] bypasses core/envvars.py; add a typed "
                    "accessor there so the knob is enumerable",
                )
        self.generic_visit(node)


def lint_source(source: str, relpath: str, report: Optional[Report] = None) -> Report:
    """Lint one file's source text; findings carry ``relpath:line`` locations."""
    report = report if report is not None else Report()
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        report.error("lint", "syntax-error", f"does not parse: {exc}",
                     f"{relpath}:{exc.lineno or 0}")
        return report
    env_exempt = any(relpath.endswith(sfx) for sfx in _ENV_EXEMPT_SUFFIX)
    linter = _FileLinter(relpath, env_exempt)
    linter.visit(tree)
    report.findings.extend(linter.findings)
    return report


def iter_python_files(root: Path) -> Iterable[Path]:
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" not in path.parts:
            yield path


def lint_paths(paths: Sequence[Path], root: Optional[Path] = None) -> Report:
    """Lint every ``.py`` file under ``paths``; locations are ``root``-relative."""
    report = Report()
    for base in paths:
        base = Path(base)
        rel_root = root if root is not None else (base if base.is_dir() else base.parent)
        for path in iter_python_files(base):
            try:
                relpath = path.relative_to(rel_root).as_posix()
            except ValueError:
                relpath = path.as_posix()
            lint_source(path.read_text(encoding="utf-8"), relpath, report)
    return report


# ------------------------------------------------------------------- baseline


def baseline_key(finding: Finding) -> str:
    return finding.details.get("baseline_key", finding.key)


def load_baseline(path: Path) -> List[str]:
    if not Path(path).exists():
        return []
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, list):
        raise ValueError(f"baseline {path} must be a JSON list of keys")
    return [str(k) for k in data]


def save_baseline(report: Report, path: Path) -> List[str]:
    """Write the sorted key set of ``report``'s lint errors as the baseline."""
    keys = sorted({
        baseline_key(f) for f in report.findings
        if f.analyzer == "lint" and f.severity is Severity.ERROR
    })
    Path(path).write_text(json.dumps(keys, indent=2) + "\n", encoding="utf-8")
    return keys


def apply_baseline(report: Report, baseline: Iterable[str]) -> Report:
    """Demote baselined violations to notes; new ones stay errors.

    Returns a new :class:`Report` (the input is not mutated).
    """
    allowed = set(baseline)
    out = Report()
    for finding in report.findings:
        if (finding.analyzer == "lint" and finding.severity is Severity.ERROR
                and baseline_key(finding) in allowed):
            out.add(finding.analyzer, finding.rule, Severity.NOTE,
                    f"baselined: {finding.message}", finding.location,
                    **finding.details)
        else:
            out.findings.append(finding)
    return out


def self_lint(repo_root: Optional[Path] = None,
              update_baseline: bool = False) -> Tuple[Report, Path]:
    """Lint this repo's ``src/`` tree against its checked-in baseline.

    Returns ``(baseline-applied report, baseline path)``; with
    ``update_baseline`` the current violations are written back first.
    """
    root = Path(repo_root) if repo_root is not None else _find_repo_root()
    src = root / "src"
    target = src if src.is_dir() else root
    report = lint_paths([target], root=root)
    baseline_path = root / BASELINE_NAME
    if update_baseline:
        save_baseline(report, baseline_path)
    return apply_baseline(report, load_baseline(baseline_path)), baseline_path


def _find_repo_root() -> Path:
    """The checkout root: nearest ancestor of this file holding ``src/``."""
    here = Path(__file__).resolve()
    for parent in here.parents:
        if (parent / "src").is_dir() and (parent / "src" / "repro").is_dir():
            return parent
    return Path.cwd()
