"""Cross-rank static analyzer for collective schedules.

For one ``(collective, algorithm, nranks, nbytes)`` point this module builds
*every* rank's :class:`~repro.mpi.algorithms.schedule.Schedule` from the
registered builder and verifies, without executing anything:

* **send/recv matching** -- every :class:`SendStep` pairs with exactly one
  :class:`RecvStep` on the peer (same byte count, FIFO order per
  ``(src, dst, tag)`` channel, exactly the matching-engine discipline the
  runtime uses); orphans on either side are errors.
* **deadlock freedom** -- sends are posted non-blocking by the executor, so
  only receives block; the cross-rank wait-for graph (program order per rank
  plus recv -> matching-send edges) is checked for cycles by a worklist
  topological traversal, and an offending cycle is printed rank by rank.
* **byte conservation** -- per rank, every byte a step reads (send payload,
  copy/reduce sources, the reduce accumulator) must have been written by an
  earlier step or be caller-initialized; temporaries start unwritten, so a
  read-before-write on a temp is an error, as is any buffer overrun.
* **result coverage** -- the collective's output buffer must be fully
  written on every rank that owns one (e.g. ``recv`` on an allgather rank,
  ``data`` on a non-root bcast rank).

The :func:`sweep` driver runs every registered builder across a log-spaced
rank set (up to 4096 by default).  Builders with O(p) steps per rank cost
O(p^2) total steps, which pure-Python construction cannot do at 4096 ranks
in reasonable time, so the sweep carries a per-point step budget: oversized
points are skipped with an explicit ``NOTE`` finding (never silently) and
``max_steps=0`` removes the cap.  ROADMAP item 3's hierarchical builders
should clear this sweep before registration (see docs/ANALYSIS.md).
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

# Importing the algorithms package registers every bundled schedule builder.
import repro.mpi.algorithms  # noqa: F401  (import for side effect)
from repro.analysis.findings import Report, Severity
from repro.mpi.algorithms.schedule import (
    _BUILDERS,
    CopyStep,
    RecvStep,
    ReduceStep,
    Schedule,
    SendStep,
)

#: Element size used when a byte count must be turned into an element count
#: for the reduction collectives (value is irrelevant to the invariants).
ESIZE = 4

#: Per-point construction budget (total steps across all ranks) used by the
#: default sweep; chosen so a full sweep stays minutes, not hours, while the
#: logarithmic-step algorithms still reach 4096 ranks.
DEFAULT_MAX_STEPS = 2_000_000

#: Collectives whose builder signature carries a root rank.
_ROOTED = ("bcast", "reduce")


def parse_nranks_spec(spec: str) -> List[int]:
    """Parse a ``--nranks`` spec into a sorted rank-count list.

    ``"8"`` one point; ``"2,3,8"`` a list; ``"2:64"`` every integer in the
    inclusive range; ``"2:4096:log"`` powers of two from lo to hi.
    """
    spec = spec.strip()
    if "," in spec:
        values = sorted({int(tok) for tok in spec.split(",") if tok.strip()})
    elif ":" in spec:
        parts = spec.split(":")
        if len(parts) == 2:
            lo, hi = int(parts[0]), int(parts[1])
            values = list(range(lo, hi + 1))
        elif len(parts) == 3 and parts[2] == "log":
            lo, hi = int(parts[0]), int(parts[1])
            values, p = [], max(2, lo)
            while p <= hi:
                values.append(p)
                p *= 2
        else:
            raise ValueError(f"bad nranks spec {spec!r} (want N, N,M,..., lo:hi or lo:hi:log)")
    else:
        values = [int(spec)]
    if not values or min(values) < 2:
        raise ValueError(f"bad nranks spec {spec!r}: rank counts must be >= 2")
    return values


#: Default sweep rank set: log-spaced to 4096 plus non-powers-of-two that
#: exercise the fold/unfold and uneven-chunk paths.
DEFAULT_SWEEP_NRANKS: Tuple[int, ...] = tuple(sorted(
    set(parse_nranks_spec("2:4096:log")) | {3, 5, 6, 7, 12, 25, 100}
))

#: Default payload sizes: a degenerate single element and a multi-chunk one.
DEFAULT_NBYTES: Tuple[int, ...] = (4, 4096)


def registered_points() -> List[Tuple[str, str]]:
    """Every registered ``(collective, algorithm)`` with a schedule builder."""
    return sorted(_BUILDERS)


def build_schedule(collective: str, algorithm: str, rank: int, size: int,
                   nbytes: int, root: int = 0, seq: int = 0) -> Schedule:
    """Build one rank's schedule through the registered builder, adapting
    ``nbytes`` to the per-collective builder signature."""
    builder = _BUILDERS[(collective, algorithm)]
    if collective == "barrier":
        return builder(rank, size, seq)
    if collective == "bcast":
        return builder(rank, size, nbytes, root, seq)
    if collective == "reduce":
        return builder(rank, size, max(1, nbytes // ESIZE), ESIZE, root, seq)
    if collective == "allreduce":
        return builder(rank, size, max(1, nbytes // ESIZE), ESIZE, seq)
    if collective in ("allgather", "alltoall"):
        return builder(rank, size, nbytes, seq)
    raise KeyError(f"no builder signature adapter for collective {collective!r}")


def _payload_bytes(collective: str, nbytes: int) -> int:
    """Bytes actually carried per rank once ``nbytes`` is element-rounded."""
    if collective in ("reduce", "allreduce"):
        return max(1, nbytes // ESIZE) * ESIZE
    return nbytes


def _rank_buffers(collective: str, rank: int, size: int, nbytes: int, root: int):
    """Caller-buffer contract of one rank: (known sizes, prewritten, output).

    ``known`` maps buffer name -> byte size for every caller-supplied buffer;
    ``prewritten`` names the ones the caller initializes (readable from step
    0); ``output`` is the ``(name, size)`` the collective must fully write on
    this rank (``None`` when the rank produces no result, e.g. non-root
    reduce), with prewritten outputs treated as already covered.
    """
    payload = _payload_bytes(collective, nbytes)
    if collective == "barrier":
        return {}, frozenset(), None
    if collective == "bcast":
        known = {"data": payload}
        pre = frozenset(["data"]) if rank == root else frozenset()
        return known, pre, ("data", payload)
    if collective == "reduce":
        known = {"acc": payload}
        out = None
        if rank == root:
            known["recv"] = payload
            out = ("recv", payload)
        return known, frozenset(["acc"]), out
    if collective == "allreduce":
        return {"acc": payload}, frozenset(["acc"]), ("acc", payload)
    if collective == "allgather":
        known = {"send": payload, "recv": size * payload}
        return known, frozenset(["send"]), ("recv", size * payload)
    if collective == "alltoall":
        known = {"send": size * payload, "recv": size * payload}
        return known, frozenset(["send"]), ("recv", size * payload)
    raise KeyError(f"no buffer contract for collective {collective!r}")


class _IntervalSet:
    """Sorted, merged half-open byte intervals with coverage queries."""

    __slots__ = ("_starts", "_ends")

    def __init__(self, full: Optional[int] = None):
        self._starts: List[int] = []
        self._ends: List[int] = []
        if full is not None and full > 0:
            self._starts.append(0)
            self._ends.append(full)

    def add(self, lo: int, hi: int) -> None:
        if hi <= lo:
            return
        i = bisect.bisect_left(self._ends, lo)          # first interval ending >= lo
        j = bisect.bisect_right(self._starts, hi)       # first interval starting > hi
        if i < j:  # overlaps/touches intervals [i, j)
            lo = min(lo, self._starts[i])
            hi = max(hi, self._ends[j - 1])
        self._starts[i:j] = [lo]
        self._ends[i:j] = [hi]

    def covers(self, lo: int, hi: int) -> bool:
        if hi <= lo:
            return True
        i = bisect.bisect_right(self._starts, lo) - 1
        return i >= 0 and self._ends[i] >= hi

    def missing(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Sub-intervals of ``[lo, hi)`` not covered by this set."""
        gaps: List[Tuple[int, int]] = []
        pos = lo
        i = bisect.bisect_right(self._ends, lo)
        while pos < hi and i < len(self._starts):
            s, e = self._starts[i], self._ends[i]
            if s > pos:
                gaps.append((pos, min(s, hi)))
            pos = max(pos, e)
            i += 1
        if pos < hi:
            gaps.append((pos, hi))
        return gaps


class _RankComms:
    """One rank's communication steps: what cross-rank analysis retains."""

    __slots__ = ("sends", "recvs", "n_steps")

    def __init__(self) -> None:
        self.sends: List[Tuple[int, SendStep]] = []   # (flat pc, step)
        self.recvs: List[Tuple[int, RecvStep]] = []
        self.n_steps = 0


def _check_rank_local(
    report: Report,
    loc: str,
    rank: int,
    schedule: Schedule,
    known: Dict[str, int],
    prewritten: frozenset,
    output: Optional[Tuple[str, int]],
) -> _RankComms:
    """Single in-order pass over one rank's steps: byte conservation,
    bounds, and result coverage; returns the retained comm steps."""
    written: Dict[str, _IntervalSet] = {}
    sizes = dict(known)
    for name, size in schedule.temps.items():
        sizes[name] = max(sizes.get(name, 0), size)
    for name in prewritten:
        written[name] = _IntervalSet(full=sizes.get(name, 0))

    def _where(pc: int, step) -> str:
        return f"{loc} rank {rank} step {pc} [{step.describe()}]"

    def _check_ref(pc, step, name, lo, hi, reads: bool, writes: bool) -> None:
        size = sizes.get(name)
        if size is None:
            report.error("schedule", "undeclared-buffer",
                         f"references buffer {name!r} never declared or supplied",
                         _where(pc, step))
            return
        if lo < 0 or hi > size:
            report.error("schedule", "buffer-overrun",
                         f"touches {name}[{lo}:{hi}) outside its {size} bytes",
                         _where(pc, step))
            return
        if reads and hi > lo:
            ivs = written.get(name)
            if ivs is None or not ivs.covers(lo, hi):
                gaps = [] if ivs is None else ivs.missing(lo, hi)
                gap_text = ", ".join(f"[{a}:{b})" for a, b in (gaps or [(lo, hi)])[:4])
                report.error("schedule", "read-before-write",
                             f"reads {name}[{lo}:{hi}) before bytes {gap_text} "
                             "were written", _where(pc, step))
        if writes and hi > lo:
            written.setdefault(name, _IntervalSet()).add(lo, hi)

    comms = _RankComms()
    flat = schedule.flat()
    comms.n_steps = len(flat)
    for pc, step in enumerate(flat):
        if isinstance(step, SendStep):
            if step.buf is not None:
                _check_ref(pc, step, step.buf, step.lo, step.lo + step.nbytes,
                           reads=True, writes=False)
            comms.sends.append((pc, step))
        elif isinstance(step, RecvStep):
            if step.buf is not None:
                _check_ref(pc, step, step.buf, step.lo, step.lo + step.nbytes,
                           reads=False, writes=True)
            comms.recvs.append((pc, step))
        elif isinstance(step, CopyStep):
            _check_ref(pc, step, step.src, step.slo, step.slo + step.nbytes,
                       reads=True, writes=False)
            _check_ref(pc, step, step.dst, step.dlo, step.dlo + step.nbytes,
                       reads=False, writes=True)
        elif isinstance(step, ReduceStep):
            nbytes = step.count * ESIZE
            dlo = step.elem_offset * ESIZE
            _check_ref(pc, step, step.src, step.slo, step.slo + nbytes,
                       reads=True, writes=False)
            # The accumulator is read *and* written: combining into
            # uninitialized bytes is exactly the bug this check exists for.
            _check_ref(pc, step, step.dst, dlo, dlo + nbytes,
                       reads=True, writes=True)
        else:
            report.error("schedule", "unknown-step",
                         f"unrecognized step type {type(step).__name__}",
                         f"{loc} rank {rank} step {pc}")

    if output is not None:
        name, size = output
        ivs = written.get(name)
        gaps = ivs.missing(0, size) if ivs is not None else ([(0, size)] if size else [])
        if gaps:
            gap_text = ", ".join(f"[{a}:{b})" for a, b in gaps[:4])
            more = f" (+{len(gaps) - 4} more gaps)" if len(gaps) > 4 else ""
            report.error("schedule", "incomplete-result",
                         f"output buffer {name!r} ({size} bytes) is never written "
                         f"at {gap_text}{more}", f"{loc} rank {rank}")
    return comms


def _check_cross_rank(report: Report, loc: str, comms: List[_RankComms]) -> None:
    """Send/recv matching and deadlock freedom across all ranks."""
    p = len(comms)

    # ------------------------------------------------ channel-FIFO matching
    send_groups: Dict[Tuple[int, int, int], List[Tuple[int, SendStep]]] = {}
    recv_groups: Dict[Tuple[int, int, int], List[Tuple[int, RecvStep]]] = {}
    for rank, comm in enumerate(comms):
        for pc, step in comm.sends:
            if not 0 <= step.peer < p or step.peer == rank:
                report.error("schedule", "bad-peer",
                             f"send peer {step.peer} invalid for {p} ranks",
                             f"{loc} rank {rank} step {pc} [{step.describe()}]")
                continue
            send_groups.setdefault((rank, step.peer, step.tag), []).append((pc, step))
        for pc, step in comm.recvs:
            if not 0 <= step.peer < p or step.peer == rank:
                report.error("schedule", "bad-peer",
                             f"recv peer {step.peer} invalid for {p} ranks",
                             f"{loc} rank {rank} step {pc} [{step.describe()}]")
                continue
            recv_groups.setdefault((step.peer, rank, step.tag), []).append((pc, step))

    # recv_match[dst][k] = (recv pc, sender rank, sender pc, send step, recv step)
    recv_match: List[List[Tuple[int, Optional[int], int, Optional[SendStep], RecvStep]]] = [
        [] for _ in range(p)
    ]
    orphans = 0
    for key in sorted(set(send_groups) | set(recv_groups)):
        src, dst, tag = key
        sends = send_groups.get(key, [])
        recvs = recv_groups.get(key, [])
        for k in range(max(len(sends), len(recvs))):
            send = sends[k] if k < len(sends) else None
            recv = recvs[k] if k < len(recvs) else None
            if send is None:
                orphans += 1
                if orphans <= 8:
                    report.error(
                        "schedule", "orphan-recv",
                        f"no matching send on rank {src} (tag {tag})",
                        f"{loc} rank {dst} step {recv[0]} [{recv[1].describe()}]")
                recv_match[dst].append((recv[0], None, -1, None, recv[1]))
                continue
            if recv is None:
                orphans += 1
                if orphans <= 8:
                    report.error(
                        "schedule", "orphan-send",
                        f"no matching recv on rank {dst} (tag {tag})",
                        f"{loc} rank {src} step {send[0]} [{send[1].describe()}]")
                continue
            if send[1].nbytes != recv[1].nbytes:
                report.error(
                    "schedule", "bytes-mismatch",
                    f"send of {send[1].nbytes} bytes [{send[1].describe()}] meets "
                    f"recv of {recv[1].nbytes} bytes on rank {dst} "
                    f"[{recv[1].describe()}]",
                    f"{loc} rank {src} step {send[0]}")
            recv_match[dst].append((recv[0], src, send[0], send[1], recv[1]))
    if orphans > 8:
        report.error("schedule", "orphan-send",
                     f"...{orphans - 8} further unmatched sends/recvs suppressed", loc)
    for entry in recv_match:
        entry.sort()

    # --------------------------------------------------- deadlock simulation
    # Only receives block (the executor posts sends eagerly), so a rank's
    # progress is its index into its ordered recv list; a recv fires once its
    # matching send's rank has executed past the send.  This worklist is
    # Kahn's topological sort specialized to the wait-for graph; leftovers
    # are the ranks on (or behind) a cycle.
    idx = [0] * p
    n_recvs = [len(entry) for entry in recv_match]

    def flat_pc(r: int) -> int:
        return recv_match[r][idx[r]][0] if idx[r] < n_recvs[r] else comms[r].n_steps

    waiters: Dict[int, List[int]] = {}
    stack = list(range(p))
    queued = [True] * p
    while stack:
        r = stack.pop()
        queued[r] = False
        progressed = False
        while idx[r] < n_recvs[r]:
            _pc, src, src_pc, _send, _recv = recv_match[r][idx[r]]
            if src is None:
                break  # unmatched receive: permanently stalled (orphan above)
            if flat_pc(src) > src_pc:
                idx[r] += 1
                progressed = True
            else:
                waiters.setdefault(src, []).append(r)
                break
        if progressed:
            for w in waiters.pop(r, ()):  # senders advanced: re-check waiters
                if not queued[w]:
                    queued[w] = True
                    stack.append(w)

    stuck = [r for r in range(p) if idx[r] < n_recvs[r]]
    if not stuck:
        return
    # Walk the wait-for chain from any stuck rank; in a finite stuck set it
    # must either revisit a rank (a cycle) or end at an orphan stall.
    seen: Dict[int, int] = {}
    chain: List[int] = []
    r = stuck[0]
    while r is not None and r not in seen:
        seen[r] = len(chain)
        chain.append(r)
        r = recv_match[r][idx[r]][1]
    if r is None:
        report.error("schedule", "deadlock-orphan",
                     f"{len(stuck)} rank(s) can never finish: the wait chain "
                     f"ends at rank {chain[-1]}'s unmatched receive", loc)
        return
    cycle = chain[seen[r]:]
    lines = [f"deadlock: cyclic wait across {len(cycle)} rank(s) "
             f"({len(stuck)} rank(s) stuck in total):"]
    for rank in cycle:
        pc, src, src_pc, send, recv = recv_match[rank][idx[rank]]
        lines.append(
            f"  rank {rank} waits at step {pc} [{recv.describe()}] for "
            f"rank {src} to post step {src_pc} [{send.describe()}]")
    report.error("schedule", "deadlock-cycle", "\n".join(lines), loc,
                 cycle=cycle, stuck_ranks=len(stuck))


def check_schedules(
    schedules: Sequence[Schedule],
    collective: str,
    nbytes: int,
    root: int = 0,
    loc: str = "",
    report: Optional[Report] = None,
) -> Report:
    """Statically verify already-built per-rank schedules (rank = index).

    The mutation tests use this entry point directly: build a clean point,
    corrupt one rank's schedule, and assert the right finding appears.
    """
    report = report if report is not None else Report()
    p = len(schedules)
    comms: List[_RankComms] = []
    for rank, schedule in enumerate(schedules):
        known, prewritten, output = _rank_buffers(collective, rank, p, nbytes, root)
        comms.append(_check_rank_local(report, loc, rank, schedule,
                                       known, prewritten, output))
    _check_cross_rank(report, loc, comms)
    return report


def check_point(
    collective: str,
    algorithm: str,
    nranks: int,
    nbytes: int = 1024,
    root: int = 0,
    seq: int = 0,
    report: Optional[Report] = None,
    max_steps: int = 0,
) -> Report:
    """Build and verify one ``(collective, algorithm, nranks, nbytes)`` point.

    ``max_steps`` bounds total construction cost (0 = unlimited); an aborted
    point is recorded as a ``NOTE`` finding, never silently dropped.
    """
    report = report if report is not None else Report()
    loc = f"{collective}/{algorithm} p={nranks} nbytes={nbytes}"
    if collective in _ROOTED and root:
        loc += f" root={root}"
    report_start = len(report.findings)
    comms: List[_RankComms] = []
    total = 0
    for rank in range(nranks):
        schedule = build_schedule(collective, algorithm, rank, nranks, nbytes, root, seq)
        total += schedule.n_steps
        if max_steps and total > max_steps:
            del report.findings[report_start:]  # partial local findings
            report.note("schedule", "point-skipped",
                        f"skipped: more than {max_steps} total steps "
                        f"(aborted at rank {rank}/{nranks}); raise --max-steps "
                        "to force", loc)
            return report
        known, prewritten, output = _rank_buffers(collective, rank, nranks, nbytes, root)
        comms.append(_check_rank_local(report, loc, rank, schedule,
                                       known, prewritten, output))
    _check_cross_rank(report, loc, comms)
    return report


def _estimated_oversized(collective: str, algorithm: str, nranks: int,
                         nbytes: int, root: int, max_steps: int) -> bool:
    """Cheap pre-filter: a sound *lower bound* on the point's total steps.

    Samples a few ranks and multiplies the smallest per-rank step count by
    ``nranks`` -- only skips points that are certainly over budget (e.g.
    symmetric O(p)-per-rank builders), never asymmetric false positives like
    ``barrier/linear`` where one rank is heavy and the rest are O(1).
    """
    if not max_steps:
        return False
    sample = sorted({0, 1, nranks // 2, nranks - 1})
    n_min = min(
        build_schedule(collective, algorithm, rank, nranks, nbytes, root).n_steps
        for rank in sample
    )
    return n_min * nranks > max_steps


def sweep(
    collectives: Optional[Iterable[str]] = None,
    algorithms: Optional[Iterable[str]] = None,
    nranks: Optional[Iterable[int]] = None,
    nbytes_list: Iterable[int] = DEFAULT_NBYTES,
    max_steps: int = DEFAULT_MAX_STEPS,
    report: Optional[Report] = None,
) -> Report:
    """Verify every registered builder across a rank/payload grid.

    Root-carrying collectives are additionally checked with non-zero roots at
    small rank counts (root-dependence bugs do not need 4096 ranks to show).
    Emits one summary ``NOTE`` with the checked/skipped point counts.
    """
    report = report if report is not None else Report()
    nranks = list(nranks) if nranks is not None else list(DEFAULT_SWEEP_NRANKS)
    nbytes_list = list(nbytes_list)
    checked = skipped = 0
    for collective, algorithm in registered_points():
        if collectives is not None and collective not in collectives:
            continue
        if algorithms is not None and algorithm not in algorithms:
            continue
        for p in nranks:
            roots = [0]
            if collective in _ROOTED and p <= 33:
                roots = sorted({0, 1, p - 1})
            for nbytes in nbytes_list:
                for root in roots:
                    loc = f"{collective}/{algorithm} p={p} nbytes={nbytes}"
                    if _estimated_oversized(collective, algorithm, p, nbytes,
                                            root, max_steps):
                        skipped += 1
                        report.note("schedule", "point-skipped",
                                    f"skipped: at least {p} x per-rank steps "
                                    f"> {max_steps}; raise --max-steps to force",
                                    loc)
                        continue
                    before = len(report.notes)
                    check_point(collective, algorithm, p, nbytes, root,
                                report=report, max_steps=max_steps)
                    if len(report.notes) > before:
                        skipped += 1
                    else:
                        checked += 1
    report.note("schedule", "sweep-summary",
                f"checked {checked} point(s), skipped {skipped} over-budget "
                f"point(s) across {len(registered_points())} builder(s)")
    return report


#: Names exported on the flat ``repro.api`` surface, where ``check_point`` /
#: ``sweep`` would be ambiguous.
check_schedule_point = check_point
schedule_sweep = sweep
