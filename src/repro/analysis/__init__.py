"""``repro.analysis`` -- the static verification layer.

Three analyzers over the artifacts the runtime otherwise trusts, sharing one
findings model (:mod:`repro.analysis.findings`) and one CLI
(``repro-harness analyze`` / ``python -m repro.analysis``):

* :mod:`repro.analysis.schedule_check` -- cross-rank verification of the
  libNBC-style collective schedules: send/recv matching, deadlock-freedom
  (wait-for-graph acyclicity with the cycle printed rank by rank), byte
  conservation, and result-buffer coverage, swept over every registered
  builder up to 4096 ranks without executing anything.
* :mod:`repro.analysis.ir_verify` -- structural verification of lowered-IR
  artifacts and mined fusion tables before the interpreter links them;
  wired into ``deserialize_lowered(verify=True)`` for cache loads.
* :mod:`repro.analysis.codelint` -- AST linter for invariants this repo has
  already paid for in bugfixes (monotonic clocks in lock code, env reads
  via ``core/envvars.py``, obs fast-path discipline, ...), baseline-gated.
* :mod:`repro.analysis.checkpoint_verify` -- document-level verification of
  :mod:`repro.fault.checkpoint` snapshots (digest, rank coverage, executor
  position bounds, memory-image consistency) without resuming them.

The findings types are eagerly importable; the analyzers themselves load
lazily so ``import repro.analysis`` stays cheap (the schedule checker pulls
in the full algorithms registry).
"""

from __future__ import annotations

from repro.analysis.findings import Finding, Report, Severity

__all__ = [
    "Finding",
    "Report",
    "Severity",
    "checkpoint_verify",
    "codelint",
    "findings",
    "ir_verify",
    "schedule_check",
    "verify_checkpoint",
]


def __getattr__(name: str):
    if name in ("checkpoint_verify", "codelint", "findings", "ir_verify",
                "schedule_check"):
        import importlib

        return importlib.import_module(f"repro.analysis.{name}")
    if name == "verify_checkpoint":
        from repro.analysis.checkpoint_verify import verify_checkpoint

        return verify_checkpoint
    raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")
