"""Static verification of checkpoint documents (``repro.fault.checkpoint``).

``repro-harness analyze checkpoint <path>`` validates a snapshot *without*
resuming it: file integrity (format marker, version, content digest), shape
(rank coverage against the declared world size), per-rank executor position
invariants, and guest-state consistency (the embedded linear-memory image
must decompress to exactly ``memory_pages`` Wasm pages and hash to the
stored digest).  A checkpoint that passes here can still diverge at
replay-validation time -- this pass proves the *document* is internally
consistent, which is the cheap half of restore safety and the half a CI job
can run on archived snapshots.
"""

from __future__ import annotations

import base64
import binascii
import json
import zlib
from pathlib import Path

from repro.analysis.findings import Report
from repro.fault.checkpoint import FORMAT, VERSION, _digest_bytes, content_digest

#: Bytes per Wasm linear-memory page (the spec constant).
PAGE_SIZE = 65536

ANALYZER = "checkpoint"


def _verify_executor(report: Report, state: dict, loc: str) -> None:
    executor = state.get("executor")
    if not isinstance(executor, dict):
        report.error(ANALYZER, "missing-executor",
                     "rank state carries no schedule-executor snapshot", loc)
        return
    pc = executor.get("pc")
    n_steps = executor.get("n_steps")
    if not isinstance(pc, int) or not isinstance(n_steps, int):
        report.error(ANALYZER, "bad-executor-state",
                     f"executor pc/n_steps must be integers, got {pc!r}/{n_steps!r}", loc)
        return
    if not 0 <= pc <= n_steps:
        report.error(ANALYZER, "pc-out-of-bounds",
                     f"executor pc {pc} outside [0, {n_steps}]", loc,
                     pc=pc, n_steps=n_steps)
    done = pc >= n_steps
    round_no = executor.get("round")
    if done and round_no != -1:
        report.error(ANALYZER, "round-after-done",
                     f"finished executor (pc={pc}) still reports round {round_no}", loc)
    if not done and (not isinstance(round_no, int) or round_no < 0):
        report.error(ANALYZER, "bad-round",
                     f"in-flight executor reports invalid round {round_no!r}", loc)
    if executor.get("finished") and not done:
        report.error(ANALYZER, "finished-before-done",
                     f"executor marked finished with pc {pc} of {n_steps} steps", loc)
    data_time = executor.get("data_time")
    if not isinstance(data_time, (int, float)) or data_time < 0:
        report.error(ANALYZER, "bad-data-time",
                     f"executor data_time {data_time!r} is not a non-negative number", loc)


def _verify_guest(report: Report, guest: dict, loc: str) -> None:
    pages = guest.get("memory_pages", 0)
    if not isinstance(pages, int) or pages < 0:
        report.error(ANALYZER, "bad-memory-pages",
                     f"memory_pages {pages!r} is not a non-negative integer", loc)
        return
    encoded = guest.get("memory_b64")
    if encoded is None:
        report.note(ANALYZER, "digest-only-memory",
                    "snapshot keeps only the memory digest (replay-validation "
                    "form); write-back restore is not possible from it", loc)
        return
    try:
        raw = zlib.decompress(base64.b64decode(encoded))
    except (binascii.Error, ValueError, zlib.error) as exc:
        report.error(ANALYZER, "bad-memory-image",
                     f"memory_b64 does not decode: {exc}", loc)
        return
    expected = pages * PAGE_SIZE
    if len(raw) != expected:
        report.error(ANALYZER, "memory-size-mismatch",
                     f"memory image is {len(raw)} bytes but {pages} pages "
                     f"declare {expected}", loc,
                     image_bytes=len(raw), memory_pages=pages)
    digest = guest.get("memory_digest")
    if digest and _digest_bytes(raw) != digest:
        report.error(ANALYZER, "memory-digest-mismatch",
                     "memory image does not hash to the stored memory_digest", loc)


def _verify_rank(report: Report, state: dict, nranks: int, loc_prefix: str) -> None:
    rank = state.get("rank")
    loc = f"{loc_prefix} rank {rank}"
    if not isinstance(rank, int) or not 0 <= rank < max(nranks, 1):
        report.error(ANALYZER, "rank-out-of-range",
                     f"rank {rank!r} outside the declared world of {nranks}", loc)
    clock = state.get("clock")
    if not isinstance(clock, (int, float)) or clock < 0:
        report.error(ANALYZER, "bad-clock",
                     f"rank clock {clock!r} is not a non-negative number", loc)
    _verify_executor(report, state, loc)
    for i, request in enumerate(state.get("requests") or []):
        if not isinstance(request, dict) or "kind" not in request or "complete" not in request:
            report.error(ANALYZER, "bad-request-state",
                         f"request #{i} must record 'kind' and 'complete', "
                         f"got {request!r}", loc)
    guest = state.get("guest")
    if guest is None:
        report.note(ANALYZER, "no-guest-state",
                    "rank captured without an instance snapshot "
                    "(native mode, or capture before instantiation)", loc)
    else:
        _verify_guest(report, guest, loc)


def verify_payload(payload: dict, report: Report, location: str) -> None:
    """Verify one already-parsed checkpoint payload into ``report``."""
    if payload.get("format") != FORMAT:
        report.error(ANALYZER, "bad-format",
                     f"not a {FORMAT} document (format={payload.get('format')!r})",
                     location)
        return
    if payload.get("version") != VERSION:
        report.error(ANALYZER, "unsupported-version",
                     f"checkpoint version {payload.get('version')!r}; this build "
                     f"reads version {VERSION}", location)
        return
    stored = payload.get("digest")
    if stored is None:
        report.error(ANALYZER, "missing-digest",
                     "payload carries no content digest", location)
    elif stored != content_digest(payload):
        report.error(ANALYZER, "digest-mismatch",
                     f"stored digest {stored} does not match the payload",
                     location)
    nranks = payload.get("nranks")
    if not isinstance(nranks, int) or nranks < 1:
        report.error(ANALYZER, "bad-nranks",
                     f"nranks {nranks!r} is not a positive integer", location)
        nranks = 0
    ranks = payload.get("ranks")
    if not isinstance(ranks, list) or not ranks:
        report.error(ANALYZER, "no-rank-states",
                     "checkpoint captured no per-rank states", location)
        return
    seen = [s.get("rank") for s in ranks if isinstance(s, dict)]
    duplicates = sorted({r for r in seen if seen.count(r) > 1})
    if duplicates:
        report.error(ANALYZER, "duplicate-rank",
                     f"rank state(s) {duplicates} appear more than once", location)
    if nranks and len(set(seen)) < nranks:
        missing = sorted(set(range(nranks)) - set(seen))
        report.warning(ANALYZER, "partial-capture",
                       f"{len(set(seen))} of {nranks} ranks captured "
                       f"(missing {missing}); resume validation only covers "
                       "captured ranks", location)
    for state in ranks:
        if isinstance(state, dict):
            _verify_rank(report, state, nranks, location)
    if not payload.get("job"):
        report.warning(ANALYZER, "no-job-descriptor",
                       "checkpoint has no job descriptor; "
                       "resume_from_checkpoint cannot replay it", location)
    report.note(ANALYZER, "verified",
                f"{len(ranks)} rank state(s) at round crossing "
                f"{payload.get('at_round')}", location)


def verify_checkpoint(path) -> Report:
    """Verify the checkpoint file at ``path``; returns the findings report."""
    report = Report()
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        report.error(ANALYZER, "unreadable", f"cannot read file: {exc}", str(path))
        return report
    except ValueError as exc:
        report.error(ANALYZER, "not-json", f"not valid JSON: {exc}", str(path))
        return report
    if not isinstance(payload, dict):
        report.error(ANALYZER, "bad-format",
                     f"top-level JSON value is {type(payload).__name__}, "
                     "expected an object", str(path))
        return report
    verify_payload(payload, report, str(path))
    return report
