"""Command line driver for the static-analysis layer.

Mounted as ``repro-harness analyze`` and runnable standalone as
``python -m repro.analysis``.  Four subcommands mirror the four analyzers:

* ``analyze schedules`` -- build every per-rank schedule of the selected
  (or all) registered collective algorithms across a rank/payload grid and
  statically verify matching, deadlock-freedom, byte conservation, and
  result coverage.  The acceptance sweep is
  ``repro-harness analyze schedules --all --nranks 2:4096:log``.
* ``analyze ir`` -- verify lowered-IR artifacts: cached ``*.mpiwasm`` files,
  directories of them, or ``.wasm``/``.wat`` sources (compiled in-process,
  then verified) -- the CI pass runs this over the bench-smoke modules.
* ``analyze checkpoint`` -- verify :mod:`repro.fault.checkpoint` snapshot
  documents (digest, rank coverage, executor bounds, memory image) without
  resuming them.
* ``analyze lint`` -- the project-invariant linter over source trees;
  ``--self`` (or top-level ``--self-lint``) lints this repo's ``src/``
  against the checked-in ``.codelint-baseline.json``.

Every subcommand accepts ``--json`` (machine-readable report), ``--verbose``
(include notes) and ``--strict`` (warnings also fail), and exits non-zero
exactly when the merged report contains errors (or warnings under
``--strict``).
"""

from __future__ import annotations

import argparse
import json
import pickle
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.findings import Report


def _finish(report: Report, args: argparse.Namespace) -> int:
    if getattr(args, "json", False):
        print(report.to_json())
    else:
        print(report.format_text(verbose=getattr(args, "verbose", False)))
    return report.exit_code(strict=getattr(args, "strict", False))


# ------------------------------------------------------------------ schedules


def _cmd_schedules(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.analysis import schedule_check

    nranks = None
    if args.nranks:
        try:
            nranks = schedule_check.parse_nranks_spec(args.nranks)
        except ValueError as exc:
            parser.error(str(exc))
    collectives = set(args.collective) if args.collective else None
    algorithms = set(args.algorithm) if args.algorithm else None
    if not args.all and collectives is None and algorithms is None:
        parser.error("select builders with --collective/--algorithm, or pass --all")
    nbytes = [int(tok) for tok in args.nbytes.split(",") if tok.strip()]
    report = schedule_check.sweep(
        collectives=collectives,
        algorithms=algorithms,
        nranks=nranks,
        nbytes_list=nbytes,
        max_steps=args.max_steps,
    )
    return _finish(report, args)


# ------------------------------------------------------------------------- ir


def _artifact_paths(paths: Sequence[str], parser: argparse.ArgumentParser) -> List[Path]:
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.glob("*.mpiwasm")))
        elif path.exists():
            out.append(path)
        else:
            parser.error(f"no such file or directory: {raw}")
    return out


def _verify_ir_path(path: Path, report: Report) -> None:
    from repro.analysis import ir_verify

    if path.suffix in (".wasm", ".wat"):
        from repro.wasm import decode_module, validate_module
        from repro.wasm.lowering import lower_module, serialize_lowered

        try:
            module = decode_module(path.read_bytes())
            validate_module(module)
            payload = serialize_lowered(lower_module(module))
        except Exception as exc:
            report.error("ir", "module-error",
                         f"cannot compile module for verification: {exc}", str(path))
            return
        ir_verify.verify_payload(payload, report, str(path))
        return
    try:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
    except Exception as exc:
        report.error("ir", "bad-artifact-file", f"cannot unpickle: {exc}", str(path))
        return
    # Cache files wrap the artifact in run metadata; accept both forms.
    if isinstance(payload, dict) and "artifact" in payload and "kind" not in payload:
        payload = payload["artifact"]
    ir_verify.verify_payload(payload, report, str(path))


def _cmd_ir(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    report = Report()
    paths = _artifact_paths(args.paths, parser)
    if not paths:
        report.note("ir", "no-artifacts", "no artifacts matched the given paths")
    for path in paths:
        _verify_ir_path(path, report)
    return _finish(report, args)


# ----------------------------------------------------------------- checkpoint


def _cmd_checkpoint(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.analysis import checkpoint_verify

    report = Report()
    for raw in args.paths:
        path = Path(raw)
        if path.is_dir():
            found = sorted(path.glob("*.ckpt.json"))
            if not found:
                report.note("checkpoint", "no-checkpoints",
                            "directory holds no *.ckpt.json files", str(path))
            for file in found:
                report.merge(checkpoint_verify.verify_checkpoint(file))
        else:
            report.merge(checkpoint_verify.verify_checkpoint(path))
    return _finish(report, args)


# ----------------------------------------------------------------------- lint


def _cmd_lint(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.analysis import codelint

    if args.self or not args.paths:
        report, baseline_path = codelint.self_lint(update_baseline=args.update_baseline)
        if args.update_baseline:
            print(f"baseline written to {baseline_path}")
        return _finish(report, args)
    report = codelint.lint_paths([Path(p) for p in args.paths])
    if args.baseline:
        if args.update_baseline:
            codelint.save_baseline(report, Path(args.baseline))
            print(f"baseline written to {args.baseline}")
        report = codelint.apply_baseline(report, codelint.load_baseline(Path(args.baseline)))
    return _finish(report, args)


# --------------------------------------------------------------------- parser


def configure_parser(parser: argparse.ArgumentParser) -> None:
    """Attach the analyze subcommands to ``parser`` (shared by the harness
    CLI's ``analyze`` subparser and the standalone module entry point)."""
    parser.add_argument("--self-lint", action="store_true",
                        help="shorthand for 'lint --self': lint src/ against "
                             "the checked-in baseline")
    sub = parser.add_subparsers(dest="analyze_what")

    sched = sub.add_parser(
        "schedules", help="statically verify collective schedules cross-rank")
    sched.add_argument("--all", action="store_true",
                       help="check every registered (collective, algorithm) builder")
    sched.add_argument("--collective", action="append", default=None,
                       help="restrict to this collective (repeatable)")
    sched.add_argument("--algorithm", action="append", default=None,
                       help="restrict to this algorithm (repeatable)")
    sched.add_argument("--nranks", default=None,
                       help="rank counts: N | N,M,... | lo:hi | lo:hi:log "
                            "(default: log-spaced 2..4096 plus odd sizes)")
    sched.add_argument("--nbytes", default="4,4096",
                       help="comma-separated payload sizes in bytes (default 4,4096)")
    sched.add_argument("--max-steps", type=int, default=None,
                       help="per-point total step budget; larger points are "
                            "skipped with a note; 0 = unlimited "
                            "(default 2000000)")
    _common_flags(sched)
    sched.set_defaults(analyze_func=_cmd_schedules)

    ir = sub.add_parser(
        "ir", help="verify lowered-IR artifacts / fusion tables")
    ir.add_argument("paths", nargs="+",
                    help="*.mpiwasm artifact files, directories of them, or "
                         ".wasm/.wat modules (compiled then verified)")
    _common_flags(ir)
    ir.set_defaults(analyze_func=_cmd_ir)

    ckpt = sub.add_parser(
        "checkpoint", help="verify checkpoint snapshot documents")
    ckpt.add_argument("paths", nargs="+",
                      help="checkpoint files (repro.fault.checkpoint JSON) or "
                           "directories of *.ckpt.json snapshots")
    _common_flags(ckpt)
    ckpt.set_defaults(analyze_func=_cmd_checkpoint)

    lint = sub.add_parser(
        "lint", help="run the project-invariant linter")
    lint.add_argument("paths", nargs="*",
                      help="files or directories to lint (default: --self)")
    lint.add_argument("--self", action="store_true",
                      help="lint this repo's src/ against its baseline")
    lint.add_argument("--baseline", default=None,
                      help="baseline JSON gating pre-existing violations")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline from the current violations")
    _common_flags(lint)
    lint.set_defaults(analyze_func=_cmd_lint)


def _common_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable report")
    parser.add_argument("--verbose", action="store_true",
                        help="include notes (skipped points, baselined hits)")
    parser.add_argument("--strict", action="store_true",
                        help="warnings also fail the run")


def run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    """Dispatch a parsed ``analyze`` invocation."""
    if getattr(args, "self_lint", False):
        from repro.analysis import codelint

        report, _path = codelint.self_lint()
        return _finish(report, args)
    func = getattr(args, "analyze_func", None)
    if func is None:
        parser.error("choose an analyzer: schedules | ir | checkpoint | lint "
                     "(or --self-lint)")
    if getattr(args, "analyze_what", None) == "schedules" and args.max_steps is None:
        from repro.analysis.schedule_check import DEFAULT_MAX_STEPS

        args.max_steps = DEFAULT_MAX_STEPS
    return func(args, parser)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``python -m repro.analysis``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static verification: schedules, lowered IR, project lints.",
    )
    configure_parser(parser)
    args = parser.parse_args(argv)
    return run(args, parser)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
