"""Static verifier for lowered-IR artifacts and mined fusion tables.

Lowered functions (``wasm/lowering.py``) travel through the shared on-disk
compilation cache as plain ``(kind, immediate)`` tuples and are re-linked and
executed on load -- in the serve daemon, by a different process than the one
that compiled them.  This module re-establishes, by a linear pass and without
executing anything, the invariants the lowering pass guaranteed at build
time:

* every op ``kind`` resolves to a registered handler (what :func:`link`
  would otherwise discover as a mid-execution ``Trap``);
* every immediate has the exact tuple shape its handler destructures;
* absolute jump targets (``block``/``if`` continuations, ``else`` targets,
  ``return``) are in-bounds and land on instruction boundaries -- never in
  the interior (pad slots) of a fused superinstruction;
* branch *depths* (``br``/``br_if``/``br_table`` and the fused ``*_br_if``/
  ``*_br`` forms) do not exceed the statically-known number of open control
  frames at that offset (plus the implicit function frame);
* control ops balance (no stray ``end``, no unterminated ``block``);
* multi-slot fused ops are followed by exactly ``width - 1`` pads, and pads
  never appear outside a fused interior;
* every ``fused.mined`` chain is re-validated against its constituents:
  kinds chainable and resolvable, constituent immediates well-shaped, and
  the chain's composed stack effect consistent (tracked from the per-kind
  pop/push table -- a chain whose interior would underflow the depth the
  chain itself established is structurally impossible output of the miner).

Entry points return a :class:`~repro.analysis.findings.Report`; nothing here
raises on bad input -- malformed structures become findings, so a corrupt
cache artifact yields a diagnostic, not a crash.  ``deserialize_lowered(...,
verify=True)`` routes through :func:`verify_payload` and converts errors to
:class:`~repro.wasm.errors.ValidationError`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Report
from repro.wasm.lowering import (
    _BINOPS,
    _CHAINABLE_KINDS,
    _HANDLERS,
    _UNOPS,
    IR_VERSION,
    LoweredFunction,
)

#: Slot width of every multi-slot fused op (``fused.mined`` is dynamic:
#: ``len(kinds)``); interior slots must hold ``fused.pad``.
_FUSED_WIDTHS: Dict[str, int] = {
    "fused.get_get_bin": 3,
    "fused.get_const_bin": 3,
    "fused.get_const_store": 3,
    "fused.cmp_br_if": 2,
    "fused.eqz_br_if": 2,
    "fused.get_get_cmp_br_if": 4,
    "fused.get_get_bin_set": 4,
    "fused.get_const_bin_set": 4,
    "fused.bin_set": 2,
    "fused.get_get_bin_set_br": 5,
    "fused.get_const_bin_set_br": 5,
    "fused.set_br": 2,
}

#: Static ``(pops, pushes)`` of every chainable kind, used to compose the
#: stack effect of a ``fused.mined`` chain.  Must cover
#: :data:`~repro.wasm.lowering._CHAINABLE_KINDS` exactly (asserted by test).
CHAIN_STACK_EFFECT: Dict[str, Tuple[int, int]] = {
    "nop": (0, 0),
    "drop": (1, 0),
    "select": (3, 1),
    "local.get": (0, 1),
    "local.set": (1, 0),
    "local.tee": (1, 1),
    "global.get": (0, 1),
    "global.set": (1, 0),
    "const": (0, 1),
    "bin": (2, 1),
    "un": (1, 1),
    "load.u": (1, 1),
    "load.s32": (1, 1),
    "load.s64": (1, 1),
    "load.f32": (1, 1),
    "load.f64": (1, 1),
    "load.v128": (1, 1),
    "store.i": (2, 0),
    "store.f32": (2, 0),
    "store.f64": (2, 0),
    "store.v128": (2, 0),
    "memory.size": (0, 1),
    "memory.grow": (1, 1),
    "memory.copy": (3, 0),
    "memory.fill": (3, 0),
    "splat": (1, 1),
    "extract_lane": (1, 1),
    "replace_lane": (2, 1),
    "v128.not": (1, 1),
    "simd.bin": (2, 1),
    "simd.un": (1, 1),
}


def chain_stack_effect(kinds: Sequence[str]) -> Tuple[int, int]:
    """Composed ``(pops, pushes)`` of a chain: the depth of caller stack it
    consumes and what it leaves, by running the per-kind effects in order."""
    depth = 0      # net stack change so far
    needed = 0     # deepest reach below the entry stack level
    for kind in kinds:
        pops, pushes = CHAIN_STACK_EFFECT[kind]
        depth -= pops
        needed = min(needed, depth)
        depth += pushes
    return -needed, depth - needed


def _is_int(value: Any, lo: int = 0) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= lo


class _OpsChecker:
    """One linear verification pass over a function's serial op array."""

    def __init__(self, report: Report, ops: List[Tuple[str, Any]], loc: str):
        self.report = report
        self.ops = ops
        self.loc = loc
        self.n = len(ops)
        self.open_frames = 0       # explicit block/loop/if frames open here
        self.pending_pads = 0      # interior slots owed by the last fused op

    # ------------------------------------------------------------- primitives

    def _err(self, pc: int, rule: str, message: str, **details: Any) -> None:
        self.report.error("ir", rule, message, f"{self.loc} op {pc}", **details)

    def _target(self, pc: int, value: Any, what: str) -> None:
        """An absolute jump target: in-bounds, on an instruction boundary."""
        if not _is_int(value):
            self._err(pc, "bad-immediate", f"{what} must be a non-negative int, "
                      f"got {value!r}")
            return
        if value > self.n:
            self._err(pc, "bad-jump-target",
                      f"{what} {value} out of bounds for {self.n} ops")
        elif value < self.n and self.ops[value][0] == "fused.pad":
            self._err(pc, "bad-jump-target",
                      f"{what} {value} lands inside a fused superinstruction")

    def _depth(self, pc: int, value: Any, what: str) -> None:
        """A branch depth: within the open frames (incl. the implicit one)."""
        if not _is_int(value):
            self._err(pc, "bad-immediate", f"{what} must be a non-negative int, "
                      f"got {value!r}")
        elif value > self.open_frames:
            self._err(pc, "bad-branch-depth",
                      f"{what} {value} exceeds the {self.open_frames} control "
                      "frame(s) open at this offset")

    def _shape(self, pc: int, imm: Any, kind: str, length: int) -> bool:
        if not isinstance(imm, (tuple, list)) or len(imm) != length:
            self._err(pc, "bad-immediate",
                      f"{kind} immediate must be a {length}-tuple, got {imm!r}")
            return False
        return True

    def _binop_name(self, pc: int, value: Any, kind: str) -> None:
        if value not in _BINOPS:
            self._err(pc, "bad-immediate",
                      f"{kind} names unknown binary op {value!r}")

    # ------------------------------------------------------------ per-kind imm

    def _check_imm(self, pc: int, kind: str, imm: Any) -> None:
        if kind in ("nop", "unreachable", "loop", "end", "drop", "select",
                    "memory.size", "memory.grow", "memory.copy", "memory.fill",
                    "v128.not", "f64x2.sqrt", "fused.pad"):
            return  # no immediate (handlers ignore it)
        if kind == "block":
            if self._shape(pc, imm, kind, 2):
                if not _is_int(imm[0]):
                    self._err(pc, "bad-immediate", f"block arity {imm[0]!r} invalid")
                self._target(pc, imm[1], "block continuation")
        elif kind == "if":
            if self._shape(pc, imm, kind, 3):
                if not _is_int(imm[0]):
                    self._err(pc, "bad-immediate", f"if arity {imm[0]!r} invalid")
                self._target(pc, imm[1], "if false-target")
                self._target(pc, imm[2], "if continuation")
        elif kind == "else":
            self._target(pc, imm, "else target")
        elif kind in ("br", "br_if"):
            self._depth(pc, imm, f"{kind} depth")
        elif kind == "br_table":
            if self._shape(pc, imm, kind, 2):
                targets, default = imm
                if not isinstance(targets, (tuple, list)):
                    self._err(pc, "bad-immediate",
                              f"br_table targets must be a sequence, got {targets!r}")
                else:
                    for k, depth in enumerate(targets):
                        self._depth(pc, depth, f"br_table target {k}")
                self._depth(pc, default, "br_table default")
        elif kind == "return":
            self._target(pc, imm, "return target")
        elif kind == "call":
            if self._shape(pc, imm, kind, 2) and not (
                _is_int(imm[0]) and _is_int(imm[1])
            ):
                self._err(pc, "bad-immediate", f"call immediate {imm!r} invalid")
        elif kind == "call_indirect":
            if self._shape(pc, imm, kind, 3) and not all(_is_int(v) for v in imm):
                self._err(pc, "bad-immediate", f"call_indirect immediate {imm!r} invalid")
        elif kind in ("local.get", "local.set", "local.tee",
                      "global.get", "global.set"):
            if not _is_int(imm):
                self._err(pc, "bad-immediate", f"{kind} index {imm!r} invalid")
        elif kind == "const":
            if not isinstance(imm, (int, float, bytes)):
                self._err(pc, "bad-immediate",
                          f"const value must be int/float/bytes, got {type(imm).__name__}")
            elif isinstance(imm, bytes) and len(imm) != 16:
                self._err(pc, "bad-immediate",
                          f"v128 const must be 16 bytes, got {len(imm)}")
        elif kind in ("load.u", "load.s32", "load.s64", "store.i"):
            if self._shape(pc, imm, kind, 2) and not (
                _is_int(imm[0]) and _is_int(imm[1], lo=1) and imm[1] <= 8
            ):
                self._err(pc, "bad-immediate",
                          f"{kind} (offset, nbytes) {imm!r} invalid")
        elif kind in ("load.f32", "load.f64", "load.v128",
                      "store.f32", "store.f64", "store.v128"):
            if not _is_int(imm):
                self._err(pc, "bad-immediate", f"{kind} offset {imm!r} invalid")
        elif kind == "bin":
            self._binop_name(pc, imm, kind)
        elif kind == "un":
            if imm not in _UNOPS:
                self._err(pc, "bad-immediate", f"un names unknown unary op {imm!r}")
        elif kind == "splat":
            if self._shape(pc, imm, kind, 3) and not (
                _is_int(imm[1], lo=1) and _is_int(imm[2], lo=1)
                and imm[1] * imm[2] == 16
            ):
                self._err(pc, "bad-immediate",
                          f"splat (fmt, count, size) {imm!r} does not form 16 lanes")
        elif kind == "extract_lane":
            if self._shape(pc, imm, kind, 4) and not (
                _is_int(imm[1], lo=1) and _is_int(imm[2])
                and (imm[2] + 1) * imm[1] <= 16
            ):
                self._err(pc, "bad-immediate",
                          f"extract_lane {imm!r} reads outside the 16-byte vector")
        elif kind == "replace_lane":
            if self._shape(pc, imm, kind, 3) and not (
                _is_int(imm[1], lo=1) and _is_int(imm[2])
                and (imm[2] + 1) * imm[1] <= 16
            ):
                self._err(pc, "bad-immediate",
                          f"replace_lane {imm!r} writes outside the 16-byte vector")
        elif kind in ("simd.bin", "simd.un"):
            if not isinstance(imm, str):
                self._err(pc, "bad-immediate", f"{kind} op name {imm!r} invalid")
        elif kind in ("fused.get_get_bin", "fused.get_const_bin"):
            if self._shape(pc, imm, kind, 3):
                if not _is_int(imm[0]):
                    self._err(pc, "bad-immediate", f"{kind} local index {imm[0]!r} invalid")
                self._binop_name(pc, imm[2], kind)
        elif kind == "fused.get_const_store":
            if self._shape(pc, imm, kind, 4) and not (
                _is_int(imm[0]) and _is_int(imm[2]) and _is_int(imm[3], lo=1)
            ):
                self._err(pc, "bad-immediate", f"{kind} immediate {imm!r} invalid")
        elif kind == "fused.cmp_br_if":
            if self._shape(pc, imm, kind, 2):
                self._binop_name(pc, imm[0], kind)
                self._depth(pc, imm[1], f"{kind} depth")
        elif kind == "fused.eqz_br_if":
            self._depth(pc, imm, f"{kind} depth")
        elif kind == "fused.get_get_cmp_br_if":
            if self._shape(pc, imm, kind, 4):
                self._binop_name(pc, imm[2], kind)
                self._depth(pc, imm[3], f"{kind} depth")
        elif kind in ("fused.get_get_bin_set", "fused.get_const_bin_set"):
            if self._shape(pc, imm, kind, 4):
                self._binop_name(pc, imm[2], kind)
                if not _is_int(imm[3]):
                    self._err(pc, "bad-immediate", f"{kind} dest {imm[3]!r} invalid")
        elif kind == "fused.bin_set":
            if self._shape(pc, imm, kind, 2):
                self._binop_name(pc, imm[0], kind)
        elif kind in ("fused.get_get_bin_set_br", "fused.get_const_bin_set_br"):
            if self._shape(pc, imm, kind, 5):
                self._binop_name(pc, imm[2], kind)
                self._depth(pc, imm[4], f"{kind} depth")
        elif kind == "fused.set_br":
            if self._shape(pc, imm, kind, 2):
                self._depth(pc, imm[1], f"{kind} depth")
        elif kind == "fused.mined":
            self._check_mined(pc, imm)

    def _check_mined(self, pc: int, imm: Any) -> int:
        """Validate one mined chain; returns its slot width (1 on malformed
        input, so the pass resynchronizes at the next op)."""
        if not self._shape(pc, imm, "fused.mined", 2):
            return 1
        kinds, imms = imm
        if not isinstance(kinds, (tuple, list)) or not isinstance(imms, (tuple, list)):
            self._err(pc, "bad-immediate",
                      "fused.mined immediate must be (kinds, imms) sequences")
            return 1
        if len(kinds) != len(imms) or len(kinds) < 2:
            self._err(pc, "bad-chain",
                      f"fused.mined has {len(kinds)} kind(s) but {len(imms)} "
                      "immediate(s) (need matching lengths >= 2)")
            return max(2, len(kinds))
        ok = True
        for k, kind in enumerate(kinds):
            if kind not in _CHAINABLE_KINDS:
                self._err(pc, "unchainable-kind",
                          f"fused.mined constituent {k} ({kind!r}) is not a "
                          "chainable op kind", chain=list(kinds))
                ok = False
            elif kind not in _HANDLERS:
                self._err(pc, "unknown-kind",
                          f"fused.mined constituent {k} ({kind!r}) has no handler")
                ok = False
            else:
                self._check_imm(pc, kind, imms[k])
        if ok:
            # Composed stack effect must be self-consistent: every constituent
            # effect known, and width equals the chain length (the pads that
            # follow are checked by the main walk).
            missing = [k for k in kinds if k not in CHAIN_STACK_EFFECT]
            if missing:
                self._err(pc, "bad-chain",
                          f"no stack-effect entry for chained kind(s) {missing}")
            else:
                pops, pushes = chain_stack_effect(kinds)
                if pops > 64 or pushes > 64:  # sanity bound: miner caps width at ~8
                    self._err(pc, "bad-chain",
                              f"chain stack effect ({pops} pops, {pushes} pushes) "
                              "implausible for a mined superinstruction")
        return len(kinds)

    # ------------------------------------------------------------------- walk

    def run(self) -> None:
        for pc, op in enumerate(self.ops):
            if not isinstance(op, (tuple, list)) or len(op) != 2 or not isinstance(op[0], str):
                self._err(pc, "bad-op", f"op must be a (kind, immediate) pair, got {op!r}")
                continue
            kind, imm = op
            if kind != "fused.mined" and kind not in _HANDLERS:
                self._err(pc, "unknown-kind",
                          f"op kind {kind!r} resolves to no handler "
                          "(IR version skew or corruption)")
                continue
            if self.pending_pads > 0:
                if kind != "fused.pad":
                    self._err(pc, "missing-pad",
                              f"expected a fused.pad interior slot, found {kind!r}")
                self.pending_pads -= 1
                if kind == "fused.pad":
                    continue
            elif kind == "fused.pad":
                self._err(pc, "stray-pad",
                          "fused.pad outside any fused superinstruction "
                          "(executing it traps)")
                continue
            width = _FUSED_WIDTHS.get(kind)
            if kind == "fused.mined":
                width = self._check_mined(pc, imm)
            else:
                self._check_imm(pc, kind, imm)
            if width is not None and width > 1:
                if pc + width > self.n:
                    self._err(pc, "bad-chain",
                              f"{kind} needs {width} slots but only "
                              f"{self.n - pc} remain")
                    self.pending_pads = self.n - pc - 1
                else:
                    self.pending_pads = width - 1
            # Control balance bookkeeping.
            if kind in ("block", "loop", "if"):
                self.open_frames += 1
            elif kind == "end":
                if self.open_frames == 0:
                    self._err(pc, "unbalanced-control",
                              "end with no open block/loop/if frame")
                else:
                    self.open_frames -= 1
        if self.pending_pads:
            self.report.error("ir", "bad-chain",
                              f"function ends inside a fused superinstruction "
                              f"({self.pending_pads} pad slot(s) missing)", self.loc)
        if self.open_frames:
            self.report.error("ir", "unbalanced-control",
                              f"{self.open_frames} control frame(s) never closed",
                              self.loc)


def verify_function(fn: LoweredFunction, index: int = 0,
                    report: Optional[Report] = None, loc: str = "") -> Report:
    """Verify one lowered function; findings carry ``func i (name) op pc``."""
    report = report if report is not None else Report()
    name = f" ({fn.name})" if getattr(fn, "name", "") else ""
    floc = f"{loc} func {index}{name}" if loc else f"func {index}{name}"
    if not isinstance(fn.ops, list):
        report.error("ir", "bad-op", f"ops must be a list, got {type(fn.ops).__name__}", floc)
        return report
    if not _is_int(fn.nresults):
        report.error("ir", "bad-function", f"nresults {fn.nresults!r} invalid", floc)
    _OpsChecker(report, fn.ops, floc).run()
    return report


def verify_functions(functions: Sequence[LoweredFunction],
                     report: Optional[Report] = None, loc: str = "") -> Report:
    """Verify every lowered function of a module."""
    report = report if report is not None else Report()
    for index, fn in enumerate(functions):
        verify_function(fn, index, report, loc)
    return report


def verify_fusion_table(table: Any, report: Optional[Report] = None,
                        loc: str = "fusion_table") -> Report:
    """Validate a mined fusion table (the ``fusion_table`` payload entry)."""
    report = report if report is not None else Report()
    if not isinstance(table, (list, tuple)):
        report.error("ir", "bad-fusion-table",
                     f"fusion table must be a list, got {type(table).__name__}", loc)
        return report
    for i, rec in enumerate(table):
        rloc = f"{loc}[{i}]"
        if not isinstance(rec, dict):
            report.error("ir", "bad-fusion-table",
                         f"record must be a dict, got {type(rec).__name__}", rloc)
            continue
        kinds = rec.get("kinds")
        if not isinstance(kinds, (list, tuple)) or len(kinds) < 2:
            report.error("ir", "bad-fusion-table",
                         f"record kinds {kinds!r} must list >= 2 op kinds", rloc)
            continue
        for kind in kinds:
            if kind not in _CHAINABLE_KINDS:
                report.error("ir", "unchainable-kind",
                             f"fusion-table kind {kind!r} is not chainable", rloc,
                             chain=list(kinds))
        width = rec.get("width")
        if width is not None and width != len(kinds):
            report.error("ir", "bad-fusion-table",
                         f"record width {width} != len(kinds) {len(kinds)}", rloc)
    return report


def verify_payload(payload: Any, report: Optional[Report] = None,
                   loc: str = "") -> Report:
    """Verify a full serialized lowered-IR payload (``serialize_lowered``).

    Non-lowered-IR payloads get a single NOTE (the deserializer falls back to
    re-lowering those, so they are not errors); structurally-broken lowered-IR
    payloads produce ERROR findings rather than exceptions.
    """
    report = report if report is not None else Report()
    prefix = f"{loc} " if loc else ""
    if not isinstance(payload, dict) or payload.get("kind") != "lowered-ir":
        report.note("ir", "not-lowered-ir",
                    "payload is not a lowered-IR artifact (nothing to verify)",
                    loc)
        return report
    if payload.get("ir_version") != IR_VERSION:
        report.note("ir", "ir-version-mismatch",
                    f"artifact IR version {payload.get('ir_version')!r} != "
                    f"current {IR_VERSION} (loader re-lowers from source)", loc)
        return report
    functions = payload.get("functions")
    if not isinstance(functions, list):
        report.error("ir", "bad-payload",
                     f"'functions' must be a list, got {type(functions).__name__}",
                     loc)
        return report
    for index, fpayload in enumerate(functions):
        try:
            fn = LoweredFunction.from_payload(fpayload)
        except Exception as exc:
            report.error("ir", "bad-function",
                         f"function payload does not deserialize: {exc}",
                         f"{prefix}func {index}")
            continue
        verify_function(fn, index, report, loc)
    if "fusion_table" in payload:
        verify_fusion_table(payload["fusion_table"], report,
                            f"{prefix}fusion_table")
    return report


def verify_artifact(artifact: Any, loc: str = "") -> Report:
    """Verify a compiled artifact of any backend.

    Only lowered-IR payloads carry statically-checkable structure; anything
    else (e.g. a plain module artifact) returns an empty, passing report.
    """
    report = Report()
    if isinstance(artifact, dict) and artifact.get("kind") == "lowered-ir":
        verify_payload(artifact, report, loc)
    return report


#: Name exported on the flat ``repro.api`` surface, where ``verify_artifact``
#: alone would not say what it verifies.
verify_lowered_artifact = verify_artifact


def _self_version_guard() -> None:  # pragma: no cover - import-time assert
    """Fail fast if lowering grew chainable kinds this table does not know."""
    missing = _CHAINABLE_KINDS - set(CHAIN_STACK_EFFECT)
    if missing:
        raise AssertionError(
            f"CHAIN_STACK_EFFECT is missing chainable kinds {sorted(missing)}; "
            "update repro/analysis/ir_verify.py alongside wasm/lowering.py"
        )


_self_version_guard()
