"""Baselines: native execution and the Faasm platform model."""

from repro.baselines.faasm import FaabricMessageBus, FaasmConfig, FaasmPlatform
from repro.baselines.native import NativeAPI

__all__ = ["NativeAPI", "FaasmPlatform", "FaasmConfig", "FaabricMessageBus"]
