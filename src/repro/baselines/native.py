"""Native execution baseline.

The "Native" series of every figure in the paper is the benchmark compiled
with clang -O3 and run directly under the host MPI library.  Here the same
guest program runs against :class:`NativeAPI`, which exposes the *same
interface* as :class:`repro.core.guest_api.GuestAPI` but is backed by plain
NumPy buffers and direct calls into the host MPI runtime -- no linear memory,
no handle translation, no embedder overhead.  The difference between a
``run_wasm`` and a ``run_native`` job is therefore exactly the embedder layer
the paper evaluates.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.mpi import datatypes as host_datatypes
from repro.mpi import ops as host_ops
from repro.mpi.communicator import Communicator
from repro.mpi.pt2pt import ANY_SOURCE, ANY_TAG
from repro.mpi.runtime import MPIRuntime
from repro.toolchain import mpi_header as abi

_NP_DTYPES: Dict[int, str] = {
    abi.MPI_BYTE: "uint8",
    abi.MPI_CHAR: "int8",
    abi.MPI_INT: "int32",
    abi.MPI_UNSIGNED: "uint32",
    abi.MPI_LONG: "int64",
    abi.MPI_LONG_LONG: "int64",
    abi.MPI_FLOAT: "float32",
    abi.MPI_DOUBLE: "float64",
}


def _host_datatype(guest_handle: int):
    return host_datatypes.by_name(abi.GUEST_DATATYPE_NAMES[guest_handle])


def _host_op(guest_handle: int):
    return host_ops.by_name(abi.GUEST_OP_NAMES[guest_handle])


class NativeAPI:
    """GuestAPI-compatible interface backed directly by the host MPI library.

    Guest "pointers" are integer indices into a private buffer table; each
    buffer is a NumPy byte array.  Datatype/op handles use the same guest
    integers so benchmark code is byte-for-byte identical between the native
    and Wasm paths.
    """

    # Re-exported constants, mirroring GuestAPI.
    MPI_COMM_WORLD = abi.MPI_COMM_WORLD
    MPI_ANY_SOURCE = abi.MPI_ANY_SOURCE
    MPI_ANY_TAG = abi.MPI_ANY_TAG
    MPI_SUM = abi.MPI_SUM
    MPI_MAX = abi.MPI_MAX
    MPI_MIN = abi.MPI_MIN
    MPI_BYTE = abi.MPI_BYTE
    MPI_CHAR = abi.MPI_CHAR
    MPI_INT = abi.MPI_INT
    MPI_LONG = abi.MPI_LONG
    MPI_FLOAT = abi.MPI_FLOAT
    MPI_DOUBLE = abi.MPI_DOUBLE

    def __init__(self, runtime: MPIRuntime):
        self.runtime = runtime
        self._buffers: Dict[int, np.ndarray] = {}
        self._next_ptr = 16
        self._comms: Dict[int, Communicator] = {}
        self._next_comm = abi.FIRST_USER_COMM
        self._stdout: List[str] = []
        self.elapsed_virtual = 0.0

    # ------------------------------------------------------------------ memory

    def malloc(self, nbytes: int) -> int:
        """Allocate a host buffer and return its handle ("pointer")."""
        ptr = self._next_ptr
        self._next_ptr += max(int(nbytes), 1) + 16
        self._buffers[ptr] = np.zeros(int(nbytes), dtype=np.uint8)
        return ptr

    def free(self, ptr: int) -> None:
        """Release a buffer."""
        self._buffers.pop(ptr, None)

    def _buffer(self, ptr: int, nbytes: int) -> np.ndarray:
        buf = self._buffers.get(ptr)
        if buf is None:
            raise KeyError(f"unknown native buffer handle {ptr}")
        if nbytes > buf.nbytes:
            raise ValueError(f"buffer {ptr} has {buf.nbytes} bytes, {nbytes} requested")
        return buf[:nbytes]

    def view(self, ptr: int, nbytes: int) -> memoryview:
        """Writable view of a buffer."""
        return memoryview(self._buffer(ptr, nbytes))

    def ndarray(self, ptr: int, count: int, guest_datatype: int) -> np.ndarray:
        """Typed view of a buffer."""
        dtype = np.dtype(_NP_DTYPES[guest_datatype])
        return self._buffer(ptr, count * dtype.itemsize).view(dtype)[:count]

    def alloc_array(self, count: int, guest_datatype: int, fill: Optional[float] = None) -> Tuple[int, np.ndarray]:
        """Allocate and view an array; returns (handle, NumPy view)."""
        size = abi.datatype_size(guest_datatype) * count
        ptr = self.malloc(size)
        arr = self.ndarray(ptr, count, guest_datatype)
        if fill is not None:
            arr[:] = fill
        return ptr, arr

    # -------------------------------------------------------------------- misc

    def print(self, text: str) -> None:
        """Record a line of output (native stdout)."""
        self._stdout.append(text)

    def stdout(self) -> str:
        """Everything printed so far."""
        return "\n".join(self._stdout) + ("\n" if self._stdout else "")

    def compute(self, seconds: float) -> None:
        """Advance the rank's virtual clock by modelled compute time."""
        if seconds > 0:
            self.runtime.ctx.advance(seconds)

    def call_kernel(self, export_name: str, *args) -> List:
        """Native builds have no Wasm kernels; the guests fall back to NumPy."""
        raise NotImplementedError("native execution has no Wasm kernels")

    # --------------------------------------------------------------------- MPI

    def _comm(self, handle: int) -> Communicator:
        if handle == abi.MPI_COMM_WORLD:
            return self.runtime.comm_world
        if handle == abi.MPI_COMM_SELF:
            return self.runtime.comm_self
        return self._comms[handle]

    @staticmethod
    def _source(value: int) -> int:
        return ANY_SOURCE if value == abi.MPI_ANY_SOURCE else value

    @staticmethod
    def _tag(value: int) -> int:
        return ANY_TAG if value == abi.MPI_ANY_TAG else value

    def mpi_init(self) -> int:
        """``MPI_Init``."""
        self.runtime.init()
        return abi.MPI_SUCCESS

    def mpi_finalize(self) -> int:
        """``MPI_Finalize``."""
        self.runtime.finalize()
        return abi.MPI_SUCCESS

    def rank(self, comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Comm_rank``."""
        return self.runtime.comm_rank(self._comm(comm))

    def size(self, comm: int = abi.MPI_COMM_WORLD) -> int:
        """``MPI_Comm_size``."""
        return self.runtime.comm_size(self._comm(comm))

    def wtime(self) -> float:
        """``MPI_Wtime``."""
        return self.runtime.wtime()

    def send(self, buf, count, datatype, dest, tag, comm=abi.MPI_COMM_WORLD) -> int:
        dt = _host_datatype(datatype)
        self.runtime.send(self._buffer(buf, count * dt.size), count, dt, dest, tag, self._comm(comm))
        return abi.MPI_SUCCESS

    def recv(self, buf, count, datatype, source, tag, comm=abi.MPI_COMM_WORLD) -> Dict[str, int]:
        dt = _host_datatype(datatype)
        status = self.runtime.recv(
            self._buffer(buf, count * dt.size), count, dt, self._source(source), self._tag(tag), self._comm(comm)
        )
        return {"source": status.source, "tag": status.tag, "error": status.error,
                "count_bytes": status.count_bytes}

    def sendrecv(self, sendbuf, sendcount, sendtype, dest, sendtag,
                 recvbuf, recvcount, recvtype, source, recvtag,
                 comm=abi.MPI_COMM_WORLD) -> Dict[str, int]:
        st = _host_datatype(sendtype)
        rt = _host_datatype(recvtype)
        status = self.runtime.sendrecv(
            self._buffer(sendbuf, sendcount * st.size), sendcount, st, dest, sendtag,
            self._buffer(recvbuf, recvcount * rt.size), recvcount, rt,
            self._source(source), self._tag(recvtag), self._comm(comm),
        )
        return {"source": status.source, "tag": status.tag, "error": status.error,
                "count_bytes": status.count_bytes}

    def isend(self, buf, count, datatype, dest, tag, comm=abi.MPI_COMM_WORLD):
        dt = _host_datatype(datatype)
        return self.runtime.isend(self._buffer(buf, count * dt.size), count, dt, dest, tag, self._comm(comm))

    def irecv(self, buf, count, datatype, source, tag, comm=abi.MPI_COMM_WORLD):
        dt = _host_datatype(datatype)
        return self.runtime.irecv(
            self._buffer(buf, count * dt.size), count, dt, self._source(source), self._tag(tag), self._comm(comm)
        )

    def wait(self, request) -> Dict[str, int]:
        status = self.runtime.wait(request)
        return {"source": status.source, "tag": status.tag, "error": status.error,
                "count_bytes": status.count_bytes}

    def test(self, request) -> Tuple[bool, Optional[Dict[str, int]]]:
        """``MPI_Test`` over a host request object (never blocks)."""
        flag, status = self.runtime.test(request)
        if not flag:
            return False, None
        return True, {"source": status.source, "tag": status.tag, "error": status.error,
                      "count_bytes": status.count_bytes}

    def waitany(self, requests) -> Tuple[int, Dict[str, int]]:
        """``MPI_Waitany`` over host request objects."""
        index, status = self.runtime.waitany(list(requests))
        return index, {"source": status.source, "tag": status.tag, "error": status.error,
                       "count_bytes": status.count_bytes}

    def testall(self, requests) -> Tuple[bool, List[Dict[str, int]]]:
        """``MPI_Testall`` over host request objects."""
        flag, statuses = self.runtime.testall(list(requests))
        rows = [{"source": s.source, "tag": s.tag, "error": s.error,
                 "count_bytes": s.count_bytes} for s in statuses] if flag else []
        return flag, rows

    def set_collective_algorithm(self, collective: str, algorithm: Optional[str]) -> None:
        """Force one collective's algorithm (``None`` restores the table)."""
        self.runtime.world.collectives.force(collective, algorithm)

    def collective_algorithm(self, collective: str) -> Optional[str]:
        """The algorithm currently forced for ``collective`` (None = table)."""
        return self.runtime.world.collectives.forced().get(collective)

    def ibarrier(self, comm: int = abi.MPI_COMM_WORLD):
        """``MPI_Ibarrier``; returns the host request object."""
        return self.runtime.ibarrier(self._comm(comm))

    def ibcast(self, buf, count, datatype, root, comm=abi.MPI_COMM_WORLD):
        """``MPI_Ibcast``; returns the host request object."""
        dt = _host_datatype(datatype)
        return self.runtime.ibcast(self._buffer(buf, count * dt.size), count, dt, root,
                                   self._comm(comm))

    def iallreduce(self, sendbuf, recvbuf, count, datatype, op, comm=abi.MPI_COMM_WORLD):
        """``MPI_Iallreduce``; returns the host request object."""
        dt = _host_datatype(datatype)
        return self.runtime.iallreduce(
            self._buffer(sendbuf, count * dt.size), self._buffer(recvbuf, count * dt.size),
            count, dt, _host_op(op), self._comm(comm),
        )

    def iallgather(self, sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype,
                   comm=abi.MPI_COMM_WORLD):
        """``MPI_Iallgather``; returns the host request object."""
        st = _host_datatype(sendtype)
        rt = _host_datatype(recvtype)
        comm_obj = self._comm(comm)
        return self.runtime.iallgather(
            self._buffer(sendbuf, sendcount * st.size), sendcount, st,
            self._buffer(recvbuf, recvcount * rt.size * comm_obj.size), recvcount, rt, comm_obj,
        )

    def ialltoall(self, sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype,
                  comm=abi.MPI_COMM_WORLD):
        """``MPI_Ialltoall``; returns the host request object."""
        st = _host_datatype(sendtype)
        rt = _host_datatype(recvtype)
        comm_obj = self._comm(comm)
        return self.runtime.ialltoall(
            self._buffer(sendbuf, sendcount * st.size * comm_obj.size), sendcount, st,
            self._buffer(recvbuf, recvcount * rt.size * comm_obj.size), recvcount, rt, comm_obj,
        )

    def record_nbc_overlap(self, collective: str, overlap: float) -> None:
        """Record one communication/computation overlap sample (0..1)."""
        self.runtime.world.metrics.record_nbc_overlap(collective, overlap)

    def barrier(self, comm: int = abi.MPI_COMM_WORLD) -> int:
        self.runtime.barrier(self._comm(comm))
        return abi.MPI_SUCCESS

    def bcast(self, buf, count, datatype, root, comm=abi.MPI_COMM_WORLD) -> int:
        dt = _host_datatype(datatype)
        self.runtime.bcast(self._buffer(buf, count * dt.size), count, dt, root, self._comm(comm))
        return abi.MPI_SUCCESS

    def reduce(self, sendbuf, recvbuf, count, datatype, op, root, comm=abi.MPI_COMM_WORLD) -> int:
        dt = _host_datatype(datatype)
        comm_obj = self._comm(comm)
        recv = self._buffer(recvbuf, count * dt.size) if self.rank(comm) == root else None
        self.runtime.reduce(self._buffer(sendbuf, count * dt.size), recv, count, dt, _host_op(op), root, comm_obj)
        return abi.MPI_SUCCESS

    def allreduce(self, sendbuf, recvbuf, count, datatype, op, comm=abi.MPI_COMM_WORLD) -> int:
        dt = _host_datatype(datatype)
        self.runtime.allreduce(
            self._buffer(sendbuf, count * dt.size), self._buffer(recvbuf, count * dt.size),
            count, dt, _host_op(op), self._comm(comm),
        )
        return abi.MPI_SUCCESS

    def gather(self, sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, root,
               comm=abi.MPI_COMM_WORLD) -> int:
        st = _host_datatype(sendtype)
        rt = _host_datatype(recvtype)
        comm_obj = self._comm(comm)
        recv = (
            self._buffer(recvbuf, recvcount * rt.size * comm_obj.size)
            if self.rank(comm) == root else None
        )
        self.runtime.gather(self._buffer(sendbuf, sendcount * st.size), sendcount, st,
                            recv, recvcount, rt, root, comm_obj)
        return abi.MPI_SUCCESS

    def scatter(self, sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype, root,
                comm=abi.MPI_COMM_WORLD) -> int:
        st = _host_datatype(sendtype)
        rt = _host_datatype(recvtype)
        comm_obj = self._comm(comm)
        send = (
            self._buffer(sendbuf, sendcount * st.size * comm_obj.size)
            if self.rank(comm) == root else None
        )
        self.runtime.scatter(send, sendcount, st, self._buffer(recvbuf, recvcount * rt.size),
                             recvcount, rt, root, comm_obj)
        return abi.MPI_SUCCESS

    def allgather(self, sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype,
                  comm=abi.MPI_COMM_WORLD) -> int:
        st = _host_datatype(sendtype)
        rt = _host_datatype(recvtype)
        comm_obj = self._comm(comm)
        self.runtime.allgather(self._buffer(sendbuf, sendcount * st.size), sendcount, st,
                               self._buffer(recvbuf, recvcount * rt.size * comm_obj.size),
                               recvcount, rt, comm_obj)
        return abi.MPI_SUCCESS

    def alltoall(self, sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype,
                 comm=abi.MPI_COMM_WORLD) -> int:
        st = _host_datatype(sendtype)
        rt = _host_datatype(recvtype)
        comm_obj = self._comm(comm)
        self.runtime.alltoall(self._buffer(sendbuf, sendcount * st.size * comm_obj.size), sendcount, st,
                              self._buffer(recvbuf, recvcount * rt.size * comm_obj.size),
                              recvcount, rt, comm_obj)
        return abi.MPI_SUCCESS

    def comm_split(self, comm: int, color: int, key: int) -> int:
        new_comm = self.runtime.comm_split(self._comm(comm), color, key)
        if new_comm is None:
            return abi.MPI_COMM_NULL
        handle = self._next_comm
        self._next_comm += 1
        self._comms[handle] = new_comm
        return handle

    def comm_dup(self, comm: int) -> int:
        new_comm = self.runtime.comm_dup(self._comm(comm))
        handle = self._next_comm
        self._next_comm += 1
        self._comms[handle] = new_comm
        return handle

    def alloc_mem(self, nbytes: int) -> int:
        """``MPI_Alloc_mem``: a plain host allocation on the native path."""
        return self.malloc(nbytes)

    def free_mem(self, ptr: int) -> int:
        """``MPI_Free_mem``."""
        self.free(ptr)
        return abi.MPI_SUCCESS


# --------------------------------------------------------- the "native" mode

from repro.api.registry import register_mode  # noqa: E402
from repro.api.session import JobResult, execute_job  # noqa: E402
from repro.toolchain.wasicc import CompiledApplication  # noqa: E402


@register_mode("native")
def run_native_mode(session, app, *, nranks, preset, ranks_per_node, config,
                    guest_args, session_store=True) -> JobResult:
    """``Session.run(mode="native")``: the no-embedder baseline.

    The guest program's ``main`` executes directly against :class:`NativeAPI`
    -- plain NumPy buffers, direct calls into the host MPI runtime -- so the
    difference to a ``mode="wasm"`` job of the same application is exactly
    the embedder layer the paper evaluates.  Registered through the unified
    mode registry; ``Session`` discovers it like any third-party mode.
    """
    program = app.program if isinstance(app, CompiledApplication) else session._guest_program(app)

    def program_factory(world, metrics):
        def make_rank_program(rank: int):
            def rank_program(ctx):
                runtime = MPIRuntime(world, ctx)
                api = NativeAPI(runtime)
                start = ctx.now
                value = program.main(api, list(guest_args))
                api.elapsed_virtual = ctx.now - start
                return value

            return rank_program

        return make_rank_program

    rank_results, makespan, metrics = execute_job(
        preset, nranks, ranks_per_node, config.collective_algorithms, program_factory
    )
    return JobResult(
        nranks=nranks,
        machine=preset.name,
        mode="native",
        rank_results=rank_results,
        makespan=makespan,
        metrics=metrics,
        stdout="",
    )
