"""Faasm baseline (Figure 7).

Faasm is the only other platform that runs MPI applications compiled to Wasm.
Architecturally it is the inverse of MPIWasm: instead of deferring MPI calls
to the host MPI library over the machine's interconnect, it implements a
subset of MPI-1 on top of its own gRPC-based distributed messaging layer
(Faabric) and scheduler.  The performance consequence the paper measures is a
geometric-mean PingPong slowdown of ~4.28x versus MPIWasm.

This module models that architecture: each MPI message becomes a Faabric RPC
(serialize -> broker -> deserialize) over the :class:`GrpcMessagingModel`
transport, plus a scheduler/state-store overhead per call.  A functional
mini-executor is included so tests can check that the messaging layer really
moves bytes; the Figure 7 series come from :meth:`FaasmPlatform.pingpong_series`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.machines import faasm_cloud
from repro.sim.network import GrpcMessagingModel


@dataclass
class FaasmConfig:
    """Tunables of the Faasm platform model."""

    scheduler_overhead: float = 1.1e-6      # per message: scheduler + state-store lookup
    serialization_per_byte: float = 0.05e-9  # protobuf encode+decode beyond the transport's own
    supports_user_communicators: bool = False  # the paper notes IMB cannot run on Faasm


class FaabricMessageBus:
    """Functional in-process stand-in for Faabric's point-to-point messaging."""

    def __init__(self) -> None:
        self._queues: Dict[Tuple[int, int, int], List[bytes]] = {}
        self.messages = 0

    def send(self, src: int, dst: int, tag: int, payload: bytes) -> None:
        """Enqueue a message for (dst, src, tag)."""
        self._queues.setdefault((dst, src, tag), []).append(bytes(payload))
        self.messages += 1

    def recv(self, dst: int, src: int, tag: int) -> bytes:
        """Dequeue the oldest matching message (raises if none)."""
        queue = self._queues.get((dst, src, tag), [])
        if not queue:
            raise LookupError(f"no Faabric message for dst={dst} src={src} tag={tag}")
        return queue.pop(0)

    def pending(self) -> int:
        """Number of queued messages."""
        return sum(len(q) for q in self._queues.values())


class FaasmPlatform:
    """The Faasm compute platform as needed for the Figure 7 comparison."""

    def __init__(self, config: Optional[FaasmConfig] = None):
        self.config = config or FaasmConfig()
        self.machine = faasm_cloud()
        self.transport = GrpcMessagingModel()
        self.bus = FaabricMessageBus()

    # ------------------------------------------------------------------ timing

    def message_time(self, nbytes: int) -> float:
        """One MPI message carried as a Faabric RPC."""
        transport = self.transport
        serialization = self.config.serialization_per_byte * nbytes
        return (
            transport.send_overhead(nbytes)
            + self.config.scheduler_overhead
            + transport.transfer_time(nbytes)
            + serialization
            + transport.recv_overhead(nbytes)
        )

    def pingpong_iteration_time(self, nbytes: int) -> float:
        """Half round-trip (the IMB PingPong metric) for one message size."""
        return self.message_time(nbytes)

    def pingpong_series(self, message_sizes) -> Dict[int, float]:
        """Iteration time (seconds) per message size -- the Faasm line of Figure 7."""
        return {size: self.pingpong_iteration_time(size) for size in message_sizes}

    # ------------------------------------------------------------- functional

    def run_pingpong(self, nbytes: int, iterations: int = 4) -> Tuple[float, bytes]:
        """Functionally bounce a payload between two simulated functions.

        Returns (total modelled time, final payload) so tests can check both
        data integrity and the accumulated cost.
        """
        payload = bytes((i * 31) & 0xFF for i in range(nbytes))
        total = 0.0
        for _ in range(iterations):
            self.bus.send(0, 1, 0, payload)
            payload = self.bus.recv(1, 0, 0)
            total += self.message_time(nbytes)
            self.bus.send(1, 0, 0, payload)
            payload = self.bus.recv(0, 1, 0)
            total += self.message_time(nbytes)
        return total, payload

    def supports_benchmark(self, benchmark_name: str) -> bool:
        """Whether Faasm can run a benchmark (IMB needs user communicators)."""
        needs_communicators = benchmark_name.lower() in {"imb", "sendrecv", "allreduce-comm"}
        return self.config.supports_user_communicators or not needs_communicators
