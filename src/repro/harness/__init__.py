"""Experiment harness: regenerates every table and figure of the paper.

``repro.harness.campaign`` is the execution substrate: it expands
declarative scenario matrices into job lists and runs them serially or on a
multi-process worker pool with a shared AoT compilation cache; the figure
drivers in ``repro.harness.experiments`` are the job bodies.
"""

from repro.harness import campaign, experiments, report
from repro.harness.campaign import (
    CampaignResult,
    CampaignSpec,
    JobOutcome,
    JobSpec,
    run_campaign,
    run_job,
    spec_for_experiments,
)
from repro.harness.experiments import (
    EXPERIMENT_DRIVERS,
    figure3_imb_supermuc,
    figure4_graviton2,
    figure5_npb_ior_hpcg,
    figure6_translation_overhead,
    figure7_faasm_comparison,
    figure_campaign_spec,
    functional_crosscheck,
    functional_crosscheck_campaign,
    hpcg_scaling_model,
    imb_model_series,
    table1_compiler_backends,
    table2_binary_sizes,
)

__all__ = [
    "campaign",
    "experiments",
    "report",
    "CampaignResult",
    "CampaignSpec",
    "JobOutcome",
    "JobSpec",
    "run_campaign",
    "run_job",
    "spec_for_experiments",
    "EXPERIMENT_DRIVERS",
    "figure_campaign_spec",
    "table1_compiler_backends",
    "table2_binary_sizes",
    "figure3_imb_supermuc",
    "figure4_graviton2",
    "figure5_npb_ior_hpcg",
    "figure6_translation_overhead",
    "figure7_faasm_comparison",
    "functional_crosscheck",
    "functional_crosscheck_campaign",
    "hpcg_scaling_model",
    "imb_model_series",
]
