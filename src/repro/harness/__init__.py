"""Experiment harness: regenerates every table and figure of the paper."""

from repro.harness import experiments, report
from repro.harness.experiments import (
    figure3_imb_supermuc,
    figure4_graviton2,
    figure5_npb_ior_hpcg,
    figure6_translation_overhead,
    figure7_faasm_comparison,
    functional_crosscheck,
    hpcg_scaling_model,
    imb_model_series,
    table1_compiler_backends,
    table2_binary_sizes,
)

__all__ = [
    "experiments",
    "report",
    "table1_compiler_backends",
    "table2_binary_sizes",
    "figure3_imb_supermuc",
    "figure4_graviton2",
    "figure5_npb_ior_hpcg",
    "figure6_translation_overhead",
    "figure7_faasm_comparison",
    "functional_crosscheck",
    "hpcg_scaling_model",
    "imb_model_series",
]
