"""Experiment drivers: one function per table/figure of the paper.

Each function returns plain dictionaries/lists (no plotting dependency) and
records which execution mode produced each point:

* ``functional`` -- real guests executed rank-by-rank on the simulated cluster
  (used for the small configurations and all correctness checks),
* ``model`` -- the same interconnect/collective/compute models evaluated in
  closed form (used for the paper's 768/6144-rank and 4-MiB-message sweeps,
  which would be pointlessly slow to run functionally on a laptop).

Both modes share one parameterisation (machine presets + the embedder's
measured overhead model), so the native-vs-Wasm deltas have a single source
of truth.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.registry import EXPERIMENTS, register_experiment
from repro.api.session import current_session
from repro.baselines.faasm import FaasmPlatform
from repro.core.config import EmbedderConfig, TranslationOverheadModel
from repro.benchmarks_suite.custom_pingpong import (
    FIGURE6_DATATYPES,
    FIGURE6_MESSAGE_SIZES,
    make_translation_pingpong_program,
)
from repro.benchmarks_suite.hpcg import (
    BYTES_PER_ROW_PER_ITER,
    FLOPS_PER_ROW_PER_ITER,
    make_hpcg_program,
)
from repro.benchmarks_suite.imb import DEFAULT_MESSAGE_SIZES, make_imb_program
from repro.benchmarks_suite.npb import make_dt_program, make_is_program
from repro.benchmarks_suite.ior import WASI_INDIRECTION_OVERHEAD_PER_BYTE, make_ior_program
from repro.sim.machines import MachinePreset, get_preset, graviton2, supermuc_ng
from repro.sim.network import CollectiveCostModel
from repro.toolchain.linker import LinkerModel, PAPER_APPLICATIONS, table2_rows
from repro.toolchain.wasicc import compile_guest
from repro.wasm.compilers import get_backend

OVERHEADS = TranslationOverheadModel()

#: Message-size sweep used by the figure-scale IMB models (1 B .. 4 MiB).
FIGURE_MESSAGE_SIZES = tuple(2 ** k for k in range(0, 23))

#: Datatype-argument count per IMB routine (send/recv types count separately).
_ROUTINE_DATATYPE_ARGS = {
    "pingpong": 1, "sendrecv": 2, "bcast": 1, "allreduce": 1, "reduce": 1,
    "allgather": 2, "alltoall": 2, "gather": 2, "scatter": 2,
}


# --------------------------------------------------------------------- helpers


def _wasm_call_overhead(routine: str, nbytes: int, nranks: int = 2) -> float:
    """Embedder overhead added to one IMB iteration in Wasm mode.

    Point-to-point routines pay one trampoline + translation per iteration
    (the receive-side translation overlaps with the wire time).  For the
    collectives the host library re-enters the embedder-provided progress
    path on every tree/ring round, so the effective per-iteration overhead
    grows with ``ceil(log2(p))`` -- this is the same effect the paper uses to
    explain the HPCG gap at large rank counts (§4.5/§4.6).
    """
    n_args = _ROUTINE_DATATYPE_ARGS.get(routine, 1)
    per_call = OVERHEADS.call_cost(n_args, "MPI_BYTE", nbytes)
    if routine in ("pingpong", "sendrecv"):
        return per_call
    rounds = max(1.0, math.ceil(math.log2(max(nranks, 2))) * 0.75)
    return per_call * rounds


def _geometric_mean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def imb_model_series(
    machine: MachinePreset,
    routine: str,
    nranks: int,
    message_sizes: Sequence[int] = FIGURE_MESSAGE_SIZES,
) -> Dict[int, Dict[str, float]]:
    """Native and Wasm iteration times (us) for one routine at figure scale."""
    # Multi-node machines benchmark across nodes (the paper's SuperMUC runs);
    # single-node machines (Graviton2) stay on the shared-memory transport.
    interconnect = machine.interconnect() if machine.max_nodes > 1 else machine.intranode()
    cost_model = CollectiveCostModel(interconnect)
    series: Dict[int, Dict[str, float]] = {}
    for nbytes in message_sizes:
        native = cost_model.cost(routine, nbytes, nranks)
        wasm = native + _wasm_call_overhead(routine, nbytes, nranks)
        series[nbytes] = {
            "native_us": native * 1e6,
            "wasm_us": wasm * 1e6,
            "slowdown": wasm / native - 1.0,
        }
    return series


# ------------------------------------------------------------------- Table 1


@register_experiment("table1")
def table1_compiler_backends(
    backends: Sequence[str] = ("singlepass", "cranelift", "llvm"),
    dims: Tuple[int, int, int] = (12, 6, 6),
    kernel_iterations: int = 40,
) -> Dict[str, Dict[str, float]]:
    """Table 1: compile duration and single-core HPCG kernel performance.

    Compile durations are real wall-clock measurements of each back-end
    compiling the HPCG guest module.  The "single-core performance" column
    runs the module's Wasm ``hpcg_ddot`` kernel repeatedly under each
    back-end's executor and reports achieved (host-side) MFLOP/s -- absolute
    values are Python-scale, but the ordering and ratios between back-ends are
    the reproduced quantity.
    """
    from repro.wasm.runtime import ImportObject, Instance
    from repro.core.mpi_imports import register_mpi_imports  # noqa: F401 - ensures table import side effects
    import numpy as np

    app = compile_guest(make_hpcg_program(dims=dims, iterations=2))
    n = dims[0] * dims[1] * dims[2]
    results: Dict[str, Dict[str, float]] = {}
    for backend_name in backends:
        backend = get_backend(backend_name)
        compiled = backend.compile(app.module)
        executor = backend.executor_for(compiled)
        # Stand-alone instance: no MPI/WASI needed to drive the ddot kernel.
        from repro.wasi.snapshot_preview1 import WasiEnvironment, build_wasi_imports
        from repro.core.env import Env  # noqa: F401

        imports = ImportObject()
        register_mpi_imports(imports)
        wasi = build_wasi_imports(WasiEnvironment())
        for ns in wasi.namespaces():
            imports.register_module(ns, wasi._functions[ns])  # noqa: SLF001
        instance = Instance(app.module, imports, executor=executor)
        [a_ptr] = instance.invoke("malloc", n * 8)
        [b_ptr] = instance.invoke("malloc", n * 8)
        instance.exported_memory().ndarray(a_ptr, n, "float64")[:] = np.arange(n, dtype=np.float64)
        instance.exported_memory().ndarray(b_ptr, n, "float64")[:] = 1.0

        start = time.perf_counter()
        acc = 0.0
        for _ in range(kernel_iterations):
            [value] = instance.invoke("hpcg_ddot", a_ptr, b_ptr, n)
            acc += value
        elapsed = time.perf_counter() - start
        flops = 2.0 * n * kernel_iterations
        results[backend_name] = {
            "compile_ms": compiled.compile_seconds * 1e3,
            "kernel_mflops": flops / elapsed / 1e6,
            "checksum": acc,
        }
    return results


# ------------------------------------------------------------------- Table 2


@register_experiment("table2")
def table2_binary_sizes() -> Dict[str, object]:
    """Table 2: native dynamic / native static / Wasm binary sizes.

    Combines the linker size model (calibrated against the applications the
    paper measures) with the *actually encoded* sizes of this repository's
    guest modules, and reports the headline static-to-Wasm ratio of §4.4.
    """
    rows = table2_rows()
    model = LinkerModel()
    encoded = {}
    for name, factory in (
        ("IMB", lambda: make_imb_program("allreduce")),
        ("HPCG", make_hpcg_program),
        ("IOR", make_ior_program),
        ("IS", make_is_program),
        ("DT", make_dt_program),
    ):
        encoded[name] = compile_guest(factory()).size
    return {
        "rows": [r.row() for r in rows],
        "average_static_to_wasm_ratio": model.average_static_to_wasm_ratio(rows),
        "wasm_larger_than_dynamic": [r.application for r in rows if r.wasm_larger_than_dynamic],
        "encoded_guest_module_bytes": encoded,
    }


# ---------------------------------------------------------------- Figures 3/4


@register_experiment("figure3")
def figure3_imb_supermuc(
    routines: Sequence[str] = ("pingpong", "sendrecv", "bcast", "allreduce",
                               "allgather", "alltoall", "reduce", "gather", "scatter"),
    rank_counts: Sequence[int] = (768, 6144),
    message_sizes: Sequence[int] = FIGURE_MESSAGE_SIZES,
) -> Dict[str, object]:
    """Figure 3: IMB native vs Wasm on SuperMUC-NG (model mode at figure scale)."""
    machine = supermuc_ng()
    out: Dict[str, object] = {"machine": machine.name, "mode": "model", "series": {}}
    gm_slowdowns: Dict[str, float] = {}
    for routine in routines:
        per_routine: Dict[int, Dict[int, Dict[str, float]]] = {}
        ranks_list = [2] if routine == "pingpong" else list(rank_counts)
        for nranks in ranks_list:
            sizes = [s for s in message_sizes if s * (nranks if routine in ("alltoall", "allgather", "gather", "scatter") else 1) <= (1 << 28)]
            per_routine[nranks] = imb_model_series(machine, routine, nranks, sizes)
        out["series"][routine] = per_routine
        largest = per_routine[ranks_list[-1]]
        gm_slowdowns[routine] = _geometric_mean(
            [row["wasm_us"] / row["native_us"] for row in largest.values()]
        ) - 1.0
    out["gm_slowdowns"] = gm_slowdowns
    # Maximum PingPong bandwidth (the §4.5 text numbers).
    pingpong = out["series"]["pingpong"][2]
    out["max_bandwidth_native_gib_s"] = max(
        nbytes / (row["native_us"] * 1e-6) / 2**30 for nbytes, row in pingpong.items()
    )
    out["max_bandwidth_wasm_gib_s"] = max(
        nbytes / (row["wasm_us"] * 1e-6) / 2**30 for nbytes, row in pingpong.items()
    )
    return out


@register_experiment("figure4")
def figure4_graviton2(
    routines: Sequence[str] = ("pingpong", "sendrecv", "allreduce", "allgather", "alltoall"),
    nranks: int = 32,
    message_sizes: Sequence[int] = FIGURE_MESSAGE_SIZES,
) -> Dict[str, object]:
    """Figure 4: selected IMB routines + HPCG on the Graviton2 node."""
    machine = graviton2()
    out: Dict[str, object] = {"machine": machine.name, "mode": "model", "series": {}}
    for routine in routines:
        ranks = 2 if routine == "pingpong" else nranks
        out["series"][routine] = {ranks: imb_model_series(machine, routine, ranks, message_sizes)}
    out["hpcg"] = hpcg_scaling_model(machine, rank_counts=(1, 2, 4, 8, 16, 32))
    out["gm_slowdowns"] = {
        routine: _geometric_mean(
            [row["wasm_us"] / row["native_us"] for row in list(series.values())[0].values()]
        ) - 1.0
        for routine, series in out["series"].items()
    }
    return out


# -------------------------------------------------------------------- HPCG model


def hpcg_scaling_model(
    machine: MachinePreset,
    rank_counts: Sequence[int] = (48, 16, 96, 144, 192, 768, 1536, 3072, 6144),
    rows_per_rank: int = 128 ** 3 // 16,
    simd_fraction: float = 0.01,
) -> Dict[int, Dict[str, float]]:
    """HPCG GFLOP/s and memory bandwidth vs rank count, native and Wasm.

    Per iteration each rank does ``rows_per_rank`` stencil rows of work at the
    machine's sustained rate and joins two 8-byte ``MPI_Allreduce`` calls.  The
    number of allreduce calls per unit of work grows with the rank count (the
    §4.5 observation: 768 ranks make 4x more Allreduce calls than 192), so the
    embedder's per-call translation overhead grows into a visible gap -- about
    14% at 6144 ranks -- while staying negligible at small scale.
    """
    interconnect = machine.interconnect() if machine.max_nodes > 1 else machine.intranode()
    cost_model = CollectiveCostModel(interconnect)
    out: Dict[int, Dict[str, float]] = {}
    for nranks in sorted(rank_counts):
        flops_per_iter = rows_per_rank * FLOPS_PER_ROW_PER_ITER
        bytes_per_iter = rows_per_rank * BYTES_PER_ROW_PER_ITER
        compute_native = flops_per_iter / (machine.sustained_gflops_per_core * 1e9)
        compute_wasm = compute_native * machine.wasm_simd_penalty(simd_fraction)
        # Allreduce calls per iteration grow linearly with scale (weak scaling
        # of the dot-product count relative to the 192-rank baseline).
        allreduce_calls = 2.0 * max(1.0, nranks / 192.0)
        allreduce_native = allreduce_calls * cost_model.allreduce(8, nranks)
        per_call_overhead = OVERHEADS.call_cost(1, "MPI_DOUBLE", 8)
        # The embedder re-translates handles in every round of the collective,
        # and acquiring the Env read lock contends more as the number of
        # in-flight translations grows with the rank count (§4.6) -- the
        # contention factor is calibrated so the 6144-rank gap lands near the
        # paper's 14%.
        rounds = max(1, int(math.ceil(math.log2(max(nranks, 2)))))
        contention = 1.0 + nranks / 1536.0
        allreduce_wasm = allreduce_calls * (
            cost_model.allreduce(8, nranks) + per_call_overhead * rounds * contention
        )
        t_native = compute_native + allreduce_native
        t_wasm = compute_wasm + allreduce_wasm
        out[nranks] = {
            "native_gflops": nranks * flops_per_iter / t_native / 1e9,
            "wasm_gflops": nranks * flops_per_iter / t_wasm / 1e9,
            "native_gb_s": nranks * bytes_per_iter / t_native / 1e9,
            "wasm_gb_s": nranks * bytes_per_iter / t_wasm / 1e9,
            "wasm_reduction": 1.0 - t_native / t_wasm,
        }
    return out


# ------------------------------------------------------------------- Figure 5


@register_experiment("figure5")
def figure5_npb_ior_hpcg(functional_ranks: int = 4) -> Dict[str, object]:
    """Figure 5: NPB IS/DT, IOR bandwidth and HPCG scaling."""
    machine = supermuc_ng()
    out: Dict[str, object] = {"machine": machine.name}

    # -- IS: Mop/s vs rank count (model: communication-bound scaling curve) --
    is_series: Dict[int, Dict[str, float]] = {}
    cost_model = CollectiveCostModel(machine.interconnect())
    keys_per_rank = 1 << 21  # class C scale per rank
    for nranks in (64, 128, 256, 512, 1024):
        sort_time = keys_per_rank * 6e-9
        comm_time = cost_model.alltoall(keys_per_rank * 4 // nranks, nranks) + cost_model.allreduce(
            4 * nranks, nranks
        )
        native = sort_time + comm_time
        wasm = sort_time * 1.03 + comm_time + _wasm_call_overhead("alltoall", keys_per_rank * 4 // nranks)
        is_series[nranks] = {
            "native_mops": nranks * keys_per_rank / native / 1e6,
            "wasm_mops": nranks * keys_per_rank / wasm / 1e6,
        }
    out["is"] = is_series

    # -- DT: throughput per topology, native vs Wasm with and without SIMD --
    dt_series: Dict[str, Dict[str, float]] = {}
    elems = 1 << 20
    for topology, fan in (("bh", 4), ("wh", 4), ("sh", 1)):
        move_time = elems * 8 / machine.interconnect().params.bandwidth * fan
        compare_native = elems * 2 / (machine.sustained_gflops_per_core * 1e9)
        simd_fraction = 0.75  # DT's pairwise comparisons vectorise heavily
        compare_simd = compare_native * machine.wasm_simd_penalty(simd_fraction, True)
        compare_nosimd = compare_native * machine.wasm_simd_penalty(simd_fraction, False)
        total_bytes = elems * 8 * fan
        dt_series[topology] = {
            "native_mb_s": total_bytes / (move_time + compare_native) / 1e6,
            "wasm_simd_mb_s": total_bytes / (move_time + compare_simd) / 1e6,
            "wasm_nosimd_mb_s": total_bytes / (move_time + compare_nosimd) / 1e6,
        }
    out["dt"] = dt_series
    out["dt_simd_speedup"] = _geometric_mean(
        [row["wasm_simd_mb_s"] / row["wasm_nosimd_mb_s"] for row in dt_series.values()]
    )

    # -- IOR: aggregate read/write bandwidth vs block size on 4 nodes ---------
    ior_series: Dict[int, Dict[str, float]] = {}
    fs = machine.filesystem
    nnodes = 4
    nranks = nnodes * machine.cores_per_node
    for block_mib in (1, 4, 8, 12, 16):
        block = block_mib << 20
        ior_series[block_mib] = {
            "native_read_mib_s": fs.aggregate_bandwidth(block, nranks, nnodes, write=False) / 2**20,
            "native_write_mib_s": fs.aggregate_bandwidth(block, nranks, nnodes, write=True) / 2**20,
            "wasm_read_mib_s": fs.aggregate_bandwidth(
                block, nranks, nnodes, write=False,
                extra_overhead_per_byte=WASI_INDIRECTION_OVERHEAD_PER_BYTE) / 2**20,
            "wasm_write_mib_s": fs.aggregate_bandwidth(
                block, nranks, nnodes, write=True,
                extra_overhead_per_byte=WASI_INDIRECTION_OVERHEAD_PER_BYTE) / 2**20,
        }
    out["ior"] = ior_series

    # -- HPCG: GFLOP/s and bandwidth scaling up to 6144 ranks -----------------
    out["hpcg"] = hpcg_scaling_model(
        machine, rank_counts=(48, 16, 96, 144, 192, 768, 1536, 3072, 6144)
    )
    out["hpcg_reduction_at_6144"] = out["hpcg"][6144]["wasm_reduction"]
    return out


# ------------------------------------------------------------------- Figure 6


@register_experiment("figure6")
def figure6_translation_overhead(
    message_sizes: Sequence[int] = FIGURE6_MESSAGE_SIZES,
    functional: bool = True,
) -> Dict[str, object]:
    """Figure 6: datatype translation overhead per datatype and message size."""
    from repro.core.datatype_translation import DatatypeTranslator

    translator = DatatypeTranslator(OVERHEADS)
    names = tuple(name for name, _handle in FIGURE6_DATATYPES)
    model_table = translator.sweep(names, tuple(message_sizes))
    result: Dict[str, object] = {
        "model_ns": {
            name: {size: value * 1e9 for size, value in row.items()}
            for name, row in model_table.items()
        },
        "average_ns": {
            name: sum(row.values()) / len(row) * 1e9 for name, row in model_table.items()
        },
    }
    if functional:
        job = current_session().run(
            make_translation_pingpong_program(message_sizes=(8, 1024, 65536), iterations=1),
            2,
            machine="graviton2",
        )
        measured = {}
        for name, _handle in FIGURE6_DATATYPES:
            series = job.metrics.series(f"embedder.translation.{name}")
            if series.count:
                measured[name] = series.mean * 1e9
        result["measured_mean_ns"] = measured
    return result


# ------------------------------------------------------------------- Figure 7


@register_experiment("figure7")
def figure7_faasm_comparison(
    message_sizes: Sequence[int] = FIGURE_MESSAGE_SIZES,
) -> Dict[str, object]:
    """Figure 7: PingPong iteration time, MPIWasm vs Faasm."""
    machine = supermuc_ng()
    mpiwasm_series = imb_model_series(machine, "pingpong", 2, message_sizes)
    faasm = FaasmPlatform()
    faasm_series = faasm.pingpong_series(message_sizes)
    rows = {
        nbytes: {
            "mpiwasm_us": mpiwasm_series[nbytes]["wasm_us"],
            "faasm_us": faasm_series[nbytes] * 1e6,
        }
        for nbytes in message_sizes
    }
    speedups = [row["faasm_us"] / row["mpiwasm_us"] for row in rows.values()]
    return {
        "series": rows,
        "gm_speedup": _geometric_mean(speedups),
        "faasm_runs_imb": faasm.supports_benchmark("imb"),
    }


# ----------------------------------------------------- collective algorithms


@register_experiment("algosweep")
def imb_algorithm_sweep(
    routine: str = "allreduce",
    nranks: int = 5,
    machine: str = "graviton2",
    message_sizes: Sequence[int] = (256, 4096, 65536),
    iterations: int = 2,
    algorithms: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Functional IMB sweep over every registered algorithm of one collective.

    The algorithm-selection analogue of the figure experiments: runs the IMB
    routine once per algorithm (forced through the shared selector, the same
    path ``REPRO_COLL_ALGO`` takes), reports the per-size timings, the
    fastest algorithm per message size, and what the default decision table
    would have picked -- so decision-table thresholds can be (re)calibrated
    against measured behaviour.  The default 5 ranks deliberately exercise
    the non-power-of-two code paths.
    """
    from repro.benchmarks_suite.imb import make_imb_algorithm_sweep_program
    from repro.mpi.algorithms.decision import DecisionTable

    program = make_imb_algorithm_sweep_program(
        routine, message_sizes=message_sizes, iterations=iterations, algorithms=algorithms
    )
    job = current_session().run(program, nranks, machine=machine)
    result = job.return_values()[0]
    collective = result["collective"]
    per_algorithm: Dict[str, Dict[int, Dict[str, float]]] = result["algorithms"]
    table = DecisionTable()
    best_per_size: Dict[int, str] = {}
    table_choice_per_size: Dict[int, str] = {}
    for size in message_sizes:
        times = {name: rows[size]["t_avg_us"] for name, rows in per_algorithm.items()}
        best_per_size[size] = min(times, key=times.get)
        table_choice_per_size[size] = table.decide(collective, size, nranks)
    return {
        "routine": routine,
        "collective": collective,
        "machine": job.machine,
        "nranks": nranks,
        "mode": "functional",
        "series": per_algorithm,
        "best_per_size": best_per_size,
        "table_choice_per_size": table_choice_per_size,
        "collective_counters": job.metrics.collective_summary(),
    }


@register_experiment("nbc")
def nbc_overlap(
    routines: Sequence[str] = ("ibarrier", "ibcast", "iallreduce", "iallgather", "ialltoall"),
    nranks: int = 4,
    machine: str = "graviton2",
    message_sizes: Sequence[int] = (256, 4096, 65536),
    iterations: int = 2,
) -> Dict[str, object]:
    """IMB-NBC style overlap sweep over every non-blocking collective.

    Functional runs (real schedules advanced by the progress engine through
    the full Wasm import path): for each routine, the per-size pure/overlapped
    timings plus the achieved communication/computation overlap, and the
    per-collective overlap statistics accumulated in the metrics registry.
    """
    from repro.benchmarks_suite.imb import make_imb_nbc_program

    out: Dict[str, object] = {"machine": machine, "nranks": nranks, "mode": "functional",
                              "series": {}, "overlap": {}}
    for routine in routines:
        program = make_imb_nbc_program(routine, message_sizes=message_sizes, iterations=iterations)
        job = current_session().run(program, nranks, machine=machine)
        result = job.return_values()[0]
        out["series"][routine] = result["rows"]
        summary = job.metrics.nbc_overlap_summary().get(result["collective"], {})
        out["overlap"][routine] = summary
    out["gm_overlap"] = _geometric_mean(
        [row.get("mean", 0.0) for row in out["overlap"].values()]
    )
    return out


def nbc_campaign_spec(
    nranks: Sequence[int] = (2, 4),
    backends: Sequence[str] = ("singlepass", "cranelift"),
    machine: str = "graviton2",
    seed: int = 0,
) -> Dict[str, object]:
    """Scenario matrix sweeping the non-blocking collectives.

    Expands to (5 NBC routines) x (wasm across ``backends`` + native) x
    ``nranks`` on one machine -- the campaign shape the PR 3 harness runs
    with ``repro-harness campaign --workers N`` (see
    ``examples/campaign_nbc.json`` for the file form).
    """
    return {
        "name": "nbc-overlap",
        "seed": seed,
        "benchmarks": [
            {
                "benchmark": ["ibarrier", "ibcast", "iallreduce", "iallgather", "ialltoall"],
                "mode": ["wasm", "native"],
                "backend": list(backends),
                "nranks": list(nranks),
                "machine": machine,
            }
        ],
    }


# ------------------------------------------------------------- functional runs


@register_experiment("crosscheck-campaign")
def functional_crosscheck_campaign(
    nranks: int = 4, machine: str = "graviton2", workers: int = 1
) -> Dict[str, object]:
    """The :func:`functional_crosscheck` matrix expressed as a campaign.

    Same (routine x mode) points, but expanded from a declarative scenario
    matrix and executed by :func:`repro.harness.campaign.run_campaign` --
    the shape every figure sweep now shares.  With ``workers > 1`` the jobs
    run on the process pool; results are identical either way.
    """
    from repro.harness.campaign import CampaignSpec, run_campaign

    spec = CampaignSpec(
        name="crosscheck",
        benchmarks=[
            {"benchmark": "pingpong", "mode": ["wasm", "native"], "nranks": 2,
             "machine": machine},
            {"benchmark": ["allreduce", "alltoall"], "mode": ["wasm", "native"],
             "nranks": nranks, "machine": machine},
        ],
    )
    result = run_campaign(spec, workers=workers)
    out: Dict[str, object] = {}
    for routine in ("pingpong", "allreduce", "alltoall"):
        ranks = 2 if routine == "pingpong" else nranks
        wasm = result.outcome(f"{routine}/wasm/cranelift/np{ranks}/{machine}#r0")
        native = result.outcome(f"{routine}/native/np{ranks}/{machine}#r0")
        if not (wasm.ok and native.ok):
            out[routine] = {"error": (wasm.error or native.error)}
            continue
        wasm_rows = wasm.return_values[0]["rows"]
        native_rows = native.return_values[0]["rows"]
        slowdowns = [
            wasm_rows[s]["t_avg_us"] / native_rows[s]["t_avg_us"]
            for s in wasm_rows
            if native_rows[s]["t_avg_us"] > 0
        ]
        out[routine] = {
            "gm_slowdown": _geometric_mean(slowdowns) - 1.0,
            "wasm_makespan_us": wasm.makespan * 1e6,
            "native_makespan_us": native.makespan * 1e6,
        }
    return out


@register_experiment("crosscheck")
def functional_crosscheck(nranks: int = 4, machine: str = "graviton2") -> Dict[str, object]:
    """Small-scale functional native-vs-Wasm runs used to sanity check the models."""
    sizes = (1, 256, 4096, 65536)
    results: Dict[str, object] = {}
    for routine in ("pingpong", "allreduce", "alltoall"):
        ranks = 2 if routine == "pingpong" else nranks
        program = make_imb_program(routine, message_sizes=sizes, iterations=2)
        session = current_session()
        wasm_job = session.run(program, ranks, machine=machine)
        native_job = session.run(program, ranks, mode="native", machine=machine)
        wasm_rows = wasm_job.return_values()[0]["rows"]
        native_rows = native_job.return_values()[0]["rows"]
        slowdowns = [
            wasm_rows[s]["t_avg_us"] / native_rows[s]["t_avg_us"]
            for s in sizes
            if native_rows[s]["t_avg_us"] > 0
        ]
        results[routine] = {
            "gm_slowdown": _geometric_mean(slowdowns) - 1.0,
            "wasm_makespan_us": wasm_job.makespan * 1e6,
            "native_makespan_us": native_job.makespan * 1e6,
        }
    return results


@register_experiment("chaos")
def chaos_recovery(
    nranks: int = 4,
    machine: str = "graviton2",
    victim: int = 1,
    kill_call_index: int = 2,
    checkpoint_round: int = 1,
    max_restarts: int = 2,
) -> Dict[str, object]:
    """Kill one rank mid-``MPI_Allreduce``; recover and verify bit-for-bit.

    The fault-tolerance acceptance experiment (:mod:`repro.fault`), four
    phases sharing one IMB-allreduce job:

    1. a clean run establishes the oracle (makespan, exit codes, rows),
    2. the same job re-runs under a checkpoint capture at a schedule-round
       boundary, producing a restorable snapshot,
    3. a seeded :class:`FaultPlan` kills the victim rank on its
       ``kill_call_index``-th ``MPI_Allreduce`` and
       :func:`run_with_recovery` restarts past the injected failure,
    4. :func:`resume_from_checkpoint` replays the snapshot with per-rank
       state validation at the captured round crossing.

    Both the recovered run and the resumed run must match the oracle
    exactly -- any divergence is reported (and asserted on by the CI
    chaos-smoke job) rather than papered over.
    """
    from repro.fault import (
        Fault,
        FaultPlan,
        capture_checkpoint,
        job_descriptor,
        resume_from_checkpoint,
        run_with_recovery,
    )
    from repro.fault.checkpoint import Checkpoint

    session = current_session()
    benchmark = "allreduce"

    def oracle_view(job) -> Dict[str, object]:
        return {
            "makespan": job.makespan,
            "exit_codes": job.exit_codes(),
            "rows": job.return_values()[0]["rows"],
        }

    baseline = session.run(benchmark, nranks, machine=machine)
    oracle = oracle_view(baseline)

    with capture_checkpoint(
        checkpoint_round,
        job=job_descriptor(benchmark, nranks, machine=machine),
    ) as capture:
        ckpt_job = session.run(benchmark, nranks, machine=machine)
    checkpoint = Checkpoint(capture.build())

    plan = FaultPlan(
        faults=(Fault(kind="kill_rank", rank=victim, call="MPI_Allreduce",
                      call_index=kill_call_index),),
        seed=42,
    )
    recovery = run_with_recovery(
        benchmark, nranks, plan=plan, max_restarts=max_restarts,
        session=session, machine=machine,
    )
    resumed = resume_from_checkpoint(checkpoint, session=session)

    fault_counters = {
        name: value
        for name, value in recovery.job.metrics.counters().items()
        if name.startswith("fault.")
    }
    return {
        "benchmark": benchmark,
        "nranks": nranks,
        "victim": victim,
        "plan": plan.to_dict(),
        "oracle_makespan": oracle["makespan"],
        "attempts": recovery.attempts,
        "recovered": recovery.recovered,
        "fired": recovery.fired,
        "failures": recovery.failures,
        "fault_counters": fault_counters,
        "checkpoint": {
            "at_round": checkpoint.at_round,
            "nranks": checkpoint.nranks,
            "ranks_captured": len(checkpoint.ranks),
        },
        "checkpoint_run_matches_oracle": oracle_view(ckpt_job) == oracle,
        "recovered_matches_oracle": oracle_view(recovery.job) == oracle,
        "resume_matches_oracle": oracle_view(resumed) == oracle,
    }


# ------------------------------------------------------------ campaign plumbing

#: Every table/figure driver, keyed by the name the CLI and the campaign
#: runner's ``experiments`` entries use.  Since the session-API redesign this
#: is a live view of the unified registry
#: (:data:`repro.api.registry.EXPERIMENTS`): the drivers above register
#: themselves with ``@register_experiment``, and third-party drivers added
#: the same way appear here automatically.
EXPERIMENT_DRIVERS = EXPERIMENTS.entries


def figure_campaign_spec(
    figures: Sequence[str] = ("figure3", "figure4", "figure5", "figure6", "figure7"),
    functional_benchmarks: bool = True,
    seed: int = 0,
) -> Dict[str, object]:
    """Scenario matrix covering a full figure regeneration sweep.

    One ``experiment`` job per figure driver plus (optionally) the
    functional native-vs-Wasm benchmark points the models are sanity-checked
    against -- the job list the acceptance criterion's figure-5-class
    ``repro-harness campaign --workers 4`` run expands to.
    """
    spec: Dict[str, object] = {
        "name": "figures",
        "seed": seed,
        "experiments": [{"experiment": name} for name in figures],
    }
    if functional_benchmarks:
        spec["benchmarks"] = [
            {"benchmark": "pingpong", "mode": ["wasm", "native"], "nranks": 2,
             "machine": "graviton2"},
            {"benchmark": ["allreduce", "alltoall"], "mode": ["wasm", "native"],
             "nranks": 4, "machine": "graviton2"},
        ]
    return spec
