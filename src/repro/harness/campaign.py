"""Parallel experiment campaign runner.

The paper's evaluation is a large matrix of (benchmark x backend x rank-count
x machine) jobs, every one of them independent.  This module turns a
declarative *scenario matrix* into a job list and executes it either serially
in-process (the default, fully deterministic path) or on a
:mod:`multiprocessing` worker pool with per-job process isolation:

* every job gets a deterministic seed derived from the campaign seed and the
  job id, so the serial and parallel paths produce identical results,
* a failed job yields a structured error record (type, message, traceback)
  instead of killing the campaign,
* every worker process owns **one warm** :class:`repro.api.Session` for the
  whole campaign, so an N-repeat sweep compiles each distinct module once per
  worker even with the on-disk cache disabled (``"cache_dir": false`` in the
  spec) -- and the session's in-memory tier skips the disk round-trip on
  repeat jobs when the disk cache *is* enabled,
* all workers additionally share one on-disk AoT compilation cache
  (:class:`repro.wasm.compilers.cache.FileSystemCache`), whose per-key locks
  and atomic publishes guarantee each distinct guest module is compiled
  exactly once across the pool,
* per-job metrics ship back as plain snapshots and are folded into one
  aggregate :class:`~repro.sim.metrics.MetricsRegistry`, and the whole
  campaign serialises to a machine-readable ``campaign.json``.

Spec format (a mapping; JSON and -- when PyYAML is installed -- YAML files
are accepted by :meth:`CampaignSpec.from_file`)::

    {
      "name": "fig5-class-sweep",
      "seed": 7,
      "benchmarks": [                       # matrix entries; scalars or lists
        {"benchmark": ["allreduce", "alltoall"],
         "mode": ["wasm", "native"],
         "backend": "cranelift",
         "nranks": [2, 4],
         "machine": "graviton2",
         "algorithms": {"allreduce": "ring"},
         "repeats": 2}
      ],
      "experiments": [                      # figure/table drivers
        {"experiment": "figure5"},
        {"experiment": "figure6", "params": {"functional": false}}
      ]
    }

Every list-valued field of a ``benchmarks`` entry is swept as one matrix
axis; ``repeats`` replicates each expanded point with distinct seeds.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
import shutil
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core import envvars
from repro.obs import trace as _trace
from repro.sim.metrics import MetricsRegistry

#: Execution modes a benchmark job may request.
MODES = ("wasm", "native")
#: Compiler back-ends a wasm-mode job may request.
BACKENDS = ("singlepass", "cranelift", "llvm")

#: Keys understood in a ``benchmarks`` matrix entry.
_BENCHMARK_KEYS = {"benchmark", "mode", "backend", "nranks", "machine", "algorithms", "repeats"}
#: Keys understood in an ``experiments`` entry.
_EXPERIMENT_KEYS = {"experiment", "params", "repeats"}

#: Metric prefixes excluded from the determinism fingerprint: which worker
#: wins the compile race (and therefore records the miss) is scheduling-
#: dependent, while every other metric is fixed by the simulation.
_FINGERPRINT_EXCLUDE = (MetricsRegistry.CACHE_PREFIX, "wasm.compile_seconds")

#: Result keys carrying host wall-clock measurements (table1's compile times
#: and kernel throughput); stripped from fingerprints for the same reason.
_WALL_CLOCK_KEYS = frozenset({"compile_ms", "kernel_mflops", "compile_seconds"})


def _strip_wall_clock(obj: object) -> object:
    """Recursively drop wall-clock-measured fields from a driver result."""
    if isinstance(obj, Mapping):
        return {k: _strip_wall_clock(v) for k, v in obj.items() if k not in _WALL_CLOCK_KEYS}
    if isinstance(obj, (list, tuple)):
        return [_strip_wall_clock(v) for v in obj]
    return obj


# ------------------------------------------------------------------ job specs


@dataclass(frozen=True)
class JobSpec:
    """One fully-expanded campaign job (immutable, picklable)."""

    kind: str                                 # "benchmark" or "experiment"
    name: str                                 # benchmark or experiment name
    mode: str = "wasm"                        # benchmark jobs: wasm | native
    backend: str = "cranelift"                # benchmark jobs, wasm mode
    nranks: int = 2
    machine: str = "graviton2"
    algorithms: Tuple[Tuple[str, str], ...] = ()   # forced collective algos
    params: Tuple[Tuple[str, object], ...] = ()    # experiment driver kwargs
    repeat: int = 0

    @property
    def job_id(self) -> str:
        """Stable human-readable identifier (also the seed-derivation input)."""
        if self.kind == "experiment":
            parts = [self.name]
            if self.params:
                parts.append(",".join(f"{k}={v}" for k, v in self.params))
        else:
            parts = [self.name, self.mode]
            if self.mode == "wasm":
                parts.append(self.backend)
            parts.append(f"np{self.nranks}")
            parts.append(self.machine)
            if self.algorithms:
                parts.append(",".join(f"{c}:{a}" for c, a in self.algorithms))
        return "/".join(parts) + f"#r{self.repeat}"

    def seed(self, campaign_seed: int) -> int:
        """Deterministic per-job seed: identical in serial and parallel runs."""
        h = hashlib.blake2b(digest_size=8)
        h.update(str(campaign_seed).encode("ascii"))
        h.update(b"\x00")
        h.update(self.job_id.encode("utf-8"))
        return int.from_bytes(h.digest(), "big")

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form used in ``campaign.json``."""
        out: Dict[str, object] = {"kind": self.kind, "name": self.name, "repeat": self.repeat}
        if self.kind == "benchmark":
            out.update(mode=self.mode, nranks=self.nranks, machine=self.machine)
            if self.mode == "wasm":
                out["backend"] = self.backend
            if self.algorithms:
                out["algorithms"] = dict(self.algorithms)
        elif self.params:
            out["params"] = dict(self.params)
        return out


@dataclass
class JobOutcome:
    """Result (or structured failure record) of one campaign job."""

    job_id: str
    spec: JobSpec
    seed: int
    status: str = "ok"                        # "ok" or "error"
    wall_seconds: float = 0.0
    makespan: Optional[float] = None          # benchmark jobs: virtual seconds
    exit_codes: List[int] = field(default_factory=list)
    return_values: List[object] = field(default_factory=list)
    result: object = None                     # experiment jobs: driver output
    metrics: Dict[str, Dict[str, object]] = field(default_factory=dict)
    error: Optional[Dict[str, str]] = None    # {"type", "message", "traceback"}
    #: Recorder snapshot when the job ran with tracing on.  Deliberately
    #: excluded from :meth:`fingerprint` (spans carry wall-clock readings)
    #: and from :meth:`to_dict` (the merged campaign timeline is exported
    #: separately; per-job raw events would bloat ``campaign.json``).
    trace: Optional[dict] = None
    #: Fingerprint recorded in the journal at completion time.  Restored
    #: outcomes honor it verbatim: recomputing from JSON-round-tripped fields
    #: would not survive repr-encoded values, and the journal's digest *is*
    #: the original run's.
    stored_fingerprint: Optional[str] = None
    #: True when this outcome was restored from a resume journal instead of
    #: executed (``campaign --resume`` re-runs only unfinished jobs).
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def cache_events(self) -> Dict[str, int]:
        """This job's AoT-cache lookups, read back from its metrics snapshot."""
        counters = self.metrics.get("counters", {})
        prefix = MetricsRegistry.CACHE_PREFIX
        return {
            "hits": int(counters.get(f"{prefix}hit", 0)),
            "misses": int(counters.get(f"{prefix}miss", 0)),
        }

    def fingerprint(self) -> str:
        """Digest of everything deterministic about this job's outcome.

        Serial and parallel executions of the same campaign must agree on
        every fingerprint; cache hit/miss counters and host wall-clock
        measurements (compile times, table1's kernel throughput) are
        excluded because they depend on scheduling and host load, not on
        the simulation.
        """
        if self.stored_fingerprint is not None:
            return self.stored_fingerprint
        counters = {
            k: v for k, v in self.metrics.get("counters", {}).items()
            if not k.startswith(_FINGERPRINT_EXCLUDE)
        }
        series = {
            k: v for k, v in self.metrics.get("series", {}).items()
            if not k.startswith(_FINGERPRINT_EXCLUDE)
        }
        payload = json.dumps(
            {
                "job_id": self.job_id,
                "status": self.status,
                "makespan": self.makespan,
                "exit_codes": self.exit_codes,
                "return_values": self.return_values,
                "result": _strip_wall_clock(self.result),
                "counters": counters,
                "series": series,
                "error_type": (self.error or {}).get("type"),
            },
            sort_keys=True,
            default=repr,
        )
        return hashlib.blake2b(payload.encode("utf-8"), digest_size=16).hexdigest()

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form used in ``campaign.json``."""
        return {
            "job_id": self.job_id,
            "spec": self.spec.to_dict(),
            "seed": self.seed,
            "status": self.status,
            "wall_seconds": self.wall_seconds,
            "makespan": self.makespan,
            "exit_codes": self.exit_codes,
            "return_values": self.return_values,
            "result": self.result,
            "cache": self.cache_events(),
            "metrics_counters": self.metrics.get("counters", {}),
            "error": self.error,
            "fingerprint": self.fingerprint(),
            "resumed": self.resumed,
        }


# ------------------------------------------------------------------ the spec


def _as_tuple(value: object) -> Tuple[object, ...]:
    if isinstance(value, (list, tuple)):
        return tuple(value)
    return (value,)


def _algorithm_variants(value: object) -> Tuple[Tuple[Tuple[str, str], ...], ...]:
    """Normalise the ``algorithms`` field into sweepable variants.

    A mapping is one variant; a list of mappings is one variant per entry
    (so overrides can be swept as a matrix axis, like the algosweep driver).
    """
    if value is None:
        return ((),)
    if isinstance(value, Mapping):
        return (tuple(sorted(value.items())),)
    if isinstance(value, (list, tuple)):
        variants = []
        for entry in value:
            if not isinstance(entry, Mapping):
                raise ValueError(f"algorithms list entries must be mappings, got {entry!r}")
            variants.append(tuple(sorted(entry.items())))
        return tuple(variants) or ((),)
    raise ValueError(f"algorithms must be a mapping or list of mappings, got {value!r}")


@dataclass
class CampaignSpec:
    """Declarative scenario matrix; :meth:`expand` yields the job list.

    ``cache_dir`` may be a directory path (shared on-disk AoT cache),
    ``None`` (fall back to ``$REPRO_CACHE_DIR`` or a private temp dir), or
    ``False`` (JSON ``false``: no on-disk cache at all -- jobs then rely on
    each worker's warm in-memory session store).
    """

    name: str = "campaign"
    seed: int = 0
    cache_dir: Union[str, bool, None] = None
    trace: bool = False
    benchmarks: List[Mapping[str, object]] = field(default_factory=list)
    experiments: List[Mapping[str, object]] = field(default_factory=list)

    @classmethod
    def from_mapping(cls, mapping: Mapping[str, object]) -> "CampaignSpec":
        known = {"name", "seed", "cache_dir", "trace", "benchmarks", "experiments"}
        unknown = set(mapping) - known
        if unknown:
            raise ValueError(f"unknown campaign spec keys {sorted(unknown)}; known: {sorted(known)}")
        return cls(
            name=str(mapping.get("name", "campaign")),
            seed=int(mapping.get("seed", 0)),
            cache_dir=mapping.get("cache_dir"),
            trace=bool(mapping.get("trace", False)),
            benchmarks=list(mapping.get("benchmarks", [])),
            experiments=list(mapping.get("experiments", [])),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "CampaignSpec":
        """Load a spec from a JSON file (or YAML, when PyYAML is available)."""
        path = Path(path)
        text = path.read_text(encoding="utf-8")
        if path.suffix in (".yaml", ".yml"):
            try:
                import yaml  # type: ignore[import-untyped]
            except ImportError as exc:  # pragma: no cover - environment-dependent
                raise RuntimeError(
                    f"{path} is YAML but PyYAML is not installed; use a JSON spec instead"
                ) from exc
            return cls.from_mapping(yaml.safe_load(text))
        return cls.from_mapping(json.loads(text))

    def to_mapping(self) -> Dict[str, object]:
        """Plain-data form (accepted back by :meth:`from_mapping`).

        A resumable campaign persists this into its journal directory, so
        ``campaign --resume <dir>`` needs no spec argument.
        """
        return {
            "name": self.name,
            "seed": self.seed,
            "cache_dir": self.cache_dir,
            "trace": self.trace,
            "benchmarks": list(self.benchmarks),
            "experiments": list(self.experiments),
        }

    def expand(self) -> List[JobSpec]:
        """Expand the matrix into the concrete, validated job list."""
        from repro.benchmarks_suite import registry
        from repro.harness.experiments import EXPERIMENT_DRIVERS

        jobs: List[JobSpec] = []
        for entry in self.benchmarks:
            unknown = set(entry) - _BENCHMARK_KEYS
            if unknown:
                raise ValueError(
                    f"unknown benchmark matrix keys {sorted(unknown)}; known: {sorted(_BENCHMARK_KEYS)}"
                )
            if "benchmark" not in entry:
                raise ValueError(f"benchmark matrix entry missing 'benchmark': {entry!r}")
            repeats = int(entry.get("repeats", 1))
            if repeats < 1:
                raise ValueError(f"repeats must be >= 1, got {repeats}")
            axes = itertools.product(
                _as_tuple(entry["benchmark"]),
                _as_tuple(entry.get("mode", "wasm")),
                _as_tuple(entry.get("backend", "cranelift")),
                _as_tuple(entry.get("nranks", 2)),
                _as_tuple(entry.get("machine", "graviton2")),
                _algorithm_variants(entry.get("algorithms")),
                range(repeats),
            )
            seen_ids = {job.job_id for job in jobs}
            for benchmark, mode, backend, nranks, machine, algorithms, repeat in axes:
                if benchmark not in registry.names():
                    raise ValueError(f"unknown benchmark {benchmark!r}; known: {registry.names()}")
                if mode not in MODES:
                    raise ValueError(f"unknown mode {mode!r}; known: {MODES}")
                if backend not in BACKENDS:
                    raise ValueError(f"unknown backend {backend!r}; known: {BACKENDS}")
                job = JobSpec(
                    kind="benchmark",
                    name=str(benchmark),
                    mode=str(mode),
                    backend=str(backend),
                    nranks=int(nranks),
                    machine=str(machine),
                    algorithms=algorithms,
                    repeat=repeat,
                )
                # Axes irrelevant to a job collapse out of its id (native
                # jobs ignore the backend axis, for instance); keep exactly
                # one job per distinct id so nothing runs twice.
                if job.job_id in seen_ids:
                    continue
                seen_ids.add(job.job_id)
                jobs.append(job)
        for entry in self.experiments:
            unknown = set(entry) - _EXPERIMENT_KEYS
            if unknown:
                raise ValueError(
                    f"unknown experiment keys {sorted(unknown)}; known: {sorted(_EXPERIMENT_KEYS)}"
                )
            if "experiment" not in entry:
                raise ValueError(f"experiment entry missing 'experiment': {entry!r}")
            name = str(entry["experiment"])
            if name not in EXPERIMENT_DRIVERS:
                raise ValueError(
                    f"unknown experiment {name!r}; known: {sorted(EXPERIMENT_DRIVERS)}"
                )
            params = entry.get("params", {})
            if not isinstance(params, Mapping):
                raise ValueError(f"experiment params must be a mapping, got {params!r}")
            for repeat in range(int(entry.get("repeats", 1))):
                jobs.append(
                    JobSpec(
                        kind="experiment",
                        name=name,
                        params=tuple(sorted(params.items())),
                        repeat=repeat,
                    )
                )
        if not jobs:
            raise ValueError("campaign spec expands to zero jobs")
        return jobs


def spec_for_experiments(names: Sequence[str], seed: int = 0) -> CampaignSpec:
    """Spec wrapping a plain list of figure/table drivers (the CLI 'run' path)."""
    return CampaignSpec(
        name="experiments",
        seed=seed,
        experiments=[{"experiment": name} for name in names],
    )


# ------------------------------------------------------------- job execution

#: Warm per-process session used by pool workers (set by the pool
#: initializer in each worker *after* the fork, so no compiled state leaks in
#: from the parent and every campaign starts its workers cold).
_WORKER_SESSION = None


def _fresh_session(cache_dir: Union[str, bool, None]):
    from repro.api.session import Session

    return Session(cache_dir=str(cache_dir) if isinstance(cache_dir, str) else None)


def _init_worker_session(cache_dir: Union[str, bool, None]) -> None:
    """Pool initializer: give this worker process one warm session."""
    global _WORKER_SESSION
    _WORKER_SESSION = _fresh_session(cache_dir)


def _job_session(cache_dir: Union[str, bool, None]):
    global _WORKER_SESSION
    if _WORKER_SESSION is None:
        _WORKER_SESSION = _fresh_session(cache_dir)
    return _WORKER_SESSION


def run_job(
    spec: JobSpec,
    campaign_seed: int = 0,
    cache_dir: Union[str, bool, None] = None,
    session=None,
    trace: bool = False,
) -> JobOutcome:
    """Execute one campaign job; never raises for job-level failures.

    This is the worker-pool entry point (top-level and picklable).  The seed
    is applied before the job body so repeated executions -- serial or on any
    worker -- are bit-identical.  Jobs run on a warm
    :class:`repro.api.Session` (``session`` if given, else this process's
    worker session), which is also installed as the *ambient* session for the
    job's duration; a string ``cache_dir`` is additionally exported as
    ``REPRO_CACHE_DIR`` so every compile inside the job -- including ones
    buried in experiment drivers and legacy shims -- goes through the shared
    on-disk cache.  ``cache_dir=False`` disables the on-disk cache; jobs then
    rely on the warm session store alone.  ``trace=True`` records the job on
    a fresh :mod:`repro.obs.trace` recorder and attaches the snapshot to the
    outcome (the campaign runner merges the snapshots into one timeline).
    """
    import numpy as np

    from repro.api.session import use_session

    seed = spec.seed(campaign_seed)
    outcome = JobOutcome(job_id=spec.job_id, spec=spec, seed=seed)
    random.seed(seed)
    np.random.seed(seed & 0xFFFFFFFF)
    if session is None:
        session = _job_session(cache_dir)
    if isinstance(cache_dir, str):
        scoped_cache: Optional[str] = str(cache_dir)
    elif cache_dir is False:
        # Disabled on-disk cache: export an *empty* value so live env
        # lookups inside the job (experiment drivers, legacy shims) see "no
        # cache directory" even if the surrounding process has a persistent
        # REPRO_CACHE_DIR exported.
        scoped_cache = ""
    else:
        scoped_cache = None
    start = time.perf_counter()
    try:
        with envvars.scoped("REPRO_CACHE_DIR", scoped_cache), use_session(session):
            if trace:
                with _trace.tracing() as recorder:
                    _dispatch_job(spec, cache_dir, outcome, session)
                outcome.trace = recorder.snapshot()
            else:
                _dispatch_job(spec, cache_dir, outcome, session)
    except BaseException as exc:  # noqa: BLE001 - failures become records
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        outcome.status = "error"
        outcome.error = {
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": traceback.format_exc(),
        }
    finally:
        outcome.wall_seconds = time.perf_counter() - start
    return outcome


def _dispatch_job(spec: JobSpec, cache_dir: Union[str, bool, None],
                  outcome: JobOutcome, session) -> None:
    if spec.kind == "benchmark":
        _run_benchmark_job(spec, cache_dir, outcome, session)
    elif spec.kind == "experiment":
        _run_experiment_job(spec, outcome)
    else:
        raise ValueError(f"unknown job kind {spec.kind!r}")


def _run_benchmark_job(spec: JobSpec, cache_dir: Union[str, bool, None],
                       outcome: JobOutcome, session) -> None:
    algorithms = dict(spec.algorithms)
    if spec.mode == "wasm":
        job = session.run(
            spec.name,
            spec.nranks,
            mode="wasm",
            machine=spec.machine,
            backend=spec.backend,
            algorithms=algorithms,
            cache_dir=str(cache_dir) if isinstance(cache_dir, str) else None,
        )
    else:
        job = session.run(
            spec.name,
            spec.nranks,
            mode="native",
            machine=spec.machine,
            algorithms=algorithms,
        )
    outcome.makespan = job.makespan
    outcome.exit_codes = job.exit_codes()
    outcome.return_values = job.return_values()
    outcome.metrics = job.metrics.snapshot()


def _run_experiment_job(spec: JobSpec, outcome: JobOutcome) -> None:
    from repro.api.registry import EXPERIMENTS

    driver = EXPERIMENTS.get(spec.name)
    outcome.result = driver(**dict(spec.params))
    outcome.exit_codes = [0]


def _interrupted_outcome(spec: JobSpec, campaign_seed: int) -> JobOutcome:
    """Structured record for a job the interrupt cut short (or never started)."""
    return JobOutcome(
        job_id=spec.job_id,
        spec=spec,
        seed=spec.seed(campaign_seed),
        status="interrupted",
        error={
            "type": "KeyboardInterrupt",
            "message": "campaign interrupted before this job completed",
            "traceback": "",
        },
    )


def _broken_outcome(spec: JobSpec, campaign_seed: int, exc: BaseException) -> JobOutcome:
    """Structured record for a job whose worker process died (e.g. SIGKILL)."""
    return JobOutcome(
        job_id=spec.job_id,
        spec=spec,
        seed=spec.seed(campaign_seed),
        status="error",
        error={
            "type": "BrokenProcessPool",
            "message": str(exc) or "a campaign worker process died before the job finished",
            "traceback": "",
        },
    )


def _run_job_with_journal(
    spec: JobSpec,
    campaign_seed: int = 0,
    cache_dir: Union[str, bool, None] = None,
    trace: bool = False,
    journal_dir: Union[str, None] = None,
) -> JobOutcome:
    """Pool entry point for journaled campaigns.

    The ``started`` event is written *by the worker* (a single ``O_APPEND``
    write, safe across processes), so a worker killed mid-job leaves its job
    at a non-terminal event and a resume re-runs exactly that job.
    """
    if journal_dir is not None:
        from repro.fault.journal import Journal

        Journal(journal_dir).record("started", spec.job_id)
    return run_job(spec, campaign_seed, cache_dir, trace=trace)


def _journal_terminal(journal, outcome: JobOutcome) -> None:
    """Record a job's terminal event with everything a resume needs."""
    journal.record(
        "done" if outcome.status == "ok" else "error",
        outcome.job_id,
        status=outcome.status,
        wall_seconds=outcome.wall_seconds,
        makespan=outcome.makespan,
        exit_codes=outcome.exit_codes,
        return_values=outcome.return_values,
        result=outcome.result,
        metrics=outcome.metrics,
        error=outcome.error,
        fingerprint=outcome.fingerprint(),
    )


def _outcome_from_record(job: JobSpec, campaign_seed: int, record: Mapping[str, object]) -> JobOutcome:
    """Reconstruct a finished job's outcome from its journal record."""
    return JobOutcome(
        job_id=job.job_id,
        spec=job,
        seed=job.seed(campaign_seed),
        status=str(record.get("status", "ok")),
        wall_seconds=float(record.get("wall_seconds") or 0.0),
        makespan=record.get("makespan"),
        exit_codes=list(record.get("exit_codes") or []),
        return_values=list(record.get("return_values") or []),
        result=record.get("result"),
        metrics=dict(record.get("metrics") or {}),
        error=record.get("error"),
        stored_fingerprint=record.get("fingerprint"),
        resumed=True,
    )


# ---------------------------------------------------------------- the runner


@dataclass
class CampaignResult:
    """All outcomes of one campaign plus the aggregate views."""

    name: str
    workers: int
    outcomes: List[JobOutcome]
    wall_seconds: float
    cache_stats: Dict[str, int] = field(default_factory=dict)
    compiled_modules: List[str] = field(default_factory=list)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    #: True when the campaign was cut short by ``KeyboardInterrupt``: the
    #: pool was terminated and joined, and every job that had not finished
    #: carries a status ``"interrupted"`` record instead of a result.
    interrupted: bool = False

    @property
    def ok(self) -> bool:
        return not self.errors and not self.interrupted

    @property
    def errors(self) -> List[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def outcome(self, job_id: str) -> JobOutcome:
        for o in self.outcomes:
            if o.job_id == job_id:
                return o
        raise KeyError(f"no job {job_id!r} in campaign {self.name!r}")

    def fingerprints(self) -> Dict[str, str]:
        """Per-job determinism digests (identical for serial and parallel runs)."""
        return {o.job_id: o.fingerprint() for o in self.outcomes}

    def trace_timeline(self) -> Optional[dict]:
        """One merged Chrome trace document for every traced job.

        Each job becomes a Chrome "process" lane (named after its job id)
        and each rank a "thread" within it, so the whole campaign loads as a
        single timeline in ``chrome://tracing`` / Perfetto.  ``None`` when no
        job recorded a trace.
        """
        labeled = [(o.job_id, o.trace) for o in self.outcomes if o.trace]
        if not labeled:
            return None
        from repro.obs import merge_traces

        return merge_traces(labeled)

    def write_trace(self, path: Union[str, Path]) -> Path:
        """Write the merged campaign timeline as Chrome trace-event JSON."""
        doc = self.trace_timeline()
        if doc is None:
            raise ValueError(
                "campaign recorded no traces; run it with trace=True "
                "(or '\"trace\": true' in the spec)"
            )
        from repro.obs import write_chrome_trace

        return write_chrome_trace(path, doc)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "interrupted": self.interrupted,
            "jobs_total": len(self.outcomes),
            "jobs_failed": len(self.errors),
            "cache": self.cache_stats,
            "compiled_modules": self.compiled_modules,
            "jobs": [o.to_dict() for o in self.outcomes],
        }

    def write(self, path: Union[str, Path]) -> Path:
        """Write the machine-readable ``campaign.json``."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=False, default=repr) + "\n",
            encoding="utf-8",
        )
        return path


def _pool_context():
    import multiprocessing

    # fork is markedly cheaper and fully supported here (worker state is
    # rebuilt per job); fall back to the platform default elsewhere.
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_campaign(
    spec: Union[CampaignSpec, Mapping[str, object], None],
    workers: int = 1,
    cache_dir: Union[str, bool, None] = None,
    progress: Optional[Callable[[JobOutcome], None]] = None,
    session=None,
    trace: Optional[bool] = None,
    journal_dir: Union[str, Path, None] = None,
    resume: bool = False,
) -> CampaignResult:
    """Expand ``spec`` and execute every job, serially or on a worker pool.

    ``workers <= 1`` runs jobs in-process in expansion order (the
    determinism-sensitive default) on one warm session -- ``session`` if
    provided (the ``Session.campaign`` front door), else a fresh one scoped
    to this campaign; ``workers > 1`` fans out over a process pool whose
    initializer gives every worker its own warm session.  All jobs share one
    on-disk compilation cache -- ``cache_dir``, the spec's ``cache_dir``, or
    a private temporary directory cleaned up after the run -- unless the
    cache is disabled (``cache_dir=False`` here or ``"cache_dir": false`` in
    the spec), in which case compile-once behaviour rests on the warm
    per-worker session stores alone.  ``trace`` overrides the spec's
    ``trace`` flag; when on, every job records a per-rank event trace and
    :meth:`CampaignResult.trace_timeline` merges them into one Chrome trace.

    ``journal_dir`` makes the campaign *resumable*: every job's lifecycle
    (``accepted`` / ``started`` / ``done`` / ``error`` / ``broken``) is
    appended to a crash-safe :class:`repro.fault.journal.Journal` in that
    directory, alongside the spec itself.  ``resume=True`` replays the
    journal first: jobs whose last event is terminal are restored from their
    journal record (marked ``resumed``, keeping their original fingerprint)
    and only the rest execute -- a job whose worker was SIGKILLed mid-run is
    left at ``started``/``broken`` and therefore re-runs.  When resuming,
    ``spec`` may be ``None``: the journal's stored spec is used.

    ``KeyboardInterrupt`` does not orphan workers: the pool is terminated
    and joined, unfinished jobs become ``"interrupted"`` records, and the
    *partial* :class:`CampaignResult` is returned (``interrupted=True``) so
    callers can still write an accounting ``campaign.json``.  A worker that
    *dies* (killed, segfaulted) does not hang the campaign either: its job
    -- and any job still queued behind the broken pool -- becomes a
    structured ``BrokenProcessPool`` error record, journaled as ``broken``
    so a resume re-runs it.
    """
    journal = None
    if journal_dir is not None:
        from repro.fault.journal import Journal

        journal = Journal(journal_dir)
    if resume:
        if journal is None:
            raise ValueError("resume=True requires journal_dir")
        if spec is None:
            stored = journal.read_meta("spec.json")
            if stored is None:
                raise ValueError(f"no stored spec to resume from in {journal_dir}")
            spec = CampaignSpec.from_mapping(stored)
    if spec is None:
        raise ValueError("spec is required (except when resuming from a journal)")
    if not isinstance(spec, CampaignSpec):
        spec = CampaignSpec.from_mapping(spec)
    jobs = spec.expand()
    workers = max(1, int(workers))
    do_trace = bool(spec.trace) if trace is None else bool(trace)

    restored: Dict[str, JobOutcome] = {}
    pending: List[JobSpec] = jobs
    if journal is not None:
        from repro.fault.journal import TERMINAL_EVENTS

        if resume:
            replayed = journal.replay()
            for job in jobs:
                record = replayed.get(job.job_id)
                if record is not None and record.get("event") in TERMINAL_EVENTS:
                    restored[job.job_id] = _outcome_from_record(job, spec.seed, record)
            pending = [job for job in jobs if job.job_id not in restored]
            if progress is not None:
                # Announce restored outcomes up front, in expansion order, so
                # a resume's progress stream accounts for every job.
                for job in jobs:
                    if job.job_id in restored:
                        progress(restored[job.job_id])
        else:
            journal.write_meta("spec.json", spec.to_mapping())
        for job in pending:
            journal.record("accepted", job.job_id)
    journal_path = str(journal.directory) if journal is not None else None

    # Explicit argument beats the spec beats the user's persistent
    # REPRO_CACHE_DIR; only a fully-unconfigured run gets a throwaway cache.
    disk_disabled = cache_dir is False or (cache_dir is None and spec.cache_dir is False)
    temporary_cache = False
    stats_cache = None
    baseline_events = 0
    if disk_disabled:
        shared_cache: Union[str, bool] = False
    else:
        shared_cache = cache_dir or spec.cache_dir or envvars.cache_dir() or None
        temporary_cache = shared_cache is None
        if temporary_cache:
            shared_cache = tempfile.mkdtemp(prefix="repro-campaign-cache-")

        from repro.wasm.compilers.cache import FileSystemCache

        stats_cache = FileSystemCache(shared_cache)
        # Persistent directories carry history from earlier runs; snapshot the
        # event count so the reported stats cover this campaign only.
        baseline_events = stats_cache.event_count()

    start = time.perf_counter()
    outcomes: List[JobOutcome] = []
    interrupted = False
    try:
        if workers == 1 or not pending:
            job_session = session if session is not None else _fresh_session(shared_cache)
            try:
                for job in pending:
                    if journal is not None:
                        journal.record("started", job.job_id)
                    outcome = run_job(job, spec.seed, shared_cache,
                                      session=job_session, trace=do_trace)
                    outcomes.append(outcome)
                    if journal is not None:
                        _journal_terminal(journal, outcome)
                    if progress is not None:
                        progress(outcome)
            except KeyboardInterrupt:
                interrupted = True
        else:
            from concurrent.futures import ProcessPoolExecutor
            from concurrent.futures.process import BrokenProcessPool

            ctx = _pool_context()
            executor = ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                mp_context=ctx,
                initializer=_init_worker_session,
                initargs=(shared_cache,),
            )
            try:
                futures = [
                    executor.submit(
                        _run_job_with_journal, job, campaign_seed=spec.seed,
                        cache_dir=shared_cache, trace=do_trace,
                        journal_dir=journal_path,
                    )
                    for job in pending
                ]
                for job, future in zip(pending, futures):
                    try:
                        outcome = future.result()
                    except BrokenProcessPool as exc:
                        # A worker died (SIGKILL, segfault, OOM): the executor
                        # noticed instead of hanging.  This job -- and every
                        # job still queued behind the broken pool -- becomes a
                        # structured error record; journaled as "broken"
                        # (non-terminal), so a resume re-runs it.
                        outcome = _broken_outcome(job, spec.seed, exc)
                        if journal is not None:
                            journal.record("broken", job.job_id,
                                           message=outcome.error["message"])
                        outcomes.append(outcome)
                        if progress is not None:
                            progress(outcome)
                        continue
                    outcomes.append(outcome)
                    if journal is not None:
                        _journal_terminal(journal, outcome)
                    if progress is not None:
                        progress(outcome)
            except KeyboardInterrupt:
                # Ctrl-C (or a SIGINT to the process group): stop the
                # workers instead of orphaning them mid-job, then report
                # a *partial* campaign -- every unfinished job gets an
                # "interrupted" record so campaign.json still accounts
                # for the whole job list.
                interrupted = True
                for proc in list(getattr(executor, "_processes", {}).values()):
                    proc.terminate()
                executor.shutdown(wait=False, cancel_futures=True)
            else:
                executor.shutdown(wait=True)
        if interrupted:
            done = {o.job_id for o in outcomes} | set(restored)
            for job in jobs:
                if job.job_id not in done:
                    outcomes.append(_interrupted_outcome(job, spec.seed))
        if stats_cache is not None:
            cache_stats = stats_cache.global_stats(since=baseline_events)
            compiled = stats_cache.compiled_keys(since=baseline_events)
        else:
            cache_stats = {}
            compiled = []
    finally:
        if temporary_cache:
            shutil.rmtree(shared_cache, ignore_errors=True)

    if restored:
        # Splice restored outcomes back into expansion order.
        by_id = {o.job_id: o for o in outcomes}
        by_id.update(restored)
        outcomes = [by_id[job.job_id] for job in jobs if job.job_id in by_id]

    result = CampaignResult(
        name=spec.name,
        workers=workers,
        outcomes=outcomes,
        wall_seconds=time.perf_counter() - start,
        cache_stats=cache_stats,
        compiled_modules=compiled,
        interrupted=interrupted,
    )
    for outcome in outcomes:
        if outcome.metrics:
            result.metrics.merge_snapshot(outcome.metrics)
    if stats_cache is None:
        # Disk cache disabled: derive the totals from the per-rank lookup
        # counters instead of the (absent) cross-process event log.  Every
        # miss compiled, so misses == compiles.
        summary = result.metrics.cache_summary()
        result.cache_stats = {
            "hits": int(summary["hits"]),
            "misses": int(summary["misses"]),
            "compiles": int(summary["misses"]),
        }
    return result
