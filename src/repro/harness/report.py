"""Plain-text and CSV rendering of experiment results.

Every experiment in :mod:`repro.harness.experiments` returns a dictionary of
rows or series; these helpers turn them into aligned text tables (what the
benchmark harness prints) and CSV files (what a plotting script would
consume), so the repository needs no plotting dependency.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Iterable, List, Mapping, Optional, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render an aligned text table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.01:
            return f"{cell:.3e}"
        return f"{cell:.3f}"
    return str(cell)


def series_to_csv(series: Mapping[object, Mapping[str, object]], x_name: str = "x") -> str:
    """Render a {x: {column: value}} mapping as CSV text."""
    columns: List[str] = []
    for row in series.values():
        for key in row:
            if key not in columns:
                columns.append(key)
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow([x_name, *columns])
    for x, row in series.items():
        writer.writerow([x, *[row.get(c, "") for c in columns]])
    return out.getvalue()


def format_collective_report(metrics, title: str = "MPI collectives") -> str:
    """Render the per-collective counters of a :class:`MetricsRegistry`.

    One row per collective: rank-call count (each rank's participation counts
    once, so a p-rank bcast shows p calls), payload bytes through each rank's
    buffers summed over ranks, and the algorithms the decision layer chose
    (with per-algorithm rank-call counts).  Returns an empty string when the
    job ran no collectives.
    """
    summary = metrics.collective_summary()
    if not summary:
        return ""
    rows = []
    for collective, entry in summary.items():
        algorithms = " ".join(
            f"{name}:{count}" for name, count in sorted(entry["algorithms"].items())
        )
        rows.append([collective, entry["calls"], entry["bytes"], algorithms])
    return format_table(["collective", "calls", "bytes", "algorithms"], rows, title=title)


def format_cache_report(metrics, title: str = "AoT compilation cache") -> str:
    """Render the embedder's compilation-cache counters.

    One row summarising hits (split by the tier that served them: the
    session's in-memory tier vs the shared on-disk cache), misses and the
    hit rate across every rank's compile step (ranks after the first hit
    the shared artifact, §3.3).  Returns an empty string when no cache
    lookups were recorded.
    """
    summary = metrics.cache_summary()
    if not summary["hits"] and not summary["misses"]:
        return ""
    rows = [[summary["hits"], summary.get("hits_memory", 0),
             summary.get("hits_fs", 0), summary["misses"],
             f"{summary['hit_rate']:.1%}"]]
    return format_table(["hits", "mem", "fs", "misses", "hit rate"], rows, title=title)


def format_campaign_report(result, title: str = "") -> str:
    """Render a :class:`repro.harness.campaign.CampaignResult` as text.

    One row per job (status, wall time, virtual makespan, per-job AoT-cache
    lookups) followed by the campaign totals: job/failure counts, wall-clock,
    and the *cross-process* cache counters -- the line that shows each
    distinct guest module was compiled exactly once across the worker pool.
    """
    rows = []
    for outcome in result.outcomes:
        cache = outcome.cache_events()
        rows.append([
            outcome.job_id,
            outcome.status,
            f"{outcome.wall_seconds:.3f}",
            f"{outcome.makespan * 1e6:.1f}" if outcome.makespan is not None else "-",
            f"{cache['hits']}/{cache['misses']}" if (cache["hits"] or cache["misses"]) else "-",
        ])
    table = format_table(
        ["job", "status", "wall (s)", "makespan (us)", "cache h/m"],
        rows,
        title=title or f"campaign {result.name!r} ({result.workers} worker(s))",
    )
    stats = result.cache_stats
    lines = [
        table,
        f"jobs: {len(result.outcomes)} total, {len(result.errors)} failed; "
        f"wall-clock {result.wall_seconds:.3f}s",
        f"shared AoT cache: {stats.get('hits', 0)} hits, {stats.get('misses', 0)} misses, "
        f"{stats.get('compiles', 0)} compiles "
        f"({len(set(result.compiled_modules))} distinct modules)",
    ]
    return "\n".join(lines)


def rows_to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render header + rows as CSV text."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(list(headers))
    for row in rows:
        writer.writerow(list(row))
    return out.getvalue()


def geometric_mean_ratio(numerators: Mapping, denominators: Mapping) -> float:
    """Geometric mean of pointwise ratios over the shared keys."""
    import math

    keys = [k for k in numerators if k in denominators and denominators[k] > 0 and numerators[k] > 0]
    if not keys:
        return 0.0
    return math.exp(sum(math.log(numerators[k] / denominators[k]) for k in keys) / len(keys))
