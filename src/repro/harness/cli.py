"""``repro-harness`` / ``repro-experiments`` command line interface.

Two subcommands, both built on the campaign runner
(:mod:`repro.harness.campaign`):

* ``run [names...]`` -- regenerate any subset of the paper's tables and
  figures (the historical ``repro-experiments`` behaviour; bare experiment
  names without a subcommand still work).
* ``campaign <spec> [--workers N]`` -- expand a declarative scenario-matrix
  spec (JSON, or YAML when PyYAML is installed) into a job list and execute
  it, optionally on a multi-process worker pool sharing one AoT compilation
  cache.  Writes a machine-readable ``campaign.json`` and exits non-zero if
  any job produced an error record.
* ``trace <spec> [--out trace.json]`` -- run a campaign with per-rank event
  tracing forced on (:mod:`repro.obs`), validate the merged timeline, and
  write it as Chrome trace-event JSON (loadable in Perfetto).
* ``profile <benchmark>`` -- run one benchmark job with the interpreter's
  sampled profiling hooks active and print the handler-hit histogram
  (proving which fused superinstructions fire) and hot-function self-times.
* ``serve`` -- run the multi-tenant job service (:mod:`repro.serve`): a
  long-running HTTP daemon accepting run/campaign/compile submissions onto
  a bounded queue drained by warm per-worker sessions, with per-tenant
  API keys, throttling/quotas, load-shedding, and ``/healthz``+``/metrics``.
* ``chaos`` -- the fault-tolerance acceptance drill (:mod:`repro.fault`):
  kill one rank mid-``MPI_Allreduce``, recover by deterministic restart,
  resume a mid-run checkpoint, and verify every result bit-for-bit against
  a clean-run oracle (optionally writing the fault-event Chrome trace).
* ``analyze`` -- the static verification layer (:mod:`repro.analysis`):
  cross-rank schedule deadlock/conservation checks (``analyze schedules``),
  lowered-IR/fusion-table verification (``analyze ir``), and the
  project-invariant linter (``analyze lint`` / ``--self-lint``).

``--workers 1`` (the default) keeps the serial in-process path, which
determinism-sensitive tests rely on; higher worker counts produce identical
per-job results (same metrics values) in less wall-clock time.
"""

from __future__ import annotations

import argparse
import json
from typing import Optional, Sequence

from repro.api.session import Session
from repro.harness.campaign import (
    CampaignSpec,
    spec_for_experiments,
)
from repro.harness.experiments import EXPERIMENT_DRIVERS
from repro.harness.report import format_campaign_report, format_table

#: Back-compat alias: the driver table used to live here.
EXPERIMENTS = EXPERIMENT_DRIVERS


def _print_summary(name: str, result) -> None:
    print(f"\n=== {name} ===")
    if name == "table1":
        rows = [[b, f"{r['compile_ms']:.3f}", f"{r['kernel_mflops']:.3f}"] for b, r in result.items()]
        print(format_table(["backend", "compile (ms)", "kernel MFLOP/s"], rows))
    elif name == "table2":
        rows = [
            [r["application"], f"{r['native_dynamic_kib']:.0f}", f"{r['native_static_mib']:.1f}",
             f"{r['wasm_kib']:.1f}", f"{r['static_to_wasm_ratio']:.1f}x"]
            for r in result["rows"]
        ]
        print(format_table(
            ["application", "dynamic (KiB)", "static (MiB)", "wasm (KiB)", "static/wasm"], rows))
        print(f"average static/wasm ratio: {result['average_static_to_wasm_ratio']:.1f}x")
    elif name in ("figure3", "figure4"):
        rows = [[routine, f"{slowdown:+.3f}"] for routine, slowdown in result["gm_slowdowns"].items()]
        print(format_table(["routine", "GM Wasm slowdown"], rows))
    elif name == "figure5":
        print(f"HPCG Wasm reduction at 6144 ranks: {result['hpcg_reduction_at_6144']:.1%}")
        print(f"DT SIMD speedup (Wasm w/ vs w/o SIMD): {result['dt_simd_speedup']:.2f}x")
    elif name == "figure6":
        rows = [[dt, f"{ns:.2f}"] for dt, ns in result["average_ns"].items()]
        print(format_table(["datatype", "avg translation (ns)"], rows))
    elif name == "figure7":
        print(f"MPIWasm vs Faasm PingPong GM speedup: {result['gm_speedup']:.2f}x")
    elif name == "nbc":
        rows = [
            [routine, f"{stats.get('mean', 0.0):.1%}", f"{stats.get('min', 0.0):.1%}",
             f"{stats.get('max', 0.0):.1%}", stats.get("count", 0)]
            for routine, stats in result["overlap"].items()
        ]
        print(format_table(
            ["routine", "mean overlap", "min", "max", "samples"], rows,
            title=f"NBC overlap x {result['nranks']} ranks on {result['machine']}",
        ))
    elif name == "algosweep":
        algorithms = sorted(result["series"])
        rows = []
        for size, best in result["best_per_size"].items():
            timings = [f"{result['series'][a][size]['t_avg_us']:.2f}" for a in algorithms]
            rows.append([size, *timings, best, result["table_choice_per_size"][size]])
        print(format_table(
            ["bytes", *[f"{a} (us)" for a in algorithms], "fastest", "table picks"],
            rows,
            title=f"IMB {result['routine']} x {result['nranks']} ranks on {result['machine']}",
        ))
    else:
        print(json.dumps(result, indent=2, default=str)[:2000])


def _cmd_run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    selected = args.experiments or sorted(EXPERIMENT_DRIVERS)
    for name in selected:
        if name not in EXPERIMENT_DRIVERS:
            parser.error(f"unknown experiment {name!r}; known: {sorted(EXPERIMENT_DRIVERS)}")
    with Session() as session:
        result = session.campaign(spec_for_experiments(selected), workers=args.workers)
    for outcome in result.outcomes:
        if not outcome.ok:
            print(f"\n=== {outcome.spec.name} ===")
            print(f"FAILED: {outcome.error['type']}: {outcome.error['message']}")
            continue
        if args.json:
            print(json.dumps({outcome.spec.name: outcome.result}, indent=2, default=str))
        else:
            _print_summary(outcome.spec.name, outcome.result)
    return 0 if result.ok else 1


def _cmd_campaign(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    if args.resume and args.journal:
        parser.error("--resume already names the journal directory; drop --journal")
    journal_dir = args.resume or args.journal
    if args.resume:
        # The journal's spec.json is authoritative on resume; a spec argument
        # would be ambiguous (which one wins?) so it is rejected outright.
        if args.spec is not None:
            parser.error("--resume re-loads the spec from the journal; "
                         "drop the spec argument")
        spec = None
    elif args.spec is None:
        parser.error("a campaign spec file is required (or --resume <journal-dir>)")
    else:
        try:
            spec = CampaignSpec.from_file(args.spec)
        except (OSError, ValueError, RuntimeError) as exc:
            parser.error(f"cannot load campaign spec {args.spec!r}: {exc}")

    def progress(outcome):
        marker = "ok" if outcome.ok else f"ERROR ({outcome.error['type']})"
        resumed = " (restored)" if getattr(outcome, "resumed", False) else ""
        print(f"[{outcome.job_id}] {marker} wall={outcome.wall_seconds:.3f}s{resumed}")

    cache_dir = False if args.no_fs_cache else args.cache_dir
    try:
        with Session() as session:
            result = session.campaign(
                spec, workers=args.workers, cache_dir=cache_dir, progress=progress,
                journal_dir=journal_dir, resume=bool(args.resume),
            )
    except (OSError, ValueError) as exc:
        parser.error(f"cannot run campaign: {exc}")
    out_path = result.write(args.out)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2, default=repr))
    else:
        print()
        print(format_campaign_report(result))
    print(f"\nwrote {out_path}")
    if result.interrupted:
        unfinished = sum(1 for o in result.outcomes if o.status == "interrupted")
        print(f"interrupted: {unfinished} of {len(result.outcomes)} jobs did not run "
              "(partial results written)")
        return 130
    if not result.ok:
        print(f"{len(result.errors)} of {len(result.outcomes)} jobs failed")
        return 1
    return 0


def _cmd_trace(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.obs import validate_chrome_trace, write_chrome_trace

    try:
        spec = CampaignSpec.from_file(args.spec)
    except (OSError, ValueError, RuntimeError) as exc:
        parser.error(f"cannot load campaign spec {args.spec!r}: {exc}")

    def progress(outcome):
        marker = "ok" if outcome.ok else f"ERROR ({outcome.error['type']})"
        events = len((outcome.trace or {}).get("events", ()))
        print(f"[{outcome.job_id}] {marker} events={events} wall={outcome.wall_seconds:.3f}s")

    with Session() as session:
        result = session.campaign(
            spec, workers=args.workers, progress=progress, trace=True
        )
    doc = result.trace_timeline()
    if doc is None:
        print("campaign recorded no trace events")
        return 1
    problems = validate_chrome_trace(doc)
    for problem in problems:
        print(f"INVALID: {problem}")
    out_path = write_chrome_trace(args.out, doc)
    spans = sum(1 for e in doc["traceEvents"] if e.get("ph") == "X")
    lanes = len({e.get("pid") for e in doc["traceEvents"]})
    print(f"wrote {out_path} ({spans} spans across {lanes} job lane(s))")
    if not result.ok:
        print(f"{len(result.errors)} of {len(result.outcomes)} jobs failed")
        return 1
    return 1 if problems else 0


def _cmd_profile(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.obs import format_profile_report, profiling

    with Session(backend=args.backend) as session:
        with profiling(sample_every=args.sample_every) as profiler:
            job = session.run(args.benchmark, args.nranks, machine=args.machine)
    fusion_table = None
    if args.emit_fusion_report:
        from repro.wasm.lowering import mine_superinstructions

        fusion_table = mine_superinstructions(
            profiler.ir_traces.values(), histogram=profiler.handler_histogram())
    if args.json:
        report = profiler.report()
        report["functions"] = report["functions"][:args.top]
        report["handlers"] = dict(list(report["handlers"].items())[:args.top])
        report["makespan"] = job.makespan
        if fusion_table is not None:
            report["fusion_report"] = fusion_table
        print(json.dumps(report, indent=2))
    else:
        print(format_profile_report(profiler, top=args.top))
        if fusion_table is not None:
            print("\nmined superinstruction candidates "
                  f"(from {len(profiler.ir_traces)} traced function(s))")
            print(f"{'chain':<48} {'sites':>6} {'score':>12}")
            for rec in fusion_table:
                chain = " + ".join(rec["kinds"])
                print(f"{chain:<48} {rec['occurrences']:>6} {rec['score']:>12.0f}")
            if not fusion_table:
                print("(no chains cleared the mining thresholds)")
        print(f"\nmakespan: {job.makespan:.6f} virtual seconds")
    return 0


def _cmd_chaos(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.api.session import use_session
    from repro.harness.experiments import chaos_recovery
    from repro.obs import to_chrome_trace, tracing, validate_chrome_trace, write_chrome_trace

    with Session() as session, use_session(session):
        with tracing() as recorder:
            result = chaos_recovery(
                nranks=args.nranks,
                machine=args.machine,
                victim=args.victim,
                kill_call_index=args.kill_call_index,
                checkpoint_round=args.checkpoint_round,
                max_restarts=args.max_restarts,
            )
        snapshot = recorder.snapshot()
    fault_events = [e for e in snapshot.get("events", ())
                    if str(e.get("name", "")).startswith("fault.")]
    if args.trace_out:
        doc = to_chrome_trace(snapshot, process_name="chaos")
        for problem in validate_chrome_trace(doc):
            print(f"INVALID: {problem}")
        out_path = write_chrome_trace(args.trace_out, doc)
        print(f"wrote {out_path} ({len(fault_events)} fault/recovery event(s))")
    if args.json:
        result["fault_events"] = fault_events
        print(json.dumps(result, indent=2, default=str))
    else:
        fired = result["fired"][0] if result["fired"] else {}
        print(f"injected: {fired.get('detail', 'nothing fired')}")
        print(f"recovered: {result['recovered']} after {result['attempts']} attempt(s)")
        print(f"checkpoint: {result['checkpoint']['ranks_captured']} rank(s) "
              f"captured at round crossing {result['checkpoint']['at_round']}")
        for check in ("checkpoint_run_matches_oracle",
                      "recovered_matches_oracle", "resume_matches_oracle"):
            print(f"{check}: {result[check]}")
    checks_ok = (result["recovered"]
                 and result["checkpoint_run_matches_oracle"]
                 and result["recovered_matches_oracle"]
                 and result["resume_matches_oracle"])
    if not checks_ok:
        print("CHAOS CHECK FAILED: recovered/resumed results diverged from the oracle")
        return 1
    if not fault_events:
        print("CHAOS CHECK FAILED: no fault/recovery events reached the trace")
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.serve import ServeConfig, TenantStore, run_server

    tenants = None
    if args.tenants:
        try:
            tenants = TenantStore.from_file(args.tenants)
        except (OSError, ValueError, KeyError) as exc:
            parser.error(f"cannot load tenants file {args.tenants!r}: {exc}")
    elif args.dev_key:
        tenants = TenantStore.dev_store(args.dev_key)
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_size=args.queue_size,
        tenants=tenants,
        backend=args.backend,
        machine=args.machine,
        cache_dir=args.cache_dir,
        drain_timeout=args.drain_timeout,
        quiet=not args.verbose,
        journal_dir=args.journal_dir,
    )
    return run_server(config)


def _cmd_analyze(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.analysis import cli as analysis_cli

    return analysis_cli.run(args, parser)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-harness",
        description="Regenerate the tables and figures of 'Exploring the Use of WebAssembly in HPC'.",
    )
    sub = parser.add_subparsers(dest="command")

    run_parser = sub.add_parser("run", help="run table/figure drivers by name")
    run_parser.add_argument("experiments", nargs="*", default=[],
                            help=f"which experiments to run (default: all of {sorted(EXPERIMENT_DRIVERS)})")
    run_parser.add_argument("--json", action="store_true", help="dump raw JSON instead of tables")
    run_parser.add_argument("--workers", type=int, default=1,
                            help="worker processes (1 = serial in-process, the default)")

    campaign_parser = sub.add_parser("campaign", help="run a scenario-matrix campaign spec")
    campaign_parser.add_argument("spec", nargs="?", default=None,
                                 help="campaign spec file (JSON; YAML with PyYAML); "
                                      "omitted with --resume")
    campaign_parser.add_argument("--workers", type=int, default=1,
                                 help="worker processes (1 = serial in-process, the default)")
    campaign_parser.add_argument("--journal", default=None, metavar="DIR",
                                 help="keep a crash-safe journal of job outcomes in DIR "
                                      "so an interrupted campaign can be resumed")
    campaign_parser.add_argument("--resume", default=None, metavar="DIR",
                                 help="resume an interrupted campaign from its journal "
                                      "directory; only unfinished jobs re-run (the spec "
                                      "is re-loaded from DIR/spec.json)")
    campaign_parser.add_argument("--out", default="campaign.json",
                                 help="where to write the machine-readable results")
    campaign_parser.add_argument("--cache-dir", default=None,
                                 help="shared AoT compilation cache directory (default: the "
                                      "spec's cache_dir, else $REPRO_CACHE_DIR, else a private "
                                      "temp dir)")
    campaign_parser.add_argument("--no-fs-cache", action="store_true",
                                 help="disable the on-disk AoT cache entirely; rely on each "
                                      "worker's warm in-memory session store")
    campaign_parser.add_argument("--json", action="store_true",
                                 help="dump raw JSON instead of the summary table")

    trace_parser = sub.add_parser(
        "trace", help="run a campaign with event tracing on; write a Chrome trace")
    trace_parser.add_argument("spec", help="campaign spec file (JSON; YAML with PyYAML)")
    trace_parser.add_argument("--workers", type=int, default=1,
                              help="worker processes (1 = serial in-process, the default)")
    trace_parser.add_argument("--out", default="trace.json",
                              help="where to write the merged Chrome trace-event JSON")

    profile_parser = sub.add_parser(
        "profile", help="profile the interpreter's dispatch loop on one benchmark")
    profile_parser.add_argument("benchmark", help="registered benchmark name (e.g. allreduce)")
    profile_parser.add_argument("--nranks", type=int, default=2, help="rank count (default 2)")
    profile_parser.add_argument("--backend", default="singlepass",
                                help="compiler backend; the interpreter hooks fire for every "
                                     "backend's execution tier (default singlepass)")
    profile_parser.add_argument("--machine", default="graviton2",
                                help="machine preset (default graviton2)")
    profile_parser.add_argument("--top", type=int, default=15,
                                help="rows per report section (default 15)")
    profile_parser.add_argument("--sample-every", type=int, default=1,
                                help="count one in N dispatched handlers (default 1 = exact)")
    profile_parser.add_argument("--json", action="store_true",
                                help="dump the raw profile report as JSON")
    profile_parser.add_argument("--emit-fusion-report", action="store_true",
                                help="mine hot handler chains from the recorded IR "
                                     "traces and report superinstruction candidates")

    chaos_parser = sub.add_parser(
        "chaos", help="kill a rank mid-allreduce; verify recovery and "
                      "checkpoint resume against a clean-run oracle")
    chaos_parser.add_argument("--nranks", type=int, default=4, help="rank count (default 4)")
    chaos_parser.add_argument("--machine", default="graviton2",
                              help="machine preset (default graviton2)")
    chaos_parser.add_argument("--victim", type=int, default=1,
                              help="world rank the fault plan kills (default 1)")
    chaos_parser.add_argument("--kill-call-index", type=int, default=2,
                              help="which of the victim's MPI_Allreduce calls "
                                   "fires the kill (default 2)")
    chaos_parser.add_argument("--checkpoint-round", type=int, default=1,
                              help="schedule-round crossing to checkpoint at (default 1)")
    chaos_parser.add_argument("--max-restarts", type=int, default=2,
                              help="restart budget for recovery (default 2)")
    chaos_parser.add_argument("--trace-out", default=None, metavar="FILE",
                              help="also write the run's Chrome trace (with the "
                                   "fault/recovery instants) to FILE")
    chaos_parser.add_argument("--json", action="store_true",
                              help="dump the full chaos report as JSON")

    serve_parser = sub.add_parser(
        "serve", help="run the multi-tenant job service (warm worker sessions)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8765,
                              help="bind port; 0 picks an ephemeral port (default 8765)")
    serve_parser.add_argument("--workers", type=int, default=2,
                              help="warm worker sessions draining the queue (default 2)")
    serve_parser.add_argument("--queue-size", type=int, default=16,
                              help="bounded submission queue depth; overflow is shed "
                                   "with 503 + Retry-After (default 16)")
    serve_parser.add_argument("--tenants", default=None,
                              help="tenants JSON file (API keys, rates, quotas); "
                                   "default: one generated 'dev' tenant, key printed "
                                   "at startup")
    serve_parser.add_argument("--dev-key", default=None,
                              help="run with a single unmetered 'dev' tenant using "
                                   "this API key (ignored with --tenants)")
    serve_parser.add_argument("--backend", default=None,
                              help="compiler backend for worker sessions (default: "
                                   "session default)")
    serve_parser.add_argument("--machine", default=None,
                              help="machine preset for worker sessions (default: "
                                   "session default)")
    serve_parser.add_argument("--cache-dir", default=None,
                              help="shared AoT cache directory backing /v1/artifacts "
                                   "(default: a private temp dir, removed at shutdown)")
    serve_parser.add_argument("--journal-dir", default=None,
                              help="crash-safe job journal directory: finished jobs "
                                   "are restored and unfinished ones re-queued when "
                                   "the service restarts (default: no journal)")
    serve_parser.add_argument("--drain-timeout", type=float, default=30.0,
                              help="seconds to let queued jobs finish on SIGTERM "
                                   "(default 30)")
    serve_parser.add_argument("--verbose", action="store_true",
                              help="log every HTTP request to stderr")

    analyze_parser = sub.add_parser(
        "analyze", help="static verification: schedules, lowered IR, lints")
    from repro.analysis.cli import configure_parser as _configure_analyze

    _configure_analyze(analyze_parser)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro-harness`` (and the ``repro-experiments`` alias)."""
    import sys

    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `repro-experiments table1 figure3` (no subcommand) still
    # works -- anything that is not a subcommand is treated as `run ...`.
    if not argv or argv[0] not in (
        "campaign", "run", "trace", "profile", "serve", "analyze", "chaos",
        "-h", "--help"
    ):
        argv = ["run", *argv]
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "analyze":
        return _cmd_analyze(args, parser)
    if args.command == "chaos":
        return _cmd_chaos(args, parser)
    if args.command == "campaign":
        return _cmd_campaign(args, parser)
    if args.command == "trace":
        return _cmd_trace(args, parser)
    if args.command == "profile":
        return _cmd_profile(args, parser)
    if args.command == "serve":
        return _cmd_serve(args, parser)
    return _cmd_run(args, parser)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
