"""``repro-experiments`` command line interface.

Runs any subset of the paper's experiments and prints text tables (optionally
CSV) -- the "regenerate every table and figure" entry point referenced by
EXPERIMENTS.md and the README.
"""

from __future__ import annotations

import argparse
import json
from typing import Callable, Dict, Optional, Sequence

from repro.harness import experiments
from repro.harness.report import format_table

EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "table1": experiments.table1_compiler_backends,
    "table2": experiments.table2_binary_sizes,
    "figure3": experiments.figure3_imb_supermuc,
    "figure4": experiments.figure4_graviton2,
    "figure5": experiments.figure5_npb_ior_hpcg,
    "figure6": experiments.figure6_translation_overhead,
    "figure7": experiments.figure7_faasm_comparison,
    "crosscheck": experiments.functional_crosscheck,
    "algosweep": experiments.imb_algorithm_sweep,
}


def _print_summary(name: str, result) -> None:
    print(f"\n=== {name} ===")
    if name == "table1":
        rows = [[b, f"{r['compile_ms']:.3f}", f"{r['kernel_mflops']:.3f}"] for b, r in result.items()]
        print(format_table(["backend", "compile (ms)", "kernel MFLOP/s"], rows))
    elif name == "table2":
        rows = [
            [r["application"], f"{r['native_dynamic_kib']:.0f}", f"{r['native_static_mib']:.1f}",
             f"{r['wasm_kib']:.1f}", f"{r['static_to_wasm_ratio']:.1f}x"]
            for r in result["rows"]
        ]
        print(format_table(
            ["application", "dynamic (KiB)", "static (MiB)", "wasm (KiB)", "static/wasm"], rows))
        print(f"average static/wasm ratio: {result['average_static_to_wasm_ratio']:.1f}x")
    elif name in ("figure3", "figure4"):
        rows = [[routine, f"{slowdown:+.3f}"] for routine, slowdown in result["gm_slowdowns"].items()]
        print(format_table(["routine", "GM Wasm slowdown"], rows))
    elif name == "figure5":
        print(f"HPCG Wasm reduction at 6144 ranks: {result['hpcg_reduction_at_6144']:.1%}")
        print(f"DT SIMD speedup (Wasm w/ vs w/o SIMD): {result['dt_simd_speedup']:.2f}x")
    elif name == "figure6":
        rows = [[dt, f"{ns:.2f}"] for dt, ns in result["average_ns"].items()]
        print(format_table(["datatype", "avg translation (ns)"], rows))
    elif name == "figure7":
        print(f"MPIWasm vs Faasm PingPong GM speedup: {result['gm_speedup']:.2f}x")
    elif name == "algosweep":
        algorithms = sorted(result["series"])
        rows = []
        for size, best in result["best_per_size"].items():
            timings = [f"{result['series'][a][size]['t_avg_us']:.2f}" for a in algorithms]
            rows.append([size, *timings, best, result["table_choice_per_size"][size]])
        print(format_table(
            ["bytes", *[f"{a} (us)" for a in algorithms], "fastest", "table picks"],
            rows,
            title=f"IMB {result['routine']} x {result['nranks']} ranks on {result['machine']}",
        ))
    else:
        print(json.dumps(result, indent=2, default=str)[:2000])


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro-experiments``."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of 'Exploring the Use of WebAssembly in HPC'.",
    )
    parser.add_argument("experiments", nargs="*", default=[],
                        help=f"which experiments to run (default: all of {sorted(EXPERIMENTS)})")
    parser.add_argument("--json", action="store_true", help="dump raw JSON instead of tables")
    args = parser.parse_args(argv)

    selected = args.experiments or sorted(EXPERIMENTS)
    for name in selected:
        if name not in EXPERIMENTS:
            parser.error(f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}")
        result = EXPERIMENTS[name]()
        if args.json:
            print(json.dumps({name: result}, indent=2, default=str))
        else:
            _print_summary(name, result)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
